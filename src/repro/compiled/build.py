"""Build-and-cache layer for the compiled playout kernels.

The kernels live in ``playout.c`` next to this module and are compiled
on first use with the system C compiler into a content-addressed shared
library under a cache directory.  No build step, no new dependency:
when no toolchain is available (or ``REPRO_COMPILED=0``), loading
reports unavailable and callers fall back to the pure-NumPy path.

Environment knobs:

``REPRO_COMPILED``
    ``0``/``never`` disables the compiled path entirely (forces the
    NumPy fallback -- what CI uses to prove the fallback leg);
    anything else (or unset) means auto-detect.
``REPRO_COMPILED_CACHE``
    Cache directory for built libraries (default
    ``~/.cache/repro-compiled``).
``CC``
    Compiler to use (default: first of ``cc``/``gcc``/``clang`` on
    ``PATH``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

_SOURCE = Path(__file__).with_name("playout.c")
_CFLAGS = ("-O2", "-shared", "-fPIC")

#: Load-once cache: ``False`` = not attempted, ``None`` = unavailable.
_LIB: "ctypes.CDLL | None | bool" = False
#: Human-readable reason the compiled path is unavailable (diagnostics).
_UNAVAILABLE_REASON: str | None = None


def compiled_disabled() -> bool:
    """Did the environment explicitly turn the compiled path off?"""
    return os.environ.get("REPRO_COMPILED", "").lower() in (
        "0",
        "never",
        "off",
        "false",
    )


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc:
        return cc if shutil.which(cc) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_COMPILED_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-compiled"


def _cache_key(compiler: str, source: bytes) -> str:
    digest = hashlib.sha256()
    digest.update(compiler.encode())
    digest.update(b"\0")
    digest.update(" ".join(_CFLAGS).encode())
    digest.update(b"\0")
    digest.update(source)
    return digest.hexdigest()[:16]


def build_library() -> Path | None:
    """Compile (or reuse) the playout kernel library; ``None`` when no
    toolchain is available or compilation fails."""
    global _UNAVAILABLE_REASON
    try:
        source = _SOURCE.read_bytes()
    except OSError as exc:
        _UNAVAILABLE_REASON = f"kernel source missing: {exc}"
        return None
    compiler = _find_compiler()
    if compiler is None:
        _UNAVAILABLE_REASON = "no C compiler on PATH (cc/gcc/clang)"
        return None
    cache = _cache_dir()
    target = cache / f"playout-{_cache_key(compiler, source)}.so"
    if target.exists():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        # Build to a private temp file, then atomically publish, so
        # concurrent first-use builds never observe a half-written .so.
        fd, tmp = tempfile.mkstemp(
            suffix=".so", prefix="playout-", dir=cache
        )
        os.close(fd)
        proc = subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp, str(_SOURCE)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            _UNAVAILABLE_REASON = (
                f"{compiler} failed: {proc.stderr.strip()[:500]}"
            )
            return None
        os.replace(tmp, target)
    except (OSError, subprocess.SubprocessError) as exc:
        _UNAVAILABLE_REASON = f"build error: {exc}"
        return None
    return target


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    u64p = ctypes.POINTER(ctypes.c_uint64)
    i8p = ctypes.POINTER(ctypes.c_int8)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i16p = ctypes.POINTER(ctypes.c_int16)
    i64p = ctypes.POINTER(ctypes.c_int64)
    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    lib.repro_reversi_playouts.restype = ctypes.c_int
    lib.repro_reversi_playouts.argtypes = [
        i64, u64p, u64p, i8p, u8p, u8p, u64p, u64p,
        i8p, i16p, i64p, i64, i64, f64,
    ]
    for name in ("repro_tictactoe_playouts", "repro_connect4_playouts"):
        fn = getattr(lib, name)
        fn.restype = ctypes.c_int
        fn.argtypes = [
            i64, u64p, u64p, i8p, u8p, u64p, u64p,
            i8p, i16p, i64p, i64, i64, f64,
        ]
    lib.repro_rng_advance.restype = None
    lib.repro_rng_advance.argtypes = [i64, u64p, u64p, i64]
    return lib


def load_library() -> ctypes.CDLL | None:
    """The bound kernel library, building it on first call; ``None``
    when the compiled path is disabled or unavailable."""
    global _LIB, _UNAVAILABLE_REASON
    if compiled_disabled():
        # Re-check every call: tests toggle REPRO_COMPILED at runtime.
        _UNAVAILABLE_REASON = "disabled via REPRO_COMPILED"
        return None
    if _LIB is False:
        path = build_library()
        if path is None:
            _LIB = None
        else:
            try:
                _LIB = _bind(ctypes.CDLL(str(path)))
            except OSError as exc:
                _UNAVAILABLE_REASON = f"dlopen failed: {exc}"
                _LIB = None
    lib = _LIB or None
    if lib is not None:
        # A prior disabled/failed probe may have left a stale reason.
        _UNAVAILABLE_REASON = None
    return lib


def unavailable_reason() -> str | None:
    """Why :func:`load_library` returned ``None`` (``None`` = it
    didn't)."""
    return _UNAVAILABLE_REASON


def reset_cache() -> None:
    """Forget the loaded library so the next call re-resolves (tests)."""
    global _LIB
    _LIB = False
