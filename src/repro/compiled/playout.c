/* Compiled per-lane playout kernels for the `playout="compiled"` executor.
 *
 * Each function replays the exact per-lane semantics of the vectorised
 * NumPy batch games (repro/games/*_batch.py) one lane at a time:
 * xorshift128+ draws in the same order, the same multiply-shift
 * `randbelow` reduction, the same n-th-set-bit move pick.  A lane's
 * outcome depends only on its private RNG stream, so sequential
 * replication is bit-identical to the lockstep kernel.
 *
 * RNG side-effect contract: the NumPy driver (`run_playouts_tracked`)
 * advances the *caller's* generator in lockstep until the batch first
 * compacts (after which a selected child generator advances instead).
 * These kernels reproduce that observable state: after playing, every
 * lane's (s0, s1) is rewritten to its initial state advanced by the
 * step at which the first compaction would have fired (or by the full
 * playout length when no compaction triggers).
 *
 * Built at runtime by repro.compiled.build via the system C compiler;
 * absence of a toolchain falls back to the NumPy path.
 */

#include <stdint.h>
#include <stdlib.h>

#define POPCOUNT(x) ((int64_t)__builtin_popcountll(x))

/* -- xorshift128+ (must match repro/rng/batch.py) ----------------------- */

static inline uint64_t next_u64(uint64_t *s0, uint64_t *s1)
{
    uint64_t a = *s0, b = *s1;
    uint64_t r = a + b;
    *s0 = b;
    a ^= a << 23;
    *s1 = a ^ b ^ (a >> 17) ^ (b >> 26);
    return r;
}

/* randbelow: multiply-shift reduction on the high 32 bits. */
static inline uint64_t draw_below(uint64_t *s0, uint64_t *s1, int64_t bound)
{
    uint64_t r32 = next_u64(s0, s1) >> 32;
    return (r32 * (uint64_t)bound) >> 32;
}

/* The k-th (0-based) set bit of m, as a one-bit mask (k < popcount). */
static inline uint64_t nth_bit(uint64_t m, uint64_t k)
{
    for (int p = 0; p < 64; p++) {
        if ((m >> p) & 1ULL) {
            if (k == 0)
                return 1ULL << p;
            k--;
        }
    }
    return 0;
}

/* -- first-compaction step (must match run_playouts_tracked) ------------ */

/* The lockstep driver compacts after step k when the live count A_k
 * (= lanes with finish_step > k) first satisfies 0 < A_k < thr * n for
 * an n >= min_compact batch; the caller's generator stops advancing
 * there.  Returns the number of steps the caller's generator ran. */
static int64_t first_compact_step(int64_t n, const int64_t *finish,
                                  int64_t min_compact, double thr)
{
    int64_t K = 0;
    for (int64_t i = 0; i < n; i++)
        if (finish[i] > K)
            K = finish[i];
    if (K == 0)
        return 0;
    if (n < min_compact)
        return K;
    for (int64_t k = 1; k < K; k++) {
        int64_t a = 0;
        for (int64_t i = 0; i < n; i++)
            a += finish[i] > k;
        if (a > 0 && (double)a < thr * (double)n)
            return k;
    }
    return K;
}

/* Rewrite (s0, s1) to the initial states advanced `steps` times. */
static void settle_rng(int64_t n, uint64_t *s0, uint64_t *s1,
                       const uint64_t *init_s0, const uint64_t *init_s1,
                       int64_t steps)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t a = init_s0[i], b = init_s1[i];
        for (int64_t k = 0; k < steps; k++)
            next_u64(&a, &b);
        s0[i] = a;
        s1[i] = b;
    }
}

static int finalize(int64_t n, uint64_t *s0, uint64_t *s1,
                    uint64_t *init_s0, uint64_t *init_s1,
                    const int64_t *finish, int64_t min_compact,
                    double thr, int err)
{
    if (!err) {
        int64_t steps = first_compact_step(n, finish, min_compact, thr);
        settle_rng(n, s0, s1, init_s0, init_s1, steps);
    }
    free(init_s0);
    free(init_s1);
    return err ? -1 : 0;
}

static uint64_t *copy_u64(const uint64_t *src, int64_t n)
{
    uint64_t *out = malloc((size_t)n * sizeof(uint64_t));
    if (out)
        for (int64_t i = 0; i < n; i++)
            out[i] = src[i];
    return out;
}

/* -- Reversi (must match repro/games/reversi_batch.py) ------------------ */

#define NOT_COL_0 0xFEFEFEFEFEFEFEFEULL
#define NOT_COL_7 0x7F7F7F7F7F7F7F7FULL
#define FULL64 0xFFFFFFFFFFFFFFFFULL

static const int REV_SHIFT[4] = {1, 8, 9, 7};
static const uint64_t REV_L_MASK[4] = {NOT_COL_0, FULL64, NOT_COL_0, NOT_COL_7};
static const uint64_t REV_R_MASK[4] = {NOT_COL_7, FULL64, NOT_COL_7, NOT_COL_0};

static inline uint64_t rev_mobility(uint64_t own, uint64_t opp)
{
    uint64_t empty = ~(own | opp);
    uint64_t moves = 0;
    for (int d = 0; d < 4; d++) {
        int s = REV_SHIFT[d];
        uint64_t ml = REV_L_MASK[d], mr = REV_R_MASK[d];
        uint64_t x = ((own << s) & ml) & opp;
        for (int it = 0; it < 5; it++)
            x |= ((x << s) & ml) & opp;
        moves |= (x << s) & ml;
        x = ((own >> s) & mr) & opp;
        for (int it = 0; it < 5; it++)
            x |= ((x >> s) & mr) & opp;
        moves |= (x >> s) & mr;
    }
    return moves & empty;
}

static inline uint64_t rev_flips(uint64_t own, uint64_t opp, uint64_t move)
{
    uint64_t flips = 0;
    for (int d = 0; d < 4; d++) {
        int s = REV_SHIFT[d];
        uint64_t ml = REV_L_MASK[d], mr = REV_R_MASK[d];
        uint64_t x = ((move << s) & ml) & opp;
        for (int it = 0; it < 5; it++)
            x |= ((x << s) & ml) & opp;
        if ((((x << s) & ml) & own) != 0)
            flips |= x;
        x = ((move >> s) & mr) & opp;
        for (int it = 0; it < 5; it++)
            x |= ((x >> s) & mr) & opp;
        if ((((x >> s) & mr) & own) != 0)
            flips |= x;
    }
    return flips;
}

int repro_reversi_playouts(
    int64_t n, uint64_t *own, uint64_t *opp, int8_t *to_move,
    uint8_t *passed, uint8_t *done, uint64_t *s0, uint64_t *s1,
    int8_t *winners, int16_t *scores, int64_t *finish,
    int64_t max_steps, int64_t min_compact, double thr)
{
    uint64_t *init_s0 = copy_u64(s0, n), *init_s1 = copy_u64(s1, n);
    if (!init_s0 || !init_s1) {
        free(init_s0);
        free(init_s1);
        return -2;
    }
    int err = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t a = s0[i], b = s1[i];
        uint64_t ow = own[i], op = opp[i];
        int tm = to_move[i];
        int pa = passed[i] != 0;
        int64_t steps = 0;
        if (!done[i]) {
            for (;;) {
                if (steps >= max_steps) {
                    err = 1;
                    break;
                }
                uint64_t moves = rev_mobility(ow, op);
                int64_t pop = POPCOUNT(moves);
                uint64_t pick = draw_below(&a, &b, pop);
                uint64_t move = pop ? nth_bit(moves, pick) : 0;
                steps++;
                uint64_t fl = move ? rev_flips(ow, op, move) : 0;
                uint64_t new_own = ow | move | fl;
                uint64_t new_opp = op & ~fl;
                ow = new_opp;
                op = new_own;
                tm = -tm;
                int pass_now = move == 0;
                if (pass_now && pa)
                    break;
                pa = pass_now;
            }
        }
        finish[i] = steps;
        uint64_t black = tm == 1 ? ow : op;
        uint64_t white = tm == 1 ? op : ow;
        int16_t diff = (int16_t)(POPCOUNT(black) - POPCOUNT(white));
        scores[i] = diff;
        winners[i] = diff > 0 ? 1 : diff < 0 ? -1 : 0;
    }
    return finalize(n, s0, s1, init_s0, init_s1, finish, min_compact,
                    thr, err);
}

/* -- TicTacToe (must match repro/games/tictactoe_batch.py) -------------- */

#define TTT_FULL 0x1FFULL

static const uint64_t TTT_LINES[8] = {
    0x007, 0x038, 0x1C0, 0x049, 0x092, 0x124, 0x111, 0x054,
};

static inline int ttt_has_line(uint64_t m)
{
    for (int i = 0; i < 8; i++)
        if ((m & TTT_LINES[i]) == TTT_LINES[i])
            return 1;
    return 0;
}

int repro_tictactoe_playouts(
    int64_t n, uint64_t *x, uint64_t *o, int8_t *to_move, uint8_t *done,
    uint64_t *s0, uint64_t *s1, int8_t *winners, int16_t *scores,
    int64_t *finish, int64_t max_steps, int64_t min_compact, double thr)
{
    uint64_t *init_s0 = copy_u64(s0, n), *init_s1 = copy_u64(s1, n);
    if (!init_s0 || !init_s1) {
        free(init_s0);
        free(init_s1);
        return -2;
    }
    int err = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t a = s0[i], b = s1[i];
        uint64_t bx = x[i], bo = o[i];
        int tm = to_move[i];
        int64_t steps = 0;
        if (!done[i]) {
            for (;;) {
                if (steps >= max_steps) {
                    err = 1;
                    break;
                }
                uint64_t empty = ~(bx | bo) & TTT_FULL;
                int64_t pop = POPCOUNT(empty);
                uint64_t pick = draw_below(&a, &b, pop);
                uint64_t bit = pop ? nth_bit(empty, pick) : 0;
                steps++;
                if (tm == 1)
                    bx |= bit;
                else
                    bo |= bit;
                tm = -tm;
                if (ttt_has_line(bx) || ttt_has_line(bo)
                    || (bx | bo) == TTT_FULL)
                    break;
            }
        }
        finish[i] = steps;
        int8_t w = 0;
        if (ttt_has_line(bx))
            w = 1;
        if (ttt_has_line(bo))
            w = -1;
        winners[i] = w;
        scores[i] = w;
    }
    return finalize(n, s0, s1, init_s0, init_s1, finish, min_compact,
                    thr, err);
}

/* -- Connect-4 (must match repro/games/connect4_batch.py) --------------- */

#define C4_BOTTOM ((1ULL << 0) | (1ULL << 7) | (1ULL << 14) | (1ULL << 21) \
                   | (1ULL << 28) | (1ULL << 35) | (1ULL << 42))
#define C4_BOARD (C4_BOTTOM * 0x3FULL)

static const int C4_DIRS[4] = {1, 7, 8, 6};

static inline int c4_has_four(uint64_t m)
{
    for (int d = 0; d < 4; d++) {
        uint64_t y = m & (m >> C4_DIRS[d]);
        if ((y & (y >> (2 * C4_DIRS[d]))) != 0)
            return 1;
    }
    return 0;
}

int repro_connect4_playouts(
    int64_t n, uint64_t *p1, uint64_t *p2, int8_t *to_move, uint8_t *done,
    uint64_t *s0, uint64_t *s1, int8_t *winners, int16_t *scores,
    int64_t *finish, int64_t max_steps, int64_t min_compact, double thr)
{
    uint64_t *init_s0 = copy_u64(s0, n), *init_s1 = copy_u64(s1, n);
    if (!init_s0 || !init_s1) {
        free(init_s0);
        free(init_s1);
        return -2;
    }
    int err = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t a = s0[i], b = s1[i];
        uint64_t b1 = p1[i], b2 = p2[i];
        int tm = to_move[i];
        int64_t steps = 0;
        if (!done[i]) {
            for (;;) {
                if (steps >= max_steps) {
                    err = 1;
                    break;
                }
                uint64_t mask = b1 | b2;
                uint64_t landings = (mask + C4_BOTTOM) & ~mask & C4_BOARD;
                int64_t pop = POPCOUNT(landings);
                uint64_t pick = draw_below(&a, &b, pop);
                uint64_t bit = pop ? nth_bit(landings, pick) : 0;
                steps++;
                if (tm == 1)
                    b1 |= bit;
                else
                    b2 |= bit;
                tm = -tm;
                if (c4_has_four(b1) || c4_has_four(b2)
                    || (b1 | b2) == C4_BOARD)
                    break;
            }
        }
        finish[i] = steps;
        int8_t w = 0;
        if (c4_has_four(b1))
            w = 1;
        if (c4_has_four(b2))
            w = -1;
        winners[i] = w;
        scores[i] = w;
    }
    return finalize(n, s0, s1, init_s0, init_s1, finish, min_compact,
                    thr, err);
}

/* Advance each lane's generator `steps` times in place (shared helper
 * for tests and for replaying lockstep RNG consumption). */
void repro_rng_advance(int64_t n, uint64_t *s0, uint64_t *s1, int64_t steps)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t a = s0[i], b = s1[i];
        for (int64_t k = 0; k < steps; k++)
            next_u64(&a, &b);
        s0[i] = a;
        s1[i] = b;
    }
}
