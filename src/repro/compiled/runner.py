"""Compiled drop-in for :func:`repro.games.batch.run_playouts_tracked`.

``run_playouts_tracked_compiled`` produces bit-identical results to the
NumPy lockstep driver -- same winners, scores and finish steps, and the
same side effect on the caller's :class:`BatchXorShift128Plus` (its
lanes end advanced exactly as far as the lockstep loop would have
advanced them before the first compaction).  Environments without a C
toolchain silently fall back to the NumPy path (nothing the user can
act on); a game *without a compiled kernel* (breakthrough -- see the
known-gaps note in docs/fusion.md) also falls back, but warns once per
game so an ``@compiled`` spec never silently runs slower than asked.
The differential suite pins the equivalence either way.
"""

from __future__ import annotations

import ctypes
import warnings

import numpy as np

from repro.compiled.build import load_library
from repro.games.batch import (
    BatchGame,
    TrackedPlayouts,
    run_playouts_tracked,
)
from repro.rng import BatchXorShift128Plus

#: Games with a compiled kernel; everything else uses the NumPy path.
COMPILED_GAMES = frozenset({"reversi", "tictactoe", "connect4"})

#: Games already warned about missing a compiled kernel (warn once
#: per game per process, not once per launch).
_WARNED_GAMES: set[str] = set()


def compiled_available() -> bool:
    """Is the compiled kernel library loadable right now?"""
    return load_library() is not None


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


def run_playouts_tracked_compiled(
    game: BatchGame,
    batch,
    rng: BatchXorShift128Plus,
    compact_threshold: float = 0.5,
    min_compact_size: int = 64,
) -> TrackedPlayouts:
    """Drive a batch to completion through the compiled kernel.

    Falls back to :func:`run_playouts_tracked` (identical results by
    contract) when the library is unavailable or the game has no
    kernel.  The no-kernel case warns (once per game): the caller
    asked for ``@compiled`` and is getting the NumPy driver instead.
    """
    lib = load_library()
    if game.name not in COMPILED_GAMES:
        if game.name not in _WARNED_GAMES:
            _WARNED_GAMES.add(game.name)
            warnings.warn(
                f"no compiled playout kernel for {game.name!r}; "
                f"@compiled degrades to the NumPy driver "
                f"(bit-identical results, no speedup -- see "
                f"docs/fusion.md)",
                RuntimeWarning,
                stacklevel=2,
            )
        lib = None
    if lib is None:
        return run_playouts_tracked(
            game,
            batch,
            rng,
            compact_threshold=compact_threshold,
            min_compact_size=min_compact_size,
        )

    n = len(batch)
    n_rng, s0, s1 = rng.getstate()
    if n_rng != n:
        raise ValueError(
            f"rng has {n_rng} lanes for a {n}-lane batch"
        )
    winners = np.zeros(n, dtype=np.int8)
    scores = np.zeros(n, dtype=np.int16)
    finish = np.zeros(n, dtype=np.int64)
    to_move = np.ascontiguousarray(batch.to_move, dtype=np.int8)

    u64 = ctypes.c_uint64
    common = (
        _ptr(s0, u64),
        _ptr(s1, u64),
        _ptr(winners, ctypes.c_int8),
        _ptr(scores, ctypes.c_int16),
        _ptr(finish, ctypes.c_int64),
        game.max_game_length,
        min_compact_size,
        compact_threshold,
    )
    if game.name == "reversi":
        own = np.ascontiguousarray(batch.own, dtype=np.uint64)
        opp = np.ascontiguousarray(batch.opp, dtype=np.uint64)
        passed = np.ascontiguousarray(batch.passed, dtype=np.uint8)
        done = np.ascontiguousarray(batch.done, dtype=np.uint8)
        rc = lib.repro_reversi_playouts(
            n, _ptr(own, u64), _ptr(opp, u64),
            _ptr(to_move, ctypes.c_int8), _ptr(passed, ctypes.c_uint8),
            _ptr(done, ctypes.c_uint8), *common,
        )
    elif game.name == "tictactoe":
        x = np.ascontiguousarray(batch.x, dtype=np.uint64)
        o = np.ascontiguousarray(batch.o, dtype=np.uint64)
        done = np.ascontiguousarray(batch.done, dtype=np.uint8)
        rc = lib.repro_tictactoe_playouts(
            n, _ptr(x, u64), _ptr(o, u64),
            _ptr(to_move, ctypes.c_int8), _ptr(done, ctypes.c_uint8),
            *common,
        )
    else:  # connect4
        p1 = np.ascontiguousarray(batch.p1, dtype=np.uint64)
        p2 = np.ascontiguousarray(batch.p2, dtype=np.uint64)
        done = np.ascontiguousarray(batch.done, dtype=np.uint8)
        rc = lib.repro_connect4_playouts(
            n, _ptr(p1, u64), _ptr(p2, u64),
            _ptr(to_move, ctypes.c_int8), _ptr(done, ctypes.c_uint8),
            *common,
        )
    if rc == -1:
        raise RuntimeError(
            f"{game.name} playout exceeded max_game_length="
            f"{game.max_game_length}; engine bug"
        )
    if rc != 0:
        raise MemoryError("compiled playout kernel allocation failed")
    rng.setstate((n, s0, s1))
    return TrackedPlayouts(
        winners=winners, scores=scores, finish_steps=finish
    )
