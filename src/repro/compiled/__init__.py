"""Compiled playout executor: C kernels behind the NumPy batch seam.

Public surface:

* :func:`compiled_available` -- is the toolchain-built library usable?
* :func:`run_playouts_tracked_compiled` -- bit-identical drop-in for
  :func:`repro.games.batch.run_playouts_tracked`.
* :data:`COMPILED_GAMES` -- games with a compiled kernel.
"""

from repro.compiled.build import (
    build_library,
    compiled_disabled,
    load_library,
    reset_cache,
    unavailable_reason,
)
from repro.compiled.runner import (
    COMPILED_GAMES,
    compiled_available,
    run_playouts_tracked_compiled,
)

__all__ = [
    "COMPILED_GAMES",
    "build_library",
    "compiled_available",
    "compiled_disabled",
    "load_library",
    "reset_cache",
    "run_playouts_tracked_compiled",
    "unavailable_reason",
]
