"""The MCTS search tree.

Statistics convention (standard UCT): a node's ``wins`` are counted
from the perspective of ``node.mover`` -- the player who made the move
*into* the node.  The parent chooses among children with UCB, and since
every child's mover is the parent's player-to-move, maximising child
win-rate is exactly maximising the chooser's success.  ``visits`` count
*simulations*, not iterations, so a leaf-parallel iteration that runs
1024 playouts adds 1024 visits along the path -- this is how the paper
aggregates GPU results into the tree.

Virtual loss (used by the tree-parallel baseline) adds phantom visits
during selection so concurrent workers spread out; it is reverted when
the real result arrives.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.policy import (
    SELECTION_RULES,
    validate_parallel_mode,
    validate_selection_rule,
)
from repro.games.base import Game, GameState
from repro.rng import XorShift64Star


class Node:
    """One tree node; plain attributes, tuned for tight Python loops."""

    __slots__ = (
        "parent",
        "move",
        "state",
        "to_move",
        "mover",
        "children",
        "untried",
        "visits",
        "wins",
        "vloss",
        "terminal",
        "winner",
    )

    def __init__(
        self,
        parent: "Node | None",
        move: int | None,
        state: GameState,
        game: Game,
        rng: XorShift64Star,
    ) -> None:
        self.parent = parent
        self.move = move
        self.state = state
        self.to_move = game.to_move(state)
        # Who moved into this node; for the root, pretend the opponent
        # of the side to move did (keeps backprop uniform).
        self.mover = parent.to_move if parent is not None else -self.to_move
        legal = list(game.legal_moves(state))
        self.terminal = not legal
        self.winner = game.winner(state) if self.terminal else 0
        rng.shuffle(legal)
        self.untried = legal
        self.children: list[Node] = []
        self.visits = 0.0
        self.wins = 0.0
        self.vloss = 0.0

    def value(self) -> float:
        """Mean reward for this node's mover (0.5 if unvisited)."""
        total = self.visits + self.vloss
        if total <= 0:
            return 0.5
        return self.wins / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(move={self.move}, visits={self.visits:.0f}, "
            f"wins={self.wins:.1f}, children={len(self.children)})"
        )


class SearchTree:
    """One MCTS tree with UCB1 selection and single-node expansion."""

    #: Supported child-selection rules (shared with the arena backend).
    SELECTION_RULES = SELECTION_RULES

    def __init__(
        self,
        game: Game,
        root_state: GameState,
        rng: XorShift64Star,
        ucb_c: float = 1.0,
        selection_rule: str = "ucb1",
        parallel_mode: str = "vloss",
    ) -> None:
        if ucb_c < 0:
            raise ValueError(f"ucb_c must be non-negative: {ucb_c}")
        validate_selection_rule(selection_rule)
        validate_parallel_mode(parallel_mode)
        self.game = game
        self.rng = rng
        self.ucb_c = ucb_c
        self.selection_rule = selection_rule
        self.parallel_mode = parallel_mode
        self.root = Node(None, None, root_state, game, rng)
        if self.root.terminal:
            raise ValueError("cannot search a terminal position")
        self.node_count = 1
        self.max_depth = 0

    # -- selection + expansion ------------------------------------------------

    def select_expand(self) -> tuple[Node, int]:
        """Descend by UCB until a node with untried moves (expand one
        child and return it) or a terminal node (return it).  Returns
        ``(node, depth)``; the paper expands one node per iteration."""
        node = self.root
        depth = 0
        while True:
            if node.terminal:
                return node, depth
            if node.untried:
                move = node.untried.pop()
                child = Node(
                    node,
                    move,
                    self.game.apply(node.state, move),
                    self.game,
                    self.rng,
                )
                node.children.append(child)
                depth += 1
                self.node_count += 1
                if depth > self.max_depth:
                    self.max_depth = depth
                return child, depth
            node = self.best_child(node)
            depth += 1

    def best_child(self, node: Node) -> Node:
        """Selection-rule argmax over ``node``'s children.

        ``ucb1`` is the paper's formula; ``ucb1_tuned`` replaces the
        exploration width with the Bernoulli variance bound
        ``min(1/4, p(1-p) + sqrt(2 ln N / n))`` (Auer et al.), offered
        for the UCB ablation.

        ``vloss`` counters fold in according to the tree's
        ``parallel_mode``: under ``"vloss"`` they are phantom losing
        visits (mean and exploration term both see them); under
        ``"wuct"`` they are WU-UCT's unobserved-sample counts ``O`` --
        the exploration term uses ``N+O`` and ``n_i+O_i`` while the
        mean stays ``wins / completed visits``.
        """
        c = self.ucb_c
        tuned = self.selection_rule == "ucb1_tuned"
        wuct = self.parallel_mode == "wuct"
        total = node.visits + node.vloss
        log_total = math.log(total) if total > 1.0 else 0.0
        best = None
        best_score = -1.0
        for child in node.children:
            n_i = child.visits + child.vloss
            if n_i <= 0:
                return child  # unvisited child: explore immediately
            if wuct:
                p = (
                    child.wins / child.visits
                    if child.visits > 0
                    else 0.5
                )
            else:
                p = child.wins / n_i
            if tuned:
                variance = p * (1.0 - p) + math.sqrt(
                    2.0 * log_total / n_i
                )
                width = min(0.25, variance)
                score = p + c * math.sqrt(log_total / n_i * width)
            else:
                score = p + c * math.sqrt(log_total / n_i)
            if score > best_score:
                best_score = score
                best = child
        if best is None:
            raise RuntimeError("best_child called on a childless node")
        return best

    # -- statistics updates -----------------------------------------------------

    def backprop(
        self,
        node: Node,
        simulations: int,
        wins_black: float,
        wins_white: float,
        draws: float = 0.0,
    ) -> None:
        """Add ``simulations`` playout results along the path to the
        root.  ``wins_black``/``wins_white``/``draws`` partition the
        simulations by absolute outcome; draws count half for both
        sides (the usual 0/0.5/1 reward)."""
        while node is not None:
            node.visits += simulations
            side_wins = wins_black if node.mover == 1 else wins_white
            node.wins += side_wins + 0.5 * draws
            node = node.parent

    def backprop_winner(
        self, node: Node, winner: int, simulations: int = 1
    ) -> None:
        """Backprop ``simulations`` identical results (terminal leaf)."""
        self.backprop(
            node,
            simulations,
            simulations if winner == 1 else 0,
            simulations if winner == -1 else 0,
            simulations if winner == 0 else 0,
        )

    def apply_virtual_loss(self, node: Node, amount: float = 1.0) -> None:
        """Phantom visits (with zero wins) along the path: discourages
        other concurrent selections from piling onto the same leaf."""
        while node is not None:
            node.vloss += amount
            node = node.parent

    def revert_virtual_loss(self, node: Node, amount: float = 1.0) -> None:
        while node is not None:
            node.vloss -= amount
            node = node.parent

    # -- backend-neutral ref accessors ---------------------------------------

    # Engines address tree positions through opaque *refs* so the same
    # engine code drives this pointer tree (refs are ``Node`` objects)
    # and the array arena (refs are integer slots).

    def state_of(self, node: Node) -> GameState:
        return node.state

    def terminal_of(self, node: Node) -> bool:
        return node.terminal

    def winner_of(self, node: Node) -> int:
        return node.winner

    # -- reporting -----------------------------------------------------------------

    def depth(self) -> int:
        """Deepest expanded path (same quantity as ``max_depth``)."""
        return self.max_depth

    def root_stats(self) -> dict[int, tuple[float, float]]:
        """Per root move: ``(visits, wins)`` of the corresponding child
        (wins from the root player's perspective)."""
        return {
            child.move: (child.visits, child.wins)
            for child in self.root.children
        }

    def depth_of(self, node: Node) -> int:
        d = 0
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def iter_nodes(self) -> Iterator[Node]:
        stack = [self.root]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(n.children)

    # -- stable ref tokens ---------------------------------------------------

    # Engines holding refs across a snapshot boundary (the pipeline
    # engine's in-flight selections) encode them as BFS indices -- the
    # same ordering :meth:`snapshot` serialises, so a token minted on
    # the live tree resolves to the equivalent node on a restored one.

    def _bfs_order(self) -> "list[Node]":
        order = [self.root]
        head = 0
        while head < len(order):
            order.extend(order[head].children)
            head += 1
        return order

    def ref_token(self, node: Node) -> int:
        """The BFS index of ``node`` (stable across snapshot/restore)."""
        for i, n in enumerate(self._bfs_order()):
            if n is node:
                return i
        raise ValueError("node is not part of this tree")

    def ref_from_token(self, token: int) -> Node:
        """Inverse of :meth:`ref_token` on this (possibly restored) tree."""
        return self._bfs_order()[token]

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        """A flat, picklable encoding of the whole tree.

        Nodes are serialised in breadth-first order as plain tuples
        (parent index, move, statistics, shuffled untried list, state);
        child-list order is the BFS emission order, so a rebuilt tree
        selects and expands exactly like the original.  The tree's RNG
        state rides along -- restoring never consumes fresh draws.
        """
        order: list[Node] = [self.root]
        index: dict[int, int] = {id(self.root): 0}
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for child in node.children:
                index[id(child)] = len(order)
                order.append(child)
        nodes = [
            (
                index[id(n.parent)] if n.parent is not None else -1,
                n.move,
                n.state,
                int(n.to_move),
                int(n.mover),
                list(n.untried),
                n.visits,
                n.wins,
                n.vloss,
                n.terminal,
                int(n.winner),
            )
            for n in order
        ]
        return {
            "kind": "node_tree",
            "ucb_c": self.ucb_c,
            "selection_rule": self.selection_rule,
            "parallel_mode": self.parallel_mode,
            "rng_state": self.rng.getstate(),
            "node_count": self.node_count,
            "max_depth": self.max_depth,
            "nodes": nodes,
        }

    @classmethod
    def from_snapshot(cls, game: Game, snap: dict) -> "SearchTree":
        """Rebuild a tree from :meth:`snapshot` without touching game
        logic or consuming RNG draws (``Node.__init__`` shuffles, so
        nodes are reconstructed around it)."""
        tree = object.__new__(cls)
        tree.game = game
        tree.ucb_c = snap["ucb_c"]
        tree.selection_rule = snap["selection_rule"]
        tree.parallel_mode = snap.get("parallel_mode", "vloss")
        tree.rng = XorShift64Star.from_state(snap["rng_state"])
        tree.node_count = snap["node_count"]
        tree.max_depth = snap["max_depth"]
        order: list[Node] = []
        for (
            parent_idx,
            move,
            state,
            to_move,
            mover,
            untried,
            visits,
            wins,
            vloss,
            terminal,
            winner,
        ) in snap["nodes"]:
            node = object.__new__(Node)
            node.parent = order[parent_idx] if parent_idx >= 0 else None
            node.move = move
            node.state = state
            node.to_move = to_move
            node.mover = mover
            node.untried = list(untried)
            node.children = []
            node.visits = visits
            node.wins = wins
            node.vloss = vloss
            node.terminal = terminal
            node.winner = winner
            if node.parent is not None:
                node.parent.children.append(node)
            order.append(node)
        tree.root = order[0]
        return tree


def aggregate_stat_dicts(
    per_tree: "list[dict[int, tuple[float, float]]]",
) -> dict[int, tuple[float, float]]:
    """Sum per-move ``(visits, wins)`` dicts in tree order.

    Shared by both tree backends so the float accumulation order -- and
    therefore the aggregate, bit for bit -- is identical whichever
    representation produced the per-tree dicts.
    """
    agg: dict[int, list[float]] = {}
    for stats in per_tree:
        for move, (visits, wins) in stats.items():
            cell = agg.setdefault(move, [0.0, 0.0])
            cell[0] += visits
            cell[1] += wins
    return {m: (v, w) for m, (v, w) in agg.items()}


def majority_vote_stat_dicts(
    per_tree: "list[dict[int, tuple[float, float]]]",
) -> dict[int, tuple[float, float]]:
    """Chaslot-style plurality ballot over per-tree root stats; see
    :func:`majority_vote_stats`."""
    ballots: dict[int, list[float]] = {}
    for stats in per_tree:
        if not stats:
            continue
        move = max(
            stats, key=lambda m: (stats[m][0], stats[m][1], -m)
        )
        cell = ballots.setdefault(move, [0.0, 0.0])
        cell[0] += 1.0
        cell[1] += stats[move][1]
    return {m: (v, w) for m, (v, w) in ballots.items()}


def trimmed_vote_stat_dicts(
    per_tree: "list[dict[int, tuple[float, float]]]",
    trim: float = 0.2,
) -> dict[int, tuple[float, float]]:
    """Byzantine-tolerant vote: a trimmed mean over per-tree shares.

    Each tree's root statistics are normalised to *shares* of its own
    total root visits (a tree that searched twice as long does not get
    twice the say, and a poisoned tree cannot buy weight with phantom
    mass).  Per move, the per-tree visit shares -- counting 0 for trees
    that never tried the move -- are sorted and the ``trim`` fraction
    is dropped from *each* end before averaging; win shares get the
    same treatment.  A single corrupted tree's inflated share lands in
    the trimmed tail, so with ``trim=0.2`` the vote tolerates up to 20%
    arbitrarily-Byzantine trees.  The means are scaled back by the
    ensemble's total visits so magnitudes stay comparable to the
    ``sum`` vote.  Trees with empty stats or zero root visits abstain.
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim fraction must be in [0, 0.5): {trim}")
    shares: list[tuple[dict[int, float], dict[int, float]]] = []
    total_visits = 0.0
    moves: list[int] = []
    seen: set[int] = set()
    for stats in per_tree:
        tree_total = sum(v for v, _ in stats.values())
        if not stats or tree_total <= 0:
            continue
        total_visits += tree_total
        shares.append(
            (
                {m: v / tree_total for m, (v, _) in stats.items()},
                {m: w / tree_total for m, (_, w) in stats.items()},
            )
        )
        for m in stats:
            if m not in seen:
                seen.add(m)
                moves.append(m)
    if not shares:
        return {}
    n = len(shares)
    k = int(n * trim)
    lo, hi = (k, n - k) if 2 * k < n else (0, n)
    out: dict[int, tuple[float, float]] = {}
    for m in moves:
        vs = sorted(s[0].get(m, 0.0) for s in shares)
        ws = sorted(s[1].get(m, 0.0) for s in shares)
        span = hi - lo
        out[m] = (
            sum(vs[lo:hi]) / span * total_visits,
            sum(ws[lo:hi]) / span * total_visits,
        )
    return out


def aggregate_stats(
    trees: "list[SearchTree]",
) -> dict[int, tuple[float, float]]:
    """Root-parallel vote: sum per-move visits and wins over trees
    (how the paper merges block/root-parallel results at the root)."""
    return aggregate_stat_dicts([tree.root_stats() for tree in trees])


def majority_vote_stats(
    trees: "list[SearchTree]",
) -> dict[int, tuple[float, float]]:
    """Chaslot-style alternative: each tree casts one ballot for its
    own most-visited move; the returned "stats" count ballots as
    visits (wins carry the voting trees' win mass for tie-breaks).
    Feeding this through ``select_move(..., MAX_VISITS)`` implements
    plurality voting."""
    return majority_vote_stat_dicts(
        [tree.root_stats() for tree in trees]
    )


def trimmed_vote_stats(
    trees: "list[SearchTree]",
    trim: float = 0.2,
) -> dict[int, tuple[float, float]]:
    """Byzantine-tolerant root vote over whole trees; see
    :func:`trimmed_vote_stat_dicts`."""
    return trimmed_vote_stat_dicts(
        [tree.root_stats() for tree in trees], trim=trim
    )
