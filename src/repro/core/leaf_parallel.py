"""Leaf-parallel MCTS on the (virtual) GPU.

The paper's simplest GPU scheme: one tree on the CPU; each iteration
ships the selected leaf to the GPU, which runs one playout per thread
from that same position, and the whole grid's results are
backpropagated at once.  Accuracy per iteration improves with thread
count but all samples come from a single point -- the reason its win
ratio plateaus around 0.75 in the paper's Figure 6 while block
parallelism keeps climbing.
"""

from __future__ import annotations

from repro.core.backend import restore_tree
from repro.core.base import Engine, tally
from repro.core.policy import select_move
from repro.core.results import SearchResult, register_extra_keys
from repro.cpu import XEON_X5670
from repro.games.base import GameState
from repro.gpu import TESLA_C2050, LaunchConfig, VirtualGpu
from repro.util.seeding import derive_seed


class LeafParallelMcts(Engine):
    """One tree, grid-wide playouts from the selected leaf."""

    name = "leaf_parallel"

    def __init__(
        self,
        game,
        seed,
        blocks: int,
        threads_per_block: int,
        device=TESLA_C2050,
        cost_model=XEON_X5670,
        **kwargs,
    ) -> None:
        super().__init__(game, seed, cost_model=cost_model, **kwargs)
        self.config = LaunchConfig(blocks, threads_per_block)
        self.config.validate(device)
        self.gpu = VirtualGpu(
            device,
            self.clock,
            game.name,
            derive_seed(seed, "gpu"),
            playout=self.playout,
        )

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        self._check_budget(budget_s, state)
        self._live = {
            "tree": self._make_tree(state, self.rng.fork("tree")),
            "start_s": self.clock.now,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
        }
        return self._session_run()

    def _session_run(self) -> SearchResult:
        live = self._live
        tree = live["tree"]
        budget_s = live["budget_s"]
        cap = self._iteration_cap()
        grid = self.config.total_threads
        while (
            self.clock.now - live["start_s"] < budget_s
            and live["iterations"] < cap
        ) or live["iterations"] == 0:
            node, depth = tree.select_expand()
            # CPU sequential share: tree walk + kernel marshalling.
            self.clock.advance(self.cost.tree_control_time(depth))
            if tree.terminal_of(node):
                # The kernel would return the same outcome in every
                # lane; skip the launch, keep the statistics faithful.
                tree.backprop_winner(node, tree.winner_of(node), grid)
            else:
                result = self.gpu.run_playouts(
                    [tree.state_of(node)], self.config
                )
                wins_b, wins_w, draws = tally(result.winners)
                tree.backprop(node, grid, wins_b, wins_w, draws)
            live["iterations"] += 1
            live["simulations"] += grid
            self._after_iteration(live["iterations"])
        stats = tree.root_stats()
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=live["iterations"],
            simulations=live["simulations"],
            max_depth=tree.max_depth,
            tree_nodes=tree.node_count,
            elapsed_s=self.clock.now - live["start_s"],
            extras={
                "gpu.kernels": self.gpu.stats.kernels_launched,
                "tree.depth": [tree.depth()],
                "tree.nodes": [tree.node_count],
            },
            engine=self.name,
        )
        self._live = None
        return result

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        return {
            "tree": live["tree"].snapshot(),
            "start_s": live["start_s"],
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "gpu": self.gpu.getstate(),
        }

    def _restore_payload(self, payload: dict) -> dict:
        self.gpu.setstate(payload["gpu"])
        return {
            "tree": restore_tree(self.game, payload["tree"]),
            "start_s": payload["start_s"],
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
        }


register_extra_keys(
    LeafParallelMcts.name,
    {"gpu.kernels": int, "tree.depth": list, "tree.nodes": list},
)
