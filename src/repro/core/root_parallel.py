"""Root-parallel MCTS: n independent trees, one per CPU core.

The authors' earlier massively-parallel CPU scheme (and the CPU side of
the paper's Figure 7): every core builds its own tree from the same
root with its own RNG; at the end of the move budget the root children
statistics are summed move-by-move and the most-visited move is played.
There is no communication during the search, so virtual cores genuinely
run in parallel: each charges only its own core-clock.

The real-machine implementation here advances all trees in lockstep
rounds and batches their playouts through the vectorised engine --
results are identical to independent execution because the trees never
interact.
"""

from __future__ import annotations

from repro.core.backend import restore_forest
from repro.core.base import BatchExecutor, Engine, SearchGenerator, drive_search
from repro.core.policy import select_move
from repro.core.results import (
    INTEGRITY_EXTRA_KEYS,
    SearchResult,
    register_extra_keys,
)
from repro.games.base import GameState
from repro.integrity.engine import IntegrityState
from repro.util.seeding import derive_seed

VOTE_MODES = ("sum", "majority", "trimmed")


class RootParallelMcts(Engine):
    """Independent-tree voting over ``n_trees`` virtual cores."""

    name = "root_parallel"

    def __init__(
        self,
        game,
        seed,
        n_trees: int,
        vote: str = "sum",
        injector=None,
        integrity=None,
        **kwargs,
    ) -> None:
        if n_trees <= 0:
            raise ValueError(f"n_trees must be positive: {n_trees}")
        if vote not in VOTE_MODES:
            raise ValueError(f"unknown vote mode {vote!r}")
        super().__init__(game, seed, **kwargs)
        self.n_trees = n_trees
        self.vote = vote
        self.injector = injector
        self.integrity = integrity

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        executor = BatchExecutor(
            self.game.name,
            derive_seed(self.seed, "exec"),
            playout=self.playout,
        )
        self._pending_executor = executor
        return drive_search(self.search_steps(state, budget_s), executor)

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        self._check_budget(budget_s, state)
        self._live = {
            "forest": self._make_forest(
                state,
                [self.rng.fork("tree", i) for i in range(self.n_trees)],
            ),
            "core_time": [0.0] * self.n_trees,
            "per_tree_iters": [0] * self.n_trees,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
            "executor": self._take_pending_executor(),
            "integrity": (
                IntegrityState(self.integrity, self.injector, self.n_trees)
                if self.injector is not None
                else None
            ),
        }
        return self._session_steps()

    def _session_steps(self) -> SearchGenerator:
        live = self._live
        forest = live["forest"]
        core_time = live["core_time"]
        per_tree_iters = live["per_tree_iters"]
        budget_s = live["budget_s"]
        cap = self._iteration_cap()
        iterations = live["iterations"]
        simulations = live["simulations"]
        guard = live.get("integrity")
        # Screen playout answers only when this engine drives its own
        # executor; externally-driven sessions (the service) are
        # screened once at the merged-launch readback by the lane
        # batcher -- screening here too would double-draw corruption.
        screen = guard if live.get("executor") is not None else None

        while True:
            active = [
                i
                for i in range(self.n_trees)
                if core_time[i] < budget_s and per_tree_iters[i] < cap
            ]
            if not active:
                break
            # Independent trees: selecting them all first, then
            # resolving terminals, is identical to the interleaved
            # order (no tree ever observes another's statistics).
            refs, depths = forest.select_expand_all(active)
            requests = []
            pending = []  # (tree index, node, depth)
            for i, node, depth in zip(active, refs, depths):
                if forest.terminal_of(node):
                    forest.backprop_winner(
                        i, node, forest.winner_of(node)
                    )
                    core_time[i] += self.cost.iteration_time(depth, 0)
                    per_tree_iters[i] += 1
                    iterations += 1
                    simulations += 1
                else:
                    requests.append(forest.state_of(node))
                    pending.append((i, node, depth))
            if requests:
                results = yield requests
                if screen is not None:
                    results = yield from self._screen_results(
                        requests, results, screen
                    )
                for (i, node, depth), (winner, plies) in zip(
                    pending, results
                ):
                    forest.backprop_winner(i, node, winner)
                    core_time[i] += self.cost.iteration_time(depth, plies)
                    per_tree_iters[i] += 1
                    iterations += 1
                    simulations += 1
            live["iterations"] = iterations
            live["simulations"] = simulations
            if guard is not None:
                guard.poison(forest, 1.0)
                guard.audit(forest, iterations)
            self._after_iteration(iterations)

        # Wall time of the parallel search = the slowest core.
        self.clock.advance(max(core_time))
        if guard is not None:
            guard.final_sweep(forest)
        keep = guard.keep_indices() if guard is not None else None
        stats = forest.aggregate_stats(keep)
        if self.vote == "majority":
            voted = forest.majority_vote_stats(keep)
        elif self.vote == "trimmed":
            voted = forest.trimmed_vote_stats(keep)
        else:
            voted = stats
        extras = {
            "tree.depth": forest.per_tree_depth(),
            "tree.nodes": forest.per_tree_nodes(),
        }
        if guard is not None:
            extras.update(guard.extras())
        result = SearchResult(
            move=select_move(voted, self.final_policy),
            stats=stats,
            iterations=iterations,
            simulations=simulations,
            max_depth=forest.max_depth(),
            tree_nodes=forest.node_count(),
            elapsed_s=max(core_time),
            trees=self.n_trees,
            extras=extras,
            engine=self.name,
        )
        self._live = None
        return result

    def _screen_results(self, requests, results, guard):
        """Screen one round's playout answers; rejected batches are
        re-requested from the driver (fresh executor draws) up to the
        policy's retry budget, then degraded to neutral ``(0, 0)``
        answers -- the dropped-playout-batch model."""
        for attempt in range(guard.policy.max_result_retries + 1):
            results, ok = guard.screen_answers(list(results))
            if ok:
                return results
            if attempt < guard.policy.max_result_retries:
                results = yield requests
        guard.give_up()
        return [(0, 0)] * len(requests)

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        payload = {
            "forest": live["forest"].snapshot(),
            "core_time": list(live["core_time"]),
            "per_tree_iters": list(live["per_tree_iters"]),
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "executor": self._executor_state(live["executor"]),
        }
        if live.get("integrity") is not None:
            payload["integrity"] = live["integrity"].getstate()
        return payload

    def _restore_payload(self, payload: dict) -> dict:
        guard = None
        if self.injector is not None:
            guard = IntegrityState(
                self.integrity, self.injector, self.n_trees
            )
            if "integrity" in payload:
                guard.setstate(payload["integrity"])
        return {
            "forest": restore_forest(self.game, payload["forest"]),
            "core_time": list(payload["core_time"]),
            "per_tree_iters": list(payload["per_tree_iters"]),
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
            "executor": self._restore_executor(payload["executor"]),
            "integrity": guard,
        }


register_extra_keys(
    RootParallelMcts.name,
    {
        "tree.depth": list,
        "tree.nodes": list,
        **INTEGRITY_EXTRA_KEYS,
    },
)
