"""Playout executor selection: the ``playout="numpy"|"compiled"`` seam.

Every spot that drives a lockstep playout batch to completion -- the
engines' :class:`~repro.core.base.BatchExecutor`, the virtual GPU, the
serving lane batcher -- routes through :func:`tracked_runner`, so one
constructor argument (or the ``@compiled`` spec modifier) switches the
whole stack onto the compiled kernels.  The two executors are
bit-identical by contract (same winners/scores/finish steps, same RNG
side effects), which the differential wall pins; ``"compiled"``
degrades gracefully to the NumPy path when no C toolchain is present.
"""

from __future__ import annotations

from typing import Callable

from repro.games.batch import TrackedPlayouts, run_playouts_tracked

#: Registered playout executors, in canonical order.
PLAYOUT_EXECUTORS = ("numpy", "compiled")

TrackedRunner = Callable[..., TrackedPlayouts]


def validate_playout(playout: str) -> str:
    """Check an executor name; returns it for chaining."""
    if playout not in PLAYOUT_EXECUTORS:
        raise ValueError(
            f"unknown playout executor {playout!r}; "
            f"available: {PLAYOUT_EXECUTORS}"
        )
    return playout


def tracked_runner(playout: str) -> TrackedRunner:
    """The ``run_playouts_tracked``-compatible driver for ``playout``.

    ``"compiled"`` resolves lazily on every batch, so availability is
    re-checked after environment changes and the fallback needs no
    caller-side handling.
    """
    validate_playout(playout)
    if playout == "compiled":
        from repro.compiled import run_playouts_tracked_compiled

        return run_playouts_tracked_compiled
    return run_playouts_tracked


def playout_active(playout: str) -> str:
    """The executor that will actually run: ``"compiled"`` reports
    ``"numpy"`` when the kernel library is unavailable (fallback)."""
    validate_playout(playout)
    if playout == "compiled":
        from repro.compiled import compiled_available

        if compiled_available():
            return "compiled"
        return "numpy"
    return playout


__all__ = [
    "PLAYOUT_EXECUTORS",
    "playout_active",
    "tracked_runner",
    "validate_playout",
]
