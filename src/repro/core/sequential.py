"""Sequential (single-core) MCTS -- the paper's opponent and baseline.

One iteration = select, expand one node, one random playout,
backpropagate; time is charged per iteration through the CPU cost
model.  This is the player every GPU configuration is measured against
in the paper's Figures 6 and 7.
"""

from __future__ import annotations

from repro.core.backend import restore_tree
from repro.core.base import Engine, ScalarExecutor, SearchGenerator, drive_search
from repro.core.policy import select_move
from repro.core.results import SearchResult, register_extra_keys
from repro.games.base import GameState


class SequentialMcts(Engine):
    """Plain UCT on one virtual CPU core."""

    name = "sequential"

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        # Executor before session setup: preserves the historical fork
        # order (fork("playout") drawn before fork("tree")).
        executor = ScalarExecutor(self.game, self.rng.fork("playout"))
        self._pending_executor = executor
        return drive_search(self.search_steps(state, budget_s), executor)

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        self._check_budget(budget_s, state)
        self._live = {
            "tree": self._make_tree(state, self.rng.fork("tree")),
            "start_s": self.clock.now,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
            "executor": self._take_pending_executor(),
        }
        return self._session_steps()

    def _session_steps(self) -> SearchGenerator:
        live = self._live
        tree = live["tree"]
        cap = self._iteration_cap()
        while (
            self.clock.now - live["start_s"] < live["budget_s"]
            and live["iterations"] < cap
        ):
            node, depth = tree.select_expand()
            if tree.terminal_of(node):
                tree.backprop_winner(node, tree.winner_of(node))
                plies = 0
            else:
                (result,) = yield (tree.state_of(node),)
                winner, plies = result
                tree.backprop_winner(node, winner)
            self.clock.advance(self.cost.iteration_time(depth, plies))
            live["iterations"] += 1
            live["simulations"] += 1
            self._after_iteration(live["iterations"])
        stats = tree.root_stats()
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=live["iterations"],
            simulations=live["simulations"],
            max_depth=tree.max_depth,
            tree_nodes=tree.node_count,
            elapsed_s=self.clock.now - live["start_s"],
            extras={
                "tree.depth": [tree.depth()],
                "tree.nodes": [tree.node_count],
            },
            engine=self.name,
        )
        self._live = None
        return result

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        return {
            "tree": live["tree"].snapshot(),
            "start_s": live["start_s"],
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "executor": self._executor_state(live["executor"]),
        }

    def _restore_payload(self, payload: dict) -> dict:
        return {
            "tree": restore_tree(self.game, payload["tree"]),
            "start_s": payload["start_s"],
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
            "executor": self._restore_executor(payload["executor"]),
        }


register_extra_keys(
    SequentialMcts.name,
    {"tree.depth": list, "tree.nodes": list},
)
