"""Sequential (single-core) MCTS -- the paper's opponent and baseline.

One iteration = select, expand one node, one random playout,
backpropagate; time is charged per iteration through the CPU cost
model.  This is the player every GPU configuration is measured against
in the paper's Figures 6 and 7.
"""

from __future__ import annotations

from repro.core.base import Engine, SearchGenerator, drive_search, scalar_executor
from repro.core.policy import select_move
from repro.core.results import SearchResult
from repro.games.base import GameState
from repro.util.clock import Stopwatch


class SequentialMcts(Engine):
    """Plain UCT on one virtual CPU core."""

    name = "sequential"

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        return drive_search(
            self.search_steps(state, budget_s),
            scalar_executor(self.game, self.rng.fork("playout")),
        )

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        self._check_budget(budget_s, state)
        tree = self._make_tree(state, self.rng.fork("tree"))
        sw = Stopwatch(self.clock)
        cap = self._iteration_cap()
        iterations = 0
        simulations = 0
        while sw.elapsed < budget_s and iterations < cap:
            node, depth = tree.select_expand()
            if tree.terminal_of(node):
                tree.backprop_winner(node, tree.winner_of(node))
                plies = 0
            else:
                (result,) = yield (tree.state_of(node),)
                winner, plies = result
                tree.backprop_winner(node, winner)
            self.clock.advance(self.cost.iteration_time(depth, plies))
            iterations += 1
            simulations += 1
        stats = tree.root_stats()
        return SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=iterations,
            simulations=simulations,
            max_depth=tree.max_depth,
            tree_nodes=tree.node_count,
            elapsed_s=sw.elapsed,
            extras={
                "per_tree_depth": [tree.depth()],
                "per_tree_nodes": [tree.node_count],
            },
        )
