"""Hybrid CPU/GPU MCTS (paper Figure 4).

Block-parallel search whose kernel is launched *asynchronously*: while
the GPU simulates, the controlling CPU keeps running plain sequential
MCTS iterations over the same trees (round-robin), deepening them.
The paper observes GPU-only trees are shallow (each iteration waits a
whole kernel); the hybrid recovers depth and improves the endgame
(Figure 8) -- both effects this engine reproduces, and both visible in
its telemetry (``max_depth``, ``extras['cpu_iterations']``).
"""

from __future__ import annotations

from repro.core.base import Engine, tally
from repro.core.policy import select_move
from repro.core.results import SearchResult
from repro.core.tree import SearchTree, aggregate_stats
from repro.cpu import XEON_X5670
from repro.games.base import GameState
from repro.gpu import TESLA_C2050, LaunchConfig, VirtualGpu
from repro.util.clock import Stopwatch
from repro.util.seeding import derive_seed


class HybridMcts(Engine):
    """Asynchronous block-parallel GPU + overlapped CPU iterations."""

    name = "hybrid"

    def __init__(
        self,
        game,
        seed,
        blocks: int,
        threads_per_block: int,
        device=TESLA_C2050,
        cost_model=XEON_X5670,
        **kwargs,
    ) -> None:
        super().__init__(game, seed, cost_model=cost_model, **kwargs)
        self.config = LaunchConfig(blocks, threads_per_block)
        self.config.validate(device)
        self.gpu = VirtualGpu(
            device, self.clock, game.name, derive_seed(seed, "gpu")
        )

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        self._check_budget(budget_s, state)
        blocks = self.config.blocks
        tpb = self.config.threads_per_block
        trees = [
            SearchTree(
                self.game,
                state,
                self.rng.fork("tree", b),
                self.ucb_c,
                self.selection_rule,
            )
            for b in range(blocks)
        ]
        playout_rng = self.rng.fork("cpu_playout")
        sw = Stopwatch(self.clock)
        cap = self._iteration_cap()
        gpu_iterations = 0
        cpu_iterations = 0
        simulations = 0
        next_tree = 0

        while (
            sw.elapsed < budget_s and gpu_iterations < cap
        ) or gpu_iterations == 0:
            leaves = []
            for tree in trees:
                node, depth = tree.select_expand()
                self.clock.advance(self.cost.tree_control_time(depth))
                leaves.append(node)
            event = self.gpu.launch_async(
                [leaf.state for leaf in leaves], self.config
            )
            # The GPU is busy; the CPU keeps deepening the same trees.
            while not self.gpu.stream.query(event):
                tree = trees[next_tree]
                next_tree = (next_tree + 1) % blocks
                node, depth = tree.select_expand()
                if node.terminal:
                    tree.backprop_winner(node, node.winner)
                    plies = 0
                else:
                    winner, plies = self.game.playout(
                        node.state, playout_rng
                    )
                    tree.backprop_winner(node, winner)
                self.clock.advance(
                    self.cost.iteration_time(depth, plies)
                )
                cpu_iterations += 1
                simulations += 1
            result = self.gpu.stream.synchronize(event)
            per_block = result.winners.reshape(blocks, tpb)
            for b, tree in enumerate(trees):
                wins_b, wins_w, draws = tally(per_block[b])
                tree.backprop(leaves[b], tpb, wins_b, wins_w, draws)
            gpu_iterations += 1
            simulations += result.playouts

        stats = aggregate_stats(trees)
        return SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=gpu_iterations,
            simulations=simulations,
            max_depth=max(t.max_depth for t in trees),
            tree_nodes=sum(t.node_count for t in trees),
            elapsed_s=sw.elapsed,
            trees=blocks,
            extras={
                "cpu_iterations": cpu_iterations,
                "kernels": self.gpu.stats.kernels_launched,
            },
        )
