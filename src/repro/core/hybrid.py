"""Hybrid CPU/GPU MCTS (paper Figure 4).

Block-parallel search whose kernel is launched *asynchronously*: while
the GPU simulates, the controlling CPU keeps running plain sequential
MCTS iterations over the same trees (round-robin), deepening them.
The paper observes GPU-only trees are shallow (each iteration waits a
whole kernel); the hybrid recovers depth and improves the endgame
(Figure 8) -- both effects this engine reproduces, and both visible in
its telemetry (``max_depth``, ``extras['cpu_iterations']``).
"""

from __future__ import annotations

from repro.core.backend import restore_forest
from repro.core.base import Engine
from repro.core.policy import select_move
from repro.core.results import SearchResult, register_extra_keys
from repro.cpu import XEON_X5670
from repro.games.base import GameState
from repro.gpu import TESLA_C2050, LaunchConfig, VirtualGpu
from repro.rng import XorShift64Star
from repro.util.seeding import derive_seed


class HybridMcts(Engine):
    """Asynchronous block-parallel GPU + overlapped CPU iterations."""

    name = "hybrid"

    def __init__(
        self,
        game,
        seed,
        blocks: int,
        threads_per_block: int,
        device=TESLA_C2050,
        cost_model=XEON_X5670,
        **kwargs,
    ) -> None:
        super().__init__(game, seed, cost_model=cost_model, **kwargs)
        self.config = LaunchConfig(blocks, threads_per_block)
        self.config.validate(device)
        self.gpu = VirtualGpu(
            device,
            self.clock,
            game.name,
            derive_seed(seed, "gpu"),
            playout=self.playout,
        )

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        self._check_budget(budget_s, state)
        blocks = self.config.blocks
        self._live = {
            "forest": self._make_forest(
                state, [self.rng.fork("tree", b) for b in range(blocks)]
            ),
            "playout_rng": self.rng.fork("cpu_playout"),
            "start_s": self.clock.now,
            "budget_s": budget_s,
            "next_tree": 0,
            "iterations": 0,
            "cpu_iterations": 0,
            "simulations": 0,
        }
        return self._session_run()

    def _session_run(self) -> SearchResult:
        live = self._live
        forest = live["forest"]
        playout_rng = live["playout_rng"]
        budget_s = live["budget_s"]
        blocks = self.config.blocks
        tpb = self.config.threads_per_block
        prof = self.profiler
        cap = self._iteration_cap()
        gpu_iterations = live["iterations"]
        cpu_iterations = live["cpu_iterations"]
        simulations = live["simulations"]
        next_tree = live["next_tree"]

        while (
            self.clock.now - live["start_s"] < budget_s
            and gpu_iterations < cap
        ) or gpu_iterations == 0:
            with prof.phase("select"):
                leaves, depths = forest.select_expand_all()
                for depth in depths:
                    self.clock.advance(self.cost.tree_control_time(depth))
            event = self.gpu.launch_async(
                [forest.state_of(leaf) for leaf in leaves], self.config
            )
            # The GPU is busy; the CPU keeps deepening the same trees
            # (round-robin; the shared playout RNG makes this order
            # part of the engine's deterministic contract).
            with prof.phase("cpu_overlap"):
                while not self.gpu.stream.query(event):
                    t = next_tree
                    next_tree = (next_tree + 1) % blocks
                    node, depth = forest.select_expand(t)
                    if forest.terminal_of(node):
                        forest.backprop_winner(
                            t, node, forest.winner_of(node)
                        )
                        plies = 0
                    else:
                        winner, plies = self.game.playout(
                            forest.state_of(node), playout_rng
                        )
                        forest.backprop_winner(t, node, winner)
                    self.clock.advance(
                        self.cost.iteration_time(depth, plies)
                    )
                    cpu_iterations += 1
                    simulations += 1
            result = self.gpu.stream.synchronize(event)
            with prof.phase("backprop"):
                per_block = result.winners.reshape(blocks, tpb)
                forest.backprop_block(leaves, tpb, per_block)
            gpu_iterations += 1
            simulations += result.playouts
            live["iterations"] = gpu_iterations
            live["cpu_iterations"] = cpu_iterations
            live["simulations"] = simulations
            live["next_tree"] = next_tree
            # The kernel was just synchronised, so the stream is idle:
            # a clean checkpoint boundary.
            self._after_iteration(gpu_iterations)

        stats = forest.aggregate_stats()
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=gpu_iterations,
            simulations=simulations,
            max_depth=forest.max_depth(),
            tree_nodes=forest.node_count(),
            elapsed_s=self.clock.now - live["start_s"],
            trees=blocks,
            extras={
                "cpu.iterations": cpu_iterations,
                "gpu.kernels": self.gpu.stats.kernels_launched,
                "tree.depth": forest.per_tree_depth(),
                "tree.nodes": forest.per_tree_nodes(),
            },
            engine=self.name,
        )
        self._live = None
        return result

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        return {
            "forest": live["forest"].snapshot(),
            "playout_rng": live["playout_rng"].getstate(),
            "start_s": live["start_s"],
            "budget_s": live["budget_s"],
            "next_tree": live["next_tree"],
            "iterations": live["iterations"],
            "cpu_iterations": live["cpu_iterations"],
            "simulations": live["simulations"],
            "gpu": self.gpu.getstate(),
        }

    def _restore_payload(self, payload: dict) -> dict:
        self.gpu.setstate(payload["gpu"])
        return {
            "forest": restore_forest(self.game, payload["forest"]),
            "playout_rng": XorShift64Star.from_state(
                payload["playout_rng"]
            ),
            "start_s": payload["start_s"],
            "budget_s": payload["budget_s"],
            "next_tree": payload["next_tree"],
            "iterations": payload["iterations"],
            "cpu_iterations": payload["cpu_iterations"],
            "simulations": payload["simulations"],
        }


register_extra_keys(
    HybridMcts.name,
    {
        "cpu.iterations": int,
        "gpu.kernels": int,
        "tree.depth": list,
        "tree.nodes": list,
    },
)
