"""Declarative engine specifications and the engine factory.

An :class:`EngineSpec` names an engine *kind* plus its grid/shape
parameters, and can be written three ways::

    make_engine("block:16x32", game, seed=1)          # string
    make_engine({"kind": "root", "n_trees": 64,       # dict
                 "vote": "majority"}, game, seed=1)
    make_engine(EngineSpec("sequential"), game, seed=1)

The string grammar is ``kind[:AxBxC][@backend]`` -- the colon suffix
holds the kind's positional integers joined with ``x`` (``block:16x32``
is 16 blocks of 32 threads) and the optional ``@`` suffix picks the
tree backend (``block:16x32@arena``; default ``node``).  Dict specs
take the same positional parameters by name plus any keyword the
engine constructor accepts (``ucb_c``, ``vote``, ``backend``,
``device`` as a registered device name, ...).

Construction through a spec is *exactly equivalent* to calling the
engine class directly: same constructor arguments, same RNG streams,
same :class:`~repro.core.results.SearchResult` for the same seed and
budget.  The serving layer (:mod:`repro.serve`) and the CLI construct
every engine through this factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.backend import validate_backend
from repro.core.base import Engine
from repro.core.block_parallel import BlockParallelMcts
from repro.core.hybrid import HybridMcts
from repro.core.leaf_parallel import LeafParallelMcts
from repro.core.multigpu import MultiGpuMcts
from repro.core.root_parallel import RootParallelMcts
from repro.core.sequential import SequentialMcts
from repro.core.tree_parallel import TreeParallelMcts
from repro.games.base import Game


@dataclass(frozen=True)
class EngineKind:
    """One registered engine family: class + positional grammar."""

    name: str
    cls: type
    #: Names of the ``x``-separated integers in the string form, in
    #: order (empty for kinds like ``sequential`` that take none).
    positional: tuple[str, ...]
    #: A canonical example spec string, used in docs and error text.
    example: str


_KINDS: dict[str, EngineKind] = {}


def register_engine(
    name: str,
    cls: type,
    positional: tuple[str, ...] = (),
    example: str | None = None,
) -> EngineKind:
    """Register an engine kind so specs can name it.

    Extension point: downstream code can register its own engine class
    and immediately construct it through :func:`make_engine`, the CLI
    ``--engine`` flag, and the serving layer.
    """
    if not issubclass(cls, Engine):
        raise TypeError(f"{cls.__name__} is not an Engine subclass")
    kind = EngineKind(
        name=name,
        cls=cls,
        positional=tuple(positional),
        example=example
        or (name if not positional else f"{name}:" + "x".join("8" * len(positional))),
    )
    _KINDS[name] = kind
    return kind


def engine_kinds() -> tuple[EngineKind, ...]:
    """All registered engine kinds, sorted by name."""
    return tuple(_KINDS[k] for k in sorted(_KINDS))


@dataclass(frozen=True)
class EngineSpec:
    """A parsed, buildable engine description."""

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown engine kind {self.kind!r}; "
                f"available: {sorted(_KINDS)}"
            )

    @staticmethod
    def parse(text: str) -> "EngineSpec":
        """Parse the string form (``"block:16x32[@backend]"``)."""
        if not isinstance(text, str) or not text.strip():
            raise ValueError(f"empty engine spec: {text!r}")
        body, at, backend_token = text.strip().partition("@")
        backend_params: dict[str, object] = {}
        if at:
            validate_backend(backend_token)
            backend_params["backend"] = backend_token
        kind_token, sep, arg_token = body.partition(":")
        kind = _KINDS.get(kind_token)
        if kind is None:
            raise ValueError(
                f"unknown engine kind {kind_token!r} in spec {text!r}; "
                f"available: {sorted(_KINDS)}"
            )
        if not sep:
            if kind.positional:
                raise ValueError(
                    f"engine spec {text!r} is missing its parameters; "
                    f"expected e.g. {kind.example!r}"
                )
            return EngineSpec(kind.name, backend_params)
        tokens = arg_token.split("x")
        if len(tokens) != len(kind.positional):
            raise ValueError(
                f"engine spec {text!r} has {len(tokens)} parameter(s) "
                f"in {arg_token!r}; {kind.name} takes "
                f"{len(kind.positional)} "
                f"({' x '.join(kind.positional) or 'none'}), "
                f"e.g. {kind.example!r}"
            )
        params: dict[str, object] = dict(backend_params)
        for pname, token in zip(kind.positional, tokens):
            try:
                params[pname] = int(token)
            except ValueError:
                raise ValueError(
                    f"invalid integer {token!r} for {pname} in engine "
                    f"spec {text!r}"
                ) from None
        return EngineSpec(kind.name, params)

    @staticmethod
    def coerce(spec: "EngineSpec | str | Mapping") -> "EngineSpec":
        """Accept a spec in any supported form."""
        if isinstance(spec, EngineSpec):
            return spec
        if isinstance(spec, str):
            return EngineSpec.parse(spec)
        if isinstance(spec, Mapping):
            if "kind" not in spec:
                raise ValueError(
                    f"dict engine spec needs a 'kind' key: {dict(spec)!r}"
                )
            params = {k: v for k, v in spec.items() if k != "kind"}
            return EngineSpec(str(spec["kind"]), params)
        raise ValueError(
            f"engine spec must be a string, dict or EngineSpec, "
            f"got {type(spec).__name__}: {spec!r}"
        )

    def to_string(self) -> str:
        """Canonical string form (positional parameters + backend).

        Raises ``ValueError`` if the spec holds keyword parameters the
        string grammar cannot carry.
        """
        kind = _KINDS[self.kind]
        extra = set(self.params) - set(kind.positional) - {"backend"}
        if extra:
            raise ValueError(
                f"spec has non-positional parameters {sorted(extra)}; "
                "only dict form can express them"
            )
        backend = self.params.get("backend")
        suffix = f"@{backend}" if backend and backend != "node" else ""
        if not kind.positional:
            return self.kind + suffix
        missing = [p for p in kind.positional if p not in self.params]
        if missing:
            raise ValueError(
                f"spec is missing positional parameters {missing}"
            )
        return (
            self.kind
            + ":"
            + "x".join(str(self.params[p]) for p in kind.positional)
            + suffix
        )

    def build(self, game: Game, seed: int, **overrides) -> Engine:
        """Construct the engine (``overrides`` win over spec params)."""
        kind = _KINDS[self.kind]
        kwargs = _resolve_params(self.params)
        kwargs.update(overrides)
        return kind.cls(game, seed, **kwargs)


def _resolve_params(params: Mapping[str, object]) -> dict:
    """Turn serialisable spec values into constructor arguments."""
    out = dict(params)
    device = out.get("device")
    if isinstance(device, str):
        from repro.gpu.device import get_device_spec

        out["device"] = get_device_spec(device)
    cost_model = out.get("cost_model")
    if isinstance(cost_model, str):
        from repro.cpu.costmodel import cpu_cost_model

        out["cost_model"] = cpu_cost_model(cost_model)
    return out


def make_engine(
    spec: EngineSpec | str | Mapping,
    game: Game,
    seed: int,
    **overrides,
) -> Engine:
    """Build an engine from a declarative spec.

    Equivalent to constructing the engine class directly with the same
    arguments -- byte-for-byte identical search results for the same
    seed and budget.
    """
    return EngineSpec.coerce(spec).build(game, seed, **overrides)


register_engine("sequential", SequentialMcts, (), "sequential")
register_engine(
    "leaf", LeafParallelMcts, ("blocks", "threads_per_block"), "leaf:2x64"
)
register_engine(
    "block", BlockParallelMcts, ("blocks", "threads_per_block"), "block:16x32"
)
register_engine(
    "hybrid", HybridMcts, ("blocks", "threads_per_block"), "hybrid:16x32"
)
register_engine("root", RootParallelMcts, ("n_trees",), "root:64")
register_engine("tree", TreeParallelMcts, ("n_workers",), "tree:8")
register_engine(
    "multigpu",
    MultiGpuMcts,
    ("n_gpus", "blocks", "threads_per_block"),
    "multigpu:4x112x64",
)
