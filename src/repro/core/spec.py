"""Declarative engine specifications and the engine factory.

An :class:`EngineSpec` names an engine *kind* plus its grid/shape
parameters, and can be written three ways::

    make_engine("block:16x32", game, seed=1)          # string
    make_engine({"kind": "root", "n_trees": 64,       # dict
                 "vote": "majority"}, game, seed=1)
    make_engine(EngineSpec("sequential"), game, seed=1)

The string grammar is ``kind[:AxBxC][@mod[=value]]*`` -- the colon
suffix holds the kind's positional integers joined with ``x``
(``block:16x32`` is 16 blocks of 32 threads) and each ``@`` token is a
registered *modifier*.  Modifiers are order-independent and composable
(``tree:8@wuct@arena`` == ``tree:8@arena@wuct``); unknown modifiers,
duplicates, and two modifiers fighting over the same slot (``@node``
plus ``@arena``) are errors naming the offending token.  The built-in
modifier table:

========== ============================ ==========================
modifier   sets                          applies to
========== ============================ ==========================
``@node``   ``backend="node"``           every kind (the default)
``@arena``  ``backend="arena"``          every kind
``@vloss``  ``mode="vloss"`` (optional   ``tree``, ``pipeline``
            ``=X`` sets ``virtual_loss``)
``@wuct``   ``mode="wuct"``              ``tree``, ``pipeline``
``@vote``   ``=sum|majority|trimmed``    ``root``, ``block``
``@compiled`` ``playout="compiled"``     every kind
========== ============================ ==========================

:meth:`EngineSpec.canonical` renders the unique canonical string --
positional args, then modifiers in table order with defaults omitted
-- and round-trips through :meth:`EngineSpec.parse` for every
registered kind.  Every spec string the old positional-suffix grammar
accepted (``kind[:AxB][@backend]``) is a strict subset of this grammar
and still parses to the same engine.

Construction through a spec is *exactly equivalent* to calling the
engine class directly: same constructor arguments, same RNG streams,
same :class:`~repro.core.results.SearchResult` for the same seed and
budget.  The serving layer (:mod:`repro.serve`) and the CLI construct
every engine through this factory.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.backend import validate_backend
from repro.core.base import Engine
from repro.core.block_parallel import BlockParallelMcts
from repro.core.hybrid import HybridMcts
from repro.core.leaf_parallel import LeafParallelMcts
from repro.core.multigpu import MultiGpuMcts
from repro.core.pipeline import PipelineMcts
from repro.core.root_parallel import VOTE_MODES, RootParallelMcts
from repro.core.sequential import SequentialMcts
from repro.core.tree_parallel import TreeParallelMcts
from repro.games.base import Game


@dataclass(frozen=True)
class EngineKind:
    """One registered engine family: class + positional grammar."""

    name: str
    cls: type
    #: Names of the ``x``-separated integers in the string form, in
    #: order (empty for kinds like ``sequential`` that take none).
    positional: tuple[str, ...]
    #: A canonical example spec string, used in docs and error text.
    example: str


_KINDS: dict[str, EngineKind] = {}


def register_engine(
    name: str,
    cls: type,
    positional: tuple[str, ...] = (),
    example: str | None = None,
) -> EngineKind:
    """Register an engine kind so specs can name it.

    Extension point: downstream code can register its own engine class
    and immediately construct it through :func:`make_engine`, the CLI
    ``--engine`` flag, and the serving layer.
    """
    if not issubclass(cls, Engine):
        raise TypeError(f"{cls.__name__} is not an Engine subclass")
    kind = EngineKind(
        name=name,
        cls=cls,
        positional=tuple(positional),
        example=example
        or (name if not positional else f"{name}:" + "x".join("8" * len(positional))),
    )
    _KINDS[name] = kind
    return kind


def engine_kinds() -> tuple[EngineKind, ...]:
    """All registered engine kinds, sorted by name."""
    return tuple(_KINDS[k] for k in sorted(_KINDS))


@dataclass(frozen=True)
class SpecModifier:
    """One registered ``@`` token of the spec grammar."""

    name: str
    #: Modifiers sharing a group fight over the same engine slot; a
    #: spec may carry at most one modifier per group (``@node@arena``
    #: is a conflict, not a composition).
    group: str
    #: Constructor params a bare ``@name`` sets; None means the
    #: modifier cannot appear without ``=value`` (e.g. ``@vote``).
    flag_params: "Mapping[str, object] | None" = None
    #: Constructor param an ``@name=value`` suffix sets; None means
    #: the modifier takes no value (``@arena=2`` is an error).
    value_param: str | None = None
    #: Parser/validator for the value token; raises ValueError on bad
    #: input (the message is wrapped with the spec context).
    value_parse: "Callable[[str], object] | None" = None
    #: Engine kinds the modifier applies to; None means every kind.
    kinds: "frozenset[str] | None" = None

    def applies_to(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds


#: Registration-ordered modifier table; canonical strings emit
#: modifiers in this order.
_MODIFIERS: dict[str, SpecModifier] = {}


def register_modifier(modifier: SpecModifier) -> SpecModifier:
    """Register a spec modifier (extension point, like engine kinds)."""
    if modifier.flag_params is None and modifier.value_param is None:
        raise ValueError(
            f"modifier @{modifier.name} sets nothing: give it "
            "flag_params, a value_param, or both"
        )
    _MODIFIERS[modifier.name] = modifier
    return modifier


def spec_modifiers() -> tuple[SpecModifier, ...]:
    """All registered modifiers, in registration (= canonical) order."""
    return tuple(_MODIFIERS.values())


def _modifiers_for(kind: str) -> list[str]:
    return [
        f"@{m.name}" for m in _MODIFIERS.values() if m.applies_to(kind)
    ]


def _parse_vote(token: str) -> str:
    if token not in VOTE_MODES:
        raise ValueError(
            f"unknown vote mode {token!r}; available: {VOTE_MODES}"
        )
    return token


def _parse_virtual_loss(token: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"invalid virtual-loss value {token!r} (expected a number)"
        ) from None


def _fmt_value(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


@dataclass(frozen=True)
class EngineSpec:
    """A parsed, buildable engine description."""

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown engine kind {self.kind!r}; "
                f"available: {sorted(_KINDS)}"
            )

    @staticmethod
    def parse(text: str) -> "EngineSpec":
        """Parse the string form (``"kind[:AxB][@mod[=value]]*"``)."""
        if not isinstance(text, str) or not text.strip():
            raise ValueError(f"empty engine spec: {text!r}")
        body, *mod_tokens = text.strip().split("@")
        kind_token, sep, arg_token = body.partition(":")
        kind = _KINDS.get(kind_token)
        if kind is None:
            raise ValueError(
                f"unknown engine kind {kind_token!r} in spec {text!r}; "
                f"available: {sorted(_KINDS)}"
            )
        params: dict[str, object] = {}
        if sep:
            tokens = arg_token.split("x")
            if len(tokens) != len(kind.positional):
                raise ValueError(
                    f"engine spec {text!r} has {len(tokens)} parameter(s) "
                    f"in {arg_token!r}; {kind.name} takes "
                    f"{len(kind.positional)} "
                    f"({' x '.join(kind.positional) or 'none'}), "
                    f"e.g. {kind.example!r}"
                )
            for pname, token in zip(kind.positional, tokens):
                try:
                    params[pname] = int(token)
                except ValueError:
                    raise ValueError(
                        f"invalid integer {token!r} for {pname} in engine "
                        f"spec {text!r}"
                    ) from None
        elif kind.positional:
            raise ValueError(
                f"engine spec {text!r} is missing its parameters; "
                f"expected e.g. {kind.example!r}"
            )
        params.update(
            _parse_modifiers(kind.name, mod_tokens, text)
        )
        return EngineSpec(kind.name, params)

    @staticmethod
    def coerce(spec: "EngineSpec | str | Mapping") -> "EngineSpec":
        """Accept a spec in any supported form."""
        if isinstance(spec, EngineSpec):
            return spec
        if isinstance(spec, str):
            return EngineSpec.parse(spec)
        if isinstance(spec, Mapping):
            if "kind" not in spec:
                raise ValueError(
                    f"dict engine spec needs a 'kind' key: {dict(spec)!r}"
                )
            params = {k: v for k, v in spec.items() if k != "kind"}
            return EngineSpec(str(spec["kind"]), params)
        raise ValueError(
            f"engine spec must be a string, dict or EngineSpec, "
            f"got {type(spec).__name__}: {spec!r}"
        )

    def canonical(self) -> str:
        """The unique canonical string form: positional parameters,
        then modifiers in table order with defaults omitted
        (``canonical(parse(s))`` is a fixed point for every string
        ``s`` the grammar accepts).

        Raises ``ValueError`` if the spec holds keyword parameters the
        string grammar cannot carry.
        """
        kind = _KINDS[self.kind]
        expressible = set(kind.positional)
        for mod in _MODIFIERS.values():
            if not mod.applies_to(self.kind):
                continue
            if mod.flag_params is not None:
                expressible.update(mod.flag_params)
            if mod.value_param is not None:
                expressible.add(mod.value_param)
        extra = set(self.params) - expressible
        if extra:
            raise ValueError(
                f"spec has non-positional parameters {sorted(extra)}; "
                "only dict form can express them"
            )
        missing = [p for p in kind.positional if p not in self.params]
        if missing:
            raise ValueError(
                f"spec is missing positional parameters {missing}"
            )
        head = self.kind
        if kind.positional:
            head += ":" + "x".join(
                str(self.params[p]) for p in kind.positional
            )
        return head + _emit_modifiers(self.kind, self.params)

    def to_string(self) -> str:
        """Deprecated alias of :meth:`canonical`."""
        warnings.warn(
            "EngineSpec.to_string() is deprecated; use canonical()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.canonical()

    def build(self, game: Game, seed: int, **overrides) -> Engine:
        """Construct the engine (``overrides`` win over spec params)."""
        kind = _KINDS[self.kind]
        kwargs = _resolve_params(self.params)
        kwargs.update(overrides)
        return kind.cls(game, seed, **kwargs)


def _parse_modifiers(
    kind: str, tokens: "list[str]", text: str
) -> dict[str, object]:
    """Resolve the ``@`` tokens of one spec string into params."""
    params: dict[str, object] = {}
    claimed: dict[str, str] = {}  # group -> modifier name
    for token in tokens:
        name, eq, value = token.partition("=")
        mod = _MODIFIERS.get(name)
        if mod is None or not mod.applies_to(kind):
            applicable = _modifiers_for(kind)
            detail = (
                f"does not apply to engine kind {kind!r}"
                if mod is not None
                else "is not registered"
            )
            raise ValueError(
                f"unknown modifier @{name or token} in engine spec "
                f"{text!r}: @{name or token} {detail}; modifiers for "
                f"{kind}: {applicable or 'none'}"
            )
        holder = claimed.get(mod.group)
        if holder == mod.name:
            raise ValueError(
                f"duplicate modifier @{mod.name} in engine spec {text!r}"
            )
        if holder is not None:
            raise ValueError(
                f"conflicting modifiers @{holder} and @{mod.name} in "
                f"engine spec {text!r} (both set the {mod.group})"
            )
        claimed[mod.group] = mod.name
        if eq:
            if mod.value_param is None:
                raise ValueError(
                    f"modifier @{mod.name} takes no value in engine "
                    f"spec {text!r}"
                )
            try:
                parsed = mod.value_parse(value) if mod.value_parse else value
            except ValueError as exc:
                raise ValueError(
                    f"bad value for modifier @{mod.name} in engine "
                    f"spec {text!r}: {exc}"
                ) from None
            params[mod.value_param] = parsed
            if mod.flag_params is not None:
                params.update(mod.flag_params)
        else:
            if mod.flag_params is None:
                raise ValueError(
                    f"modifier @{mod.name} needs a value "
                    f"(@{mod.name}=...) in engine spec {text!r}"
                )
            params.update(mod.flag_params)
    return params


#: Default parameter values the canonical form omits.
_CANONICAL_DEFAULTS = {
    "backend": "node",
    "mode": "vloss",
    "vote": "sum",
    "playout": "numpy",
}


def _emit_modifiers(kind: str, params: Mapping[str, object]) -> str:
    """Render the canonical modifier suffix for ``params``."""
    out = []
    for mod in _MODIFIERS.values():
        if not mod.applies_to(kind):
            continue
        if mod.value_param is not None and mod.value_param in params:
            out.append(
                f"@{mod.name}={_fmt_value(params[mod.value_param])}"
            )
            continue
        if mod.flag_params is None:
            continue
        match = all(
            params.get(p) == v for p, v in mod.flag_params.items()
        )
        explicit = any(p in params for p in mod.flag_params)
        is_default = all(
            _CANONICAL_DEFAULTS.get(p) == v
            for p, v in mod.flag_params.items()
        )
        if match and explicit and not is_default:
            out.append(f"@{mod.name}")
    return "".join(out)


def _resolve_params(params: Mapping[str, object]) -> dict:
    """Turn serialisable spec values into constructor arguments."""
    out = dict(params)
    device = out.get("device")
    if isinstance(device, str):
        from repro.gpu.device import get_device_spec

        out["device"] = get_device_spec(device)
    cost_model = out.get("cost_model")
    if isinstance(cost_model, str):
        from repro.cpu.costmodel import cpu_cost_model

        out["cost_model"] = cpu_cost_model(cost_model)
    return out


def with_backend(
    spec: "EngineSpec | str | Mapping", backend: str
) -> EngineSpec:
    """Apply a default tree backend to a spec: the spec's own backend
    modifier/param wins; ``"node"`` (the global default) is a no-op.
    The spec-aware replacement for suffixing ``@backend`` onto spec
    strings."""
    validate_backend(backend)
    parsed = EngineSpec.coerce(spec)
    if backend == "node" or "backend" in parsed.params:
        return parsed
    return EngineSpec(parsed.kind, {**parsed.params, "backend": backend})


def with_playout(
    spec: "EngineSpec | str | Mapping", playout: str
) -> EngineSpec:
    """Apply a default playout executor to a spec: the spec's own
    ``@compiled``/param wins; ``"numpy"`` (the global default) is a
    no-op.  Mirrors :func:`with_backend`."""
    from repro.core.executors import validate_playout

    validate_playout(playout)
    parsed = EngineSpec.coerce(spec)
    if playout == "numpy" or "playout" in parsed.params:
        return parsed
    return EngineSpec(parsed.kind, {**parsed.params, "playout": playout})


def make_engine(
    spec: EngineSpec | str | Mapping,
    game: Game,
    seed: int,
    **overrides,
) -> Engine:
    """Build an engine from a declarative spec.

    Equivalent to constructing the engine class directly with the same
    arguments -- byte-for-byte identical search results for the same
    seed and budget.
    """
    return EngineSpec.coerce(spec).build(game, seed, **overrides)


register_engine("sequential", SequentialMcts, (), "sequential")
register_engine(
    "leaf", LeafParallelMcts, ("blocks", "threads_per_block"), "leaf:2x64"
)
register_engine(
    "block", BlockParallelMcts, ("blocks", "threads_per_block"), "block:16x32"
)
register_engine(
    "hybrid", HybridMcts, ("blocks", "threads_per_block"), "hybrid:16x32"
)
register_engine("root", RootParallelMcts, ("n_trees",), "root:64")
register_engine("tree", TreeParallelMcts, ("n_workers",), "tree:8")
register_engine("pipeline", PipelineMcts, ("n_workers",), "pipeline:8")
register_engine(
    "multigpu",
    MultiGpuMcts,
    ("n_gpus", "blocks", "threads_per_block"),
    "multigpu:4x112x64",
)

#: Kinds sharing one search tree among concurrent selectors; only
#: these take the in-flight accounting (@vloss/@wuct) modifiers.
_SHARED_TREE_KINDS = frozenset({"tree", "pipeline"})

register_modifier(
    SpecModifier(
        name="vloss",
        group="in-flight accounting mode",
        flag_params={"mode": "vloss"},
        value_param="virtual_loss",
        value_parse=_parse_virtual_loss,
        kinds=_SHARED_TREE_KINDS,
    )
)
register_modifier(
    SpecModifier(
        name="wuct",
        group="in-flight accounting mode",
        flag_params={"mode": "wuct"},
        kinds=_SHARED_TREE_KINDS,
    )
)
register_modifier(
    SpecModifier(
        name="vote",
        group="root vote",
        value_param="vote",
        value_parse=_parse_vote,
        kinds=frozenset({"root", "block"}),
    )
)
register_modifier(
    SpecModifier(
        name="node",
        group="tree backend",
        flag_params={"backend": "node"},
    )
)
register_modifier(
    SpecModifier(
        name="arena",
        group="tree backend",
        flag_params={"backend": "arena"},
    )
)
register_modifier(
    SpecModifier(
        name="compiled",
        group="playout executor",
        flag_params={"playout": "compiled"},
    )
)
