"""Tree-parallel MCTS with virtual loss (literature baseline).

Chaslot et al.'s third scheme, which the paper cites and rules out for
GPUs (it needs fine-grained shared-memory synchronisation a SIMT device
cannot provide cheaply).  We implement it as an ablation baseline:
``n_workers`` select concurrently from one shared tree, virtual loss
spreading them across different leaves; playouts are batched; real
results replace the phantom losses at the end of each round.
"""

from __future__ import annotations

from repro.core.backend import restore_tree
from repro.core.base import BatchExecutor, Engine, SearchGenerator, drive_search
from repro.core.policy import select_move
from repro.core.results import SearchResult
from repro.games.base import GameState
from repro.util.seeding import derive_seed


class TreeParallelMcts(Engine):
    """One shared tree, ``n_workers`` concurrent selectors."""

    name = "tree_parallel"

    def __init__(
        self, game, seed, n_workers: int, virtual_loss: float = 1.0, **kwargs
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive: {n_workers}")
        if virtual_loss < 0:
            raise ValueError(
                f"virtual_loss must be non-negative: {virtual_loss}"
            )
        super().__init__(game, seed, **kwargs)
        self.n_workers = n_workers
        self.virtual_loss = virtual_loss

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        executor = BatchExecutor(
            self.game.name, derive_seed(self.seed, "exec")
        )
        self._pending_executor = executor
        return drive_search(self.search_steps(state, budget_s), executor)

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        self._check_budget(budget_s, state)
        self._live = {
            "tree": self._make_tree(state, self.rng.fork("tree")),
            "worker_time": [0.0] * self.n_workers,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
            "executor": self._take_pending_executor(),
        }
        return self._session_steps()

    def _session_steps(self) -> SearchGenerator:
        live = self._live
        tree = live["tree"]
        worker_time = live["worker_time"]
        budget_s = live["budget_s"]
        cap = self._iteration_cap()
        iterations = live["iterations"]
        simulations = live["simulations"]

        while min(worker_time) < budget_s and iterations < cap:
            requests = []
            pending = []  # (worker, node, depth)
            instant = []  # terminal selections: (worker, node, depth)
            for w in range(self.n_workers):
                if worker_time[w] >= budget_s:
                    continue
                node, depth = tree.select_expand()
                tree.apply_virtual_loss(node, self.virtual_loss)
                if tree.terminal_of(node):
                    instant.append((w, node, depth))
                else:
                    requests.append(tree.state_of(node))
                    pending.append((w, node, depth))
            results = (yield requests) if requests else []
            for w, node, depth in instant:
                tree.revert_virtual_loss(node, self.virtual_loss)
                tree.backprop_winner(node, tree.winner_of(node))
                worker_time[w] += self.cost.iteration_time(depth, 0)
                iterations += 1
                simulations += 1
            for (w, node, depth), (winner, plies) in zip(
                pending, results
            ):
                tree.revert_virtual_loss(node, self.virtual_loss)
                tree.backprop_winner(node, winner)
                worker_time[w] += self.cost.iteration_time(depth, plies)
                iterations += 1
                simulations += 1
            live["iterations"] = iterations
            live["simulations"] = simulations
            # Round end: every virtual loss reverted -- a clean
            # checkpoint boundary.
            self._after_iteration(iterations)

        self.clock.advance(max(worker_time))
        stats = tree.root_stats()
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=iterations,
            simulations=simulations,
            max_depth=tree.max_depth,
            tree_nodes=tree.node_count,
            elapsed_s=max(worker_time),
            extras={
                "per_tree_depth": [tree.depth()],
                "per_tree_nodes": [tree.node_count],
            },
        )
        self._live = None
        return result

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        return {
            "tree": live["tree"].snapshot(),
            "worker_time": list(live["worker_time"]),
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "executor": self._executor_state(live["executor"]),
        }

    def _restore_payload(self, payload: dict) -> dict:
        return {
            "tree": restore_tree(self.game, payload["tree"]),
            "worker_time": list(payload["worker_time"]),
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
            "executor": self._restore_executor(payload["executor"]),
        }
