"""Tree-parallel MCTS on one shared tree (virtual loss / WU-UCT).

Chaslot et al.'s third scheme, which the paper cites and rules out for
GPUs (it needs fine-grained shared-memory synchronisation a SIMT device
cannot provide cheaply).  We implement it as an ablation baseline:
``n_workers`` select concurrently from one shared tree; playouts are
batched; real results replace the in-flight markers at the end of each
round.  Two accounting modes govern how in-flight selections bias
later selections in the same round:

* ``mode="vloss"`` (default, ``tree:N@vloss``) -- classic virtual
  loss: each in-flight path carries ``virtual_loss`` phantom *losing*
  visits, dragging down both the mean and the exploration term until
  the real result arrives.
* ``mode="wuct"`` (``tree:N@wuct``) -- WU-UCT (Liu et al., "Watch the
  Unobserved"): in-flight selections are counted as *unobserved
  samples* ``O(s,a)``.  The exploration term uses ``N+O`` and
  ``n_i+O_i`` (so concurrent workers still spread out) while the mean
  stays the average over **completed** playouts -- no phantom losses
  polluting value estimates, which matters as ``N`` grows.
"""

from __future__ import annotations

from repro.core.backend import SingleTreeForest, restore_tree
from repro.core.base import BatchExecutor, Engine, SearchGenerator, drive_search
from repro.core.policy import select_move, validate_parallel_mode
from repro.core.results import (
    INTEGRITY_EXTRA_KEYS,
    SearchResult,
    register_extra_keys,
)
from repro.games.base import GameState
from repro.integrity.engine import IntegrityState
from repro.util.seeding import derive_seed


def resolve_shared_tree_mode(
    mode: str, virtual_loss: "float | None"
) -> tuple[str, float]:
    """Validate a shared-tree engine's ``(mode, virtual_loss)`` pair
    and return ``(mode, marker_amount)``.

    Under ``vloss`` the marker is the virtual-loss weight and must be
    strictly positive -- ``virtual_loss=0`` silently disables the
    spreading mechanism and collapses every worker onto one leaf.
    Under ``wuct`` each in-flight playout is exactly one unobserved
    sample, so a ``virtual_loss`` parameter is meaningless and
    rejected."""
    validate_parallel_mode(mode)
    if mode == "wuct":
        if virtual_loss is not None:
            raise ValueError(
                "virtual_loss is a @vloss parameter; @wuct counts "
                "each in-flight playout as one unobserved sample -- "
                "drop virtual_loss or use mode='vloss'"
            )
        return mode, 1.0
    amount = 1.0 if virtual_loss is None else float(virtual_loss)
    if amount <= 0:
        raise ValueError(
            f"virtual_loss must be > 0 under @vloss (got {amount}): "
            "zero virtual loss lets every worker collapse onto the "
            "same leaf"
        )
    return mode, amount


class TreeParallelMcts(Engine):
    """One shared tree, ``n_workers`` concurrent selectors."""

    name = "tree_parallel"

    def __init__(
        self,
        game,
        seed,
        n_workers: int,
        mode: str = "vloss",
        virtual_loss: "float | None" = None,
        injector=None,
        integrity=None,
        **kwargs,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive: {n_workers}")
        self.mode, marker = resolve_shared_tree_mode(mode, virtual_loss)
        super().__init__(game, seed, **kwargs)
        self.n_workers = n_workers
        #: Per-in-flight-path marker weight (phantom losses under
        #: vloss, unobserved-sample count -- always 1 -- under wuct).
        self.virtual_loss = marker
        self.injector = injector
        self.integrity = integrity

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        executor = BatchExecutor(
            self.game.name,
            derive_seed(self.seed, "exec"),
            playout=self.playout,
        )
        self._pending_executor = executor
        return drive_search(self.search_steps(state, budget_s), executor)

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        self._check_budget(budget_s, state)
        self._live = {
            "tree": self._make_tree(
                state, self.rng.fork("tree"), parallel_mode=self.mode
            ),
            "worker_time": [0.0] * self.n_workers,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
            "executor": self._take_pending_executor(),
            "integrity": (
                IntegrityState(self.integrity, self.injector, 1)
                if self.injector is not None
                else None
            ),
        }
        return self._session_steps()

    def _session_steps(self) -> SearchGenerator:
        live = self._live
        tree = live["tree"]
        worker_time = live["worker_time"]
        budget_s = live["budget_s"]
        cap = self._iteration_cap()
        iterations = live["iterations"]
        simulations = live["simulations"]
        guard = live.get("integrity")
        screen = guard if live.get("executor") is not None else None
        view = SingleTreeForest(tree) if guard is not None else None

        while min(worker_time) < budget_s and iterations < cap:
            requests = []
            pending = []  # (worker, node, depth)
            instant = []  # terminal selections: (worker, node, depth)
            for w in range(self.n_workers):
                if worker_time[w] >= budget_s:
                    continue
                node, depth = tree.select_expand()
                tree.apply_virtual_loss(node, self.virtual_loss)
                if tree.terminal_of(node):
                    instant.append((w, node, depth))
                else:
                    requests.append(tree.state_of(node))
                    pending.append((w, node, depth))
            results = (yield requests) if requests else []
            if screen is not None and requests:
                results = yield from self._screen_results(
                    requests, results, screen
                )
            for w, node, depth in instant:
                tree.revert_virtual_loss(node, self.virtual_loss)
                tree.backprop_winner(node, tree.winner_of(node))
                worker_time[w] += self.cost.iteration_time(depth, 0)
                iterations += 1
                simulations += 1
            for (w, node, depth), (winner, plies) in zip(
                pending, results
            ):
                tree.revert_virtual_loss(node, self.virtual_loss)
                tree.backprop_winner(node, winner)
                worker_time[w] += self.cost.iteration_time(depth, plies)
                iterations += 1
                simulations += 1
            live["iterations"] = iterations
            live["simulations"] = simulations
            if guard is not None:
                guard.poison(view, 1.0)
                guard.audit(view, iterations)
            # Round end: every in-flight marker reverted -- a clean
            # checkpoint boundary.
            self._after_iteration(iterations)

        self.clock.advance(max(worker_time))
        if guard is not None:
            guard.final_sweep(view)
        stats = tree.root_stats()
        extras = {
            "tree.depth": [tree.depth()],
            "tree.nodes": [tree.node_count],
        }
        if guard is not None:
            extras.update(guard.extras())
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=iterations,
            simulations=simulations,
            max_depth=tree.max_depth,
            tree_nodes=tree.node_count,
            elapsed_s=max(worker_time),
            extras=extras,
            engine=self.name,
        )
        self._live = None
        return result

    def _screen_results(self, requests, results, guard):
        """Screen one round's playout answers; rejected batches are
        re-requested (fresh executor draws) up to the policy's retry
        budget, then degraded to neutral ``(0, 0)`` answers."""
        for attempt in range(guard.policy.max_result_retries + 1):
            results, ok = guard.screen_answers(list(results))
            if ok:
                return results
            if attempt < guard.policy.max_result_retries:
                results = yield requests
        guard.give_up()
        return [(0, 0)] * len(requests)

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        payload = {
            "mode": self.mode,
            "tree": live["tree"].snapshot(),
            "worker_time": list(live["worker_time"]),
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "executor": self._executor_state(live["executor"]),
        }
        if live.get("integrity") is not None:
            payload["integrity"] = live["integrity"].getstate()
        return payload

    def _restore_payload(self, payload: dict) -> dict:
        from repro.core.checkpoint import CheckpointError

        snap_mode = payload.get("mode", "vloss")
        if snap_mode != self.mode:
            raise CheckpointError(
                f"snapshot parallel mode mismatch: snapshot has "
                f"{snap_mode!r}, engine has {self.mode!r}"
            )
        guard = None
        if self.injector is not None:
            guard = IntegrityState(self.integrity, self.injector, 1)
            if "integrity" in payload:
                guard.setstate(payload["integrity"])
        return {
            "tree": restore_tree(self.game, payload["tree"]),
            "worker_time": list(payload["worker_time"]),
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
            "executor": self._restore_executor(payload["executor"]),
            "integrity": guard,
        }


register_extra_keys(
    TreeParallelMcts.name,
    {
        "tree.depth": list,
        "tree.nodes": list,
        **INTEGRITY_EXTRA_KEYS,
    },
)
