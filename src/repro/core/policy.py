"""Selection-rule and final-move policies shared by trees and engines.

This module is the single home for the two policy axes every backend
must agree on: the *in-tree* child-selection rule (UCB1 or UCB1-tuned)
and the *final* move-selection policy applied to aggregated root
statistics.  Both the pointer tree (:mod:`repro.core.tree`) and the
array arena (:mod:`repro.core.arena`) validate against the same
constants, so an engine cannot construct a tree with a rule the other
backend would reject.
"""

from __future__ import annotations

from typing import Mapping

#: The paper's UCB1 formula.
UCB1 = "ucb1"
#: Auer et al.'s variance-bounded variant (UCB ablation).
UCB1_TUNED = "ucb1_tuned"

#: Supported in-tree child-selection rules.
SELECTION_RULES = (UCB1, UCB1_TUNED)


def validate_selection_rule(rule: str) -> str:
    """Return ``rule`` if supported, raise ``ValueError`` otherwise."""
    if rule not in SELECTION_RULES:
        raise ValueError(
            f"unknown selection rule {rule!r}; "
            f"available: {SELECTION_RULES}"
        )
    return rule

#: Phantom-loss accounting: in-flight selections add losing visits to
#: both the mean and the exploration term (Chaslot et al.).
VLOSS = "vloss"
#: WU-UCT accounting: in-flight selections count as *unobserved*
#: samples -- they widen the exploration denominator but leave the
#: mean over completed playouts untouched (Liu et al., "Watch the
#: Unobserved").
WUCT = "wuct"

#: Supported in-flight accounting modes for shared-tree engines.
PARALLEL_MODES = (VLOSS, WUCT)


def validate_parallel_mode(mode: str) -> str:
    """Return ``mode`` if supported, raise ``ValueError`` otherwise."""
    if mode not in PARALLEL_MODES:
        raise ValueError(
            f"unknown parallel mode {mode!r}; "
            f"available: {PARALLEL_MODES}"
        )
    return mode


#: visits-based "robust child" -- the default, and what the paper's
#: root-style aggregation implies (sum visit counts, pick the max).
MAX_VISITS = "max_visits"
#: highest mean reward, guarded against tiny samples.
MAX_RATIO = "max_ratio"
#: highest raw win total.
MAX_WINS = "max_wins"

POLICIES = (MAX_VISITS, MAX_RATIO, MAX_WINS)


def select_move(
    stats: Mapping[int, tuple[float, float]],
    policy: str = MAX_VISITS,
    min_visits: float = 1.0,
) -> int:
    """Choose the move to play from per-move ``(visits, wins)`` stats.

    Ties break on the secondary statistic and then on the smallest move
    id, so selection is deterministic.
    """
    if not stats:
        raise ValueError("no move statistics to select from")
    if policy == MAX_VISITS:
        key = lambda m: (stats[m][0], stats[m][1], -m)  # noqa: E731
    elif policy == MAX_WINS:
        key = lambda m: (stats[m][1], stats[m][0], -m)  # noqa: E731
    elif policy == MAX_RATIO:

        def key(m):
            visits, wins = stats[m]
            ratio = wins / visits if visits >= min_visits else -1.0
            return (ratio, visits, -m)

    else:
        raise ValueError(
            f"unknown final-move policy {policy!r}; available: {POLICIES}"
        )
    return max(stats, key=key)
