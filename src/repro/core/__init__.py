"""MCTS core: the search tree, UCB selection, and all engines.

Engines (one per parallelisation scheme in the paper):

* :class:`SequentialMcts` -- one CPU core, the opponent/baseline.
* :class:`LeafParallelMcts` -- one tree, the whole GPU grid simulates
  from the selected leaf.
* :class:`RootParallelMcts` -- n independent CPU trees with root-level
  vote aggregation (the authors' earlier CPU scheme).
* :class:`BlockParallelMcts` -- **the paper's contribution**: one tree
  per GPU block, block threads simulate their tree's leaf.
* :class:`HybridMcts` -- block parallel with asynchronous kernels and
  overlapped CPU iterations (paper Figure 4).
* :class:`TreeParallelMcts` -- shared tree + virtual loss or WU-UCT
  in-flight accounting (literature baseline, ablations only).
* :class:`PipelineMcts` -- shared tree with the select/expand/playout/
  backprop stages software-pipelined over the virtual clock (3PMCTS).
* :class:`MultiGpuMcts` -- rank-per-GPU root aggregation over simulated
  MPI (paper Figure 9).

Engines are named by *spec strings* -- ``kind:args`` plus composable,
order-independent ``@modifier`` suffixes (``tree:8@wuct@arena``); see
:class:`EngineSpec`.
"""

from repro.core.arena import ArenaInvariantError, TreeArena
from repro.core.backend import (
    BACKENDS,
    ArenaForest,
    ArenaTree,
    NodeForest,
    make_forest,
    make_tree,
    restore_forest,
    restore_tree,
    validate_backend,
)
from repro.core.base import (
    BatchExecutor,
    Engine,
    ScalarExecutor,
    batch_executor,
    drive_search,
    scalar_executor,
    tally,
)
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    EngineSnapshot,
    load_checkpoint,
    save_checkpoint,
    snapshot_bytes,
    snapshot_from_bytes,
)
from repro.core.block_parallel import BlockParallelMcts
from repro.core.hybrid import HybridMcts
from repro.core.leaf_parallel import LeafParallelMcts
from repro.core.multigpu import MultiGpuMcts
from repro.core.pipeline import PipelineMcts
from repro.core.policy import (
    MAX_RATIO,
    MAX_VISITS,
    MAX_WINS,
    PARALLEL_MODES,
    SELECTION_RULES,
    select_move,
    validate_parallel_mode,
    validate_selection_rule,
)
from repro.core.results import (
    EXTRA_KEYS,
    INTEGRITY_EXTRA_KEYS,
    LEGACY_EXTRA_KEYS,
    SearchResult,
    extras_schema,
    register_extra_keys,
)
from repro.core.root_parallel import RootParallelMcts
from repro.core.sequential import SequentialMcts
from repro.core.spec import (
    EngineKind,
    EngineSpec,
    SpecModifier,
    engine_kinds,
    make_engine,
    register_engine,
    register_modifier,
    spec_modifiers,
    with_backend,
)
from repro.core.tree import (
    Node,
    SearchTree,
    aggregate_stat_dicts,
    aggregate_stats,
    majority_vote_stat_dicts,
    majority_vote_stats,
    trimmed_vote_stat_dicts,
    trimmed_vote_stats,
)
from repro.core.tree_parallel import TreeParallelMcts

__all__ = [
    "Engine",
    "EngineKind",
    "EngineSpec",
    "SpecModifier",
    "engine_kinds",
    "make_engine",
    "register_engine",
    "register_modifier",
    "spec_modifiers",
    "with_backend",
    "SearchResult",
    "EXTRA_KEYS",
    "INTEGRITY_EXTRA_KEYS",
    "LEGACY_EXTRA_KEYS",
    "extras_schema",
    "register_extra_keys",
    "PARALLEL_MODES",
    "validate_parallel_mode",
    "SearchTree",
    "TreeArena",
    "ArenaTree",
    "ArenaForest",
    "NodeForest",
    "BACKENDS",
    "make_tree",
    "make_forest",
    "validate_backend",
    "Node",
    "aggregate_stats",
    "aggregate_stat_dicts",
    "majority_vote_stats",
    "majority_vote_stat_dicts",
    "trimmed_vote_stats",
    "trimmed_vote_stat_dicts",
    "select_move",
    "SELECTION_RULES",
    "validate_selection_rule",
    "MAX_VISITS",
    "MAX_RATIO",
    "MAX_WINS",
    "SequentialMcts",
    "LeafParallelMcts",
    "RootParallelMcts",
    "BlockParallelMcts",
    "HybridMcts",
    "TreeParallelMcts",
    "PipelineMcts",
    "MultiGpuMcts",
    "drive_search",
    "scalar_executor",
    "batch_executor",
    "ScalarExecutor",
    "BatchExecutor",
    "tally",
    "ArenaInvariantError",
    "restore_tree",
    "restore_forest",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "EngineSnapshot",
    "save_checkpoint",
    "load_checkpoint",
    "snapshot_bytes",
    "snapshot_from_bytes",
]
