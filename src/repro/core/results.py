"""Search result records shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class SearchResult:
    """What one ``engine.search(state, budget)`` call produced.

    ``stats`` maps each root move to ``(visits, wins)`` -- aggregated
    across trees for the multi-tree engines.  ``simulations`` counts
    playouts (a leaf-parallel iteration contributes its whole grid),
    ``iterations`` counts engine loop iterations, and ``max_depth`` is
    the deepest tree path built (the paper's Figure 8 telemetry).
    """

    move: int
    stats: Mapping[int, tuple[float, float]]
    iterations: int
    simulations: int
    max_depth: int
    tree_nodes: int
    elapsed_s: float
    trees: int = 1
    extras: dict = field(default_factory=dict)

    @property
    def root_visits(self) -> float:
        return sum(v for v, _ in self.stats.values())

    @property
    def integrity(self) -> dict:
        """Integrity-defense counters (corruption detection /
        quarantine / escapes), present when the engine searched under
        fault injection; empty otherwise."""
        return self.extras.get("integrity", {})

    def visit_share(self, move: int) -> float:
        """Fraction of root visits that went to ``move``."""
        total = self.root_visits
        if total <= 0:
            return 0.0
        return self.stats.get(move, (0.0, 0.0))[0] / total
