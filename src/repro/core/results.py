"""Search result records shared by every engine.

Result *extras* carry per-engine telemetry under one ``family.metric``
naming convention (``tree.depth``, ``gpu.kernels``,
``integrity.detected``, ``pipeline.rounds``, ...).  Each engine kind
declares its extras schema in the :data:`EXTRA_KEYS` registry via
:func:`register_extra_keys`; :meth:`SearchResult.extras_schema` looks
the declaration up, and the test suite asserts every emitted key is
declared with the declared type.  The pre-rename key spellings
(``per_tree_depth``, ``kernels``, the nested ``integrity`` dict, ...)
remain readable through :meth:`SearchResult.extra` and the
:attr:`SearchResult.integrity` property.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

#: Engine name -> {extras key: value type}.  Declared, not inferred:
#: an engine emitting an undeclared key is a schema violation the test
#: suite catches.
EXTRA_KEYS: dict[str, dict[str, type]] = {}

#: The integrity-defense counters every guarded engine merges into its
#: extras (flat ``integrity.*`` keys; see repro.integrity.engine).
INTEGRITY_EXTRA_KEYS: dict[str, type] = {
    "integrity.detected": int,
    "integrity.escaped": int,
    "integrity.dropped_batches": int,
    "integrity.poisoned": int,
    "integrity.audits": int,
    "integrity.violations": int,
    "integrity.quarantined": list,
}

#: Legacy extras key -> canonical ``family.metric`` key.
LEGACY_EXTRA_KEYS: dict[str, str] = {
    "per_tree_depth": "tree.depth",
    "per_tree_nodes": "tree.nodes",
    "kernels": "gpu.kernels",
    "cpu_iterations": "cpu.iterations",
    "ranks": "mpi.ranks",
    "per_rank_simulations": "mpi.rank_simulations",
    "dropped_messages": "mpi.dropped_messages",
}

#: Legacy nested-``integrity``-dict key -> flat canonical key.
_INTEGRITY_LEGACY: dict[str, str] = {
    "corrupt_detected": "integrity.detected",
    "corrupt_escaped": "integrity.escaped",
    "dropped_batches": "integrity.dropped_batches",
    "poison_applied": "integrity.poisoned",
    "audits": "integrity.audits",
    "audit_violations": "integrity.violations",
    "quarantined_trees": "integrity.quarantined",
}


def register_extra_keys(
    engine: str, schema: Mapping[str, type]
) -> None:
    """Declare the extras keys engine kind ``engine`` may emit."""
    EXTRA_KEYS[engine] = dict(schema)


def extras_schema(engine: str) -> dict[str, type]:
    """The declared extras schema for ``engine`` (empty if none)."""
    return dict(EXTRA_KEYS.get(engine, {}))


@dataclass(frozen=True)
class SearchResult:
    """What one ``engine.search(state, budget)`` call produced.

    ``stats`` maps each root move to ``(visits, wins)`` -- aggregated
    across trees for the multi-tree engines.  ``simulations`` counts
    playouts (a leaf-parallel iteration contributes its whole grid),
    ``iterations`` counts engine loop iterations, and ``max_depth`` is
    the deepest tree path built (the paper's Figure 8 telemetry).
    """

    move: int
    stats: Mapping[int, tuple[float, float]]
    iterations: int
    simulations: int
    max_depth: int
    tree_nodes: int
    elapsed_s: float
    trees: int = 1
    extras: dict = field(default_factory=dict)
    #: Name of the engine kind that produced the result (keys the
    #: :data:`EXTRA_KEYS` schema registry; empty for hand-built
    #: results).
    engine: str = ""

    @property
    def root_visits(self) -> float:
        return sum(v for v, _ in self.stats.values())

    @property
    def integrity(self) -> dict:
        """Integrity-defense counters (corruption detection /
        quarantine / escapes), present when the engine searched under
        fault injection; empty otherwise.  Returned under the
        historical key names (``corrupt_detected``, ...) whichever
        spelling the extras carry."""
        if any(k.startswith("integrity.") for k in self.extras):
            return {
                old: self.extras[new]
                for old, new in _INTEGRITY_LEGACY.items()
                if new in self.extras
            }
        return self.extras.get("integrity", {})

    def extras_schema(self) -> dict[str, type]:
        """The declared extras schema for this result's engine kind."""
        return extras_schema(self.engine)

    def extra(self, key: str, default=None):
        """Extras lookup accepting both canonical and legacy keys;
        legacy spellings resolve with a ``DeprecationWarning``."""
        if key in self.extras:
            return self.extras[key]
        canonical = LEGACY_EXTRA_KEYS.get(key)
        if canonical is not None and canonical in self.extras:
            warnings.warn(
                f"extras key {key!r} is deprecated; use {canonical!r}",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.extras[canonical]
        return default

    def visit_share(self, move: int) -> float:
        """Fraction of root visits that went to ``move``."""
        total = self.root_visits
        if total <= 0:
            return 0.0
        return self.stats.get(move, (0.0, 0.0))[0] / total
