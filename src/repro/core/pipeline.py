"""Pipelined MCTS: select/expand/playout/backprop as software stages.

The 3PMCTS decomposition (Mirsoleimani et al., "Structured Parallel
Programming for Monte Carlo Tree Search") restructures the MCTS loop
as an *operation pipeline* instead of ``n`` independent iteration
loops: while the device simulates round ``k``'s playouts, the CPU is
already selecting and expanding round ``k+1``'s leaves from the shared
tree.  One engine round is therefore:

1. **select+expand** -- up to ``n_workers`` leaves chosen from the
   *stale* tree (round ``k-1``'s results have not landed yet -- that
   one-round staleness is the price of overlap) and marked in flight
   (``@vloss`` phantom losses or ``@wuct`` unobserved counts);
2. **backprop** -- round ``k-1``'s playout results, held since the
   previous round, retire: markers come off, real statistics go in;
3. **playout** -- round ``k``'s batch is issued to the executor; its
   results are held for the next round's backprop stage.

Virtual-clock accounting models the overlap: the CPU select stage of
round ``k`` runs concurrently with the device playout of round
``k-1``; backprop must wait for the device (it consumes the results);
the device starts round ``k``'s batch once both it and the selections
are ready.  In steady state the round time is ``max(cpu stage time,
device playout time)`` rather than their sum -- per-stage busy time
and occupancy land in the result extras (``pipeline.*``).

Checkpointing snapshots mid-pipeline state: in-flight refs are encoded
as stable tokens (arena slots / BFS indices) and the held result batch
rides the payload, so crash -> restore -> resume is bit-identical even
with a full pipeline.
"""

from __future__ import annotations

from repro.core.backend import SingleTreeForest, restore_tree
from repro.core.base import BatchExecutor, Engine, SearchGenerator, drive_search
from repro.core.policy import select_move
from repro.core.results import (
    INTEGRITY_EXTRA_KEYS,
    SearchResult,
    register_extra_keys,
)
from repro.core.tree_parallel import resolve_shared_tree_mode
from repro.games.base import GameState
from repro.integrity.engine import IntegrityState
from repro.util.seeding import derive_seed


class PipelineMcts(Engine):
    """Shared-tree MCTS with select(k+1) overlapping playout(k)."""

    name = "pipeline"

    def __init__(
        self,
        game,
        seed,
        n_workers: int,
        mode: str = "vloss",
        virtual_loss: "float | None" = None,
        injector=None,
        integrity=None,
        **kwargs,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive: {n_workers}")
        self.mode, marker = resolve_shared_tree_mode(mode, virtual_loss)
        super().__init__(game, seed, **kwargs)
        self.n_workers = n_workers
        self.virtual_loss = marker
        self.injector = injector
        self.integrity = integrity

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        executor = BatchExecutor(
            self.game.name,
            derive_seed(self.seed, "exec"),
            playout=self.playout,
        )
        self._pending_executor = executor
        return drive_search(self.search_steps(state, budget_s), executor)

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        self._check_budget(budget_s, state)
        self._live = {
            "tree": self._make_tree(
                state, self.rng.fork("tree"), parallel_mode=self.mode
            ),
            "pending": [],  # in-flight (ref, depth) from last round
            "held": [],  # their (winner, plies), held for backprop
            "cpu_t": 0.0,  # CPU stage cursor (select + backprop)
            "dev_done": 0.0,  # completion time of the in-flight batch
            "select_s": 0.0,
            "backprop_s": 0.0,
            "playout_s": 0.0,
            "rounds": 0,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
            "executor": self._take_pending_executor(),
            "integrity": (
                IntegrityState(self.integrity, self.injector, 1)
                if self.injector is not None
                else None
            ),
        }
        return self._session_steps()

    def _session_steps(self) -> SearchGenerator:
        live = self._live
        tree = live["tree"]
        budget_s = live["budget_s"]
        cap = self._iteration_cap()
        guard = live.get("integrity")
        screen = guard if live.get("executor") is not None else None
        view = SingleTreeForest(tree) if guard is not None else None

        while (
            max(live["cpu_t"], live["dev_done"]) < budget_s
            and live["iterations"] < cap
        ):
            # Stage 1 -- select+expand round k's leaves from the stale
            # tree (round k-1's results are still in flight), charging
            # CPU time that overlaps the in-flight device batch.
            requests = []
            fresh = []  # (ref, depth) awaiting playout
            instant = []  # terminal selections retire this round
            sel_t = 0.0
            for _ in range(self.n_workers):
                ref, depth = tree.select_expand()
                tree.apply_virtual_loss(ref, self.virtual_loss)
                sel_t += self.cost.selection_time(depth)
                if tree.terminal_of(ref):
                    instant.append((ref, depth))
                else:
                    sel_t += self.cost.expand_s
                    requests.append(tree.state_of(ref))
                    fresh.append((ref, depth))
            sel_done = live["cpu_t"] + sel_t
            live["select_s"] += sel_t

            # Stage 2 -- backprop: round k-1's held results (gated on
            # the device finishing their batch) plus round k's
            # terminal selections.
            bp_t = 0.0
            for (ref, depth), (winner, plies) in zip(
                live["pending"], live["held"]
            ):
                tree.revert_virtual_loss(ref, self.virtual_loss)
                tree.backprop_winner(ref, winner)
                bp_t += (
                    self.cost.backprop_time(depth)
                    + self.cost.fixed_per_iteration_s
                )
                live["iterations"] += 1
                live["simulations"] += 1
            for ref, depth in instant:
                tree.revert_virtual_loss(ref, self.virtual_loss)
                tree.backprop_winner(ref, tree.winner_of(ref))
                bp_t += (
                    self.cost.backprop_time(depth)
                    + self.cost.fixed_per_iteration_s
                )
                live["iterations"] += 1
                live["simulations"] += 1
            bp_start = (
                max(sel_done, live["dev_done"])
                if live["pending"]
                else sel_done
            )
            live["cpu_t"] = bp_start + bp_t
            live["backprop_s"] += bp_t

            # Stage 3 -- issue round k's playouts; the device starts
            # once it is free and the selections exist.  Results are
            # *held*: they backprop at round k+1's stage 2.
            if requests:
                launch = max(sel_done, live["dev_done"])
                results = yield requests
                if screen is not None:
                    results = yield from self._screen_results(
                        requests, results, screen
                    )
                play_t = max(
                    self.cost.playout_time(plies)
                    for _, plies in results
                )
                live["dev_done"] = launch + play_t
                live["playout_s"] += play_t
                live["pending"] = fresh
                live["held"] = list(results)
            else:
                live["pending"] = []
                live["held"] = []
            live["rounds"] += 1
            if guard is not None:
                guard.poison(view, 1.0)
                guard.audit(view, live["iterations"])
            # Round boundary: the new batch is in flight (its markers
            # outstanding), everything else is consistent -- snapshots
            # here encode the in-flight refs as stable tokens.
            self._after_iteration(live["iterations"])

        # Drain: retire the final in-flight batch.
        bp_t = 0.0
        for (ref, depth), (winner, plies) in zip(
            live["pending"], live["held"]
        ):
            tree.revert_virtual_loss(ref, self.virtual_loss)
            tree.backprop_winner(ref, winner)
            bp_t += (
                self.cost.backprop_time(depth)
                + self.cost.fixed_per_iteration_s
            )
            live["iterations"] += 1
            live["simulations"] += 1
        live["pending"] = []
        live["held"] = []
        live["cpu_t"] = max(live["cpu_t"], live["dev_done"]) + bp_t
        live["backprop_s"] += bp_t

        elapsed = max(live["cpu_t"], live["dev_done"])
        self.clock.advance(elapsed)
        if guard is not None:
            guard.final_sweep(view)
        stats = tree.root_stats()
        cpu_busy = live["select_s"] + live["backprop_s"]
        extras = {
            "tree.depth": [tree.depth()],
            "tree.nodes": [tree.node_count],
            "pipeline.rounds": live["rounds"],
            "pipeline.select_s": live["select_s"],
            "pipeline.backprop_s": live["backprop_s"],
            "pipeline.playout_s": live["playout_s"],
            "pipeline.cpu_occupancy": (
                cpu_busy / elapsed if elapsed > 0 else 0.0
            ),
            "pipeline.device_occupancy": (
                live["playout_s"] / elapsed if elapsed > 0 else 0.0
            ),
        }
        if guard is not None:
            extras.update(guard.extras())
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=live["iterations"],
            simulations=live["simulations"],
            max_depth=tree.max_depth,
            tree_nodes=tree.node_count,
            elapsed_s=elapsed,
            extras=extras,
            engine=self.name,
        )
        self._live = None
        return result

    def _screen_results(self, requests, results, guard):
        """Screen one round's playout answers (see RootParallelMcts)."""
        for attempt in range(guard.policy.max_result_retries + 1):
            results, ok = guard.screen_answers(list(results))
            if ok:
                return results
            if attempt < guard.policy.max_result_retries:
                results = yield requests
        guard.give_up()
        return [(0, 0)] * len(requests)

    # -- checkpointing -------------------------------------------------------

    _SCALARS = (
        "cpu_t",
        "dev_done",
        "select_s",
        "backprop_s",
        "playout_s",
        "rounds",
        "budget_s",
        "iterations",
        "simulations",
    )

    def _snapshot_payload(self) -> dict:
        live = self._live
        tree = live["tree"]
        payload = {
            "mode": self.mode,
            "tree": tree.snapshot(),
            "pending": [
                (tree.ref_token(ref), depth)
                for ref, depth in live["pending"]
            ],
            "held": [tuple(r) for r in live["held"]],
            "executor": self._executor_state(live["executor"]),
        }
        for key in self._SCALARS:
            payload[key] = live[key]
        if live.get("integrity") is not None:
            payload["integrity"] = live["integrity"].getstate()
        return payload

    def _restore_payload(self, payload: dict) -> dict:
        from repro.core.checkpoint import CheckpointError

        snap_mode = payload.get("mode", "vloss")
        if snap_mode != self.mode:
            raise CheckpointError(
                f"snapshot parallel mode mismatch: snapshot has "
                f"{snap_mode!r}, engine has {self.mode!r}"
            )
        tree = restore_tree(self.game, payload["tree"])
        guard = None
        if self.injector is not None:
            guard = IntegrityState(self.integrity, self.injector, 1)
            if "integrity" in payload:
                guard.setstate(payload["integrity"])
        live = {
            "tree": tree,
            "pending": [
                (tree.ref_from_token(token), depth)
                for token, depth in payload["pending"]
            ],
            "held": [tuple(r) for r in payload["held"]],
            "executor": self._restore_executor(payload["executor"]),
            "integrity": guard,
        }
        for key in self._SCALARS:
            live[key] = payload[key]
        return live


register_extra_keys(
    PipelineMcts.name,
    {
        "tree.depth": list,
        "tree.nodes": list,
        "pipeline.rounds": int,
        "pipeline.select_s": float,
        "pipeline.backprop_s": float,
        "pipeline.playout_s": float,
        "pipeline.cpu_occupancy": float,
        "pipeline.device_occupancy": float,
        **INTEGRITY_EXTRA_KEYS,
    },
)
