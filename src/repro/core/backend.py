"""Tree backends: one protocol, two representations.

Every engine stores its search state behind one of two interchangeable
*backends*:

* ``"node"`` -- the pointer tree (:class:`repro.core.tree.SearchTree`,
  one Python object per node).  The reference implementation: simple,
  debuggable, and the differential-testing oracle.
* ``"arena"`` -- the struct-of-arrays
  :class:`repro.core.arena.TreeArena` with vectorised selection; same
  seeds give bit-identical results, multi-tree engines get a lockstep
  ``select_expand_all`` over all trees per iteration.

Engines address tree positions through opaque *refs* (``Node`` objects
or integer slots) and never look inside them, so the same engine code
drives both representations.  :func:`make_tree` and :func:`make_forest`
are the only construction points; the backend string travels through
``EngineSpec`` (``block:16x32@arena``), the CLI ``--backend`` flag and
the serving layer.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.arena import ArenaInvariantError, TreeArena
from repro.core.tree import (
    SearchTree,
    aggregate_stat_dicts,
    majority_vote_stat_dicts,
    trimmed_vote_stat_dicts,
)
from repro.integrity.audit import audit_root_stats
from repro.games.base import Game, GameState
from repro.rng import XorShift64Star

#: Supported tree backends.
BACKENDS = ("node", "arena")


def validate_backend(backend: str) -> str:
    """Return ``backend`` if supported, raise ``ValueError`` otherwise."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown tree backend {backend!r}; available: {BACKENDS}"
        )
    return backend


class ArenaTree:
    """Single-tree adapter giving a :class:`TreeArena` the pointer
    tree's surface (select/backprop/virtual-loss/root stats)."""

    def __init__(
        self,
        game: Game,
        root_state: GameState,
        rng: XorShift64Star,
        ucb_c: float = 1.0,
        selection_rule: str = "ucb1",
        parallel_mode: str = "vloss",
    ) -> None:
        self.arena = TreeArena(
            game,
            root_state,
            [rng],
            ucb_c,
            selection_rule,
            parallel_mode=parallel_mode,
        )

    def select_expand(self) -> tuple[int, int]:
        return self.arena.select_expand(0)

    def backprop(
        self,
        ref: int,
        simulations: int,
        wins_black: float,
        wins_white: float,
        draws: float = 0.0,
    ) -> None:
        self.arena.backprop(
            ref, simulations, wins_black, wins_white, draws
        )

    def backprop_winner(
        self, ref: int, winner: int, simulations: int = 1
    ) -> None:
        self.arena.backprop_winner(ref, winner, simulations)

    def apply_virtual_loss(self, ref: int, amount: float = 1.0) -> None:
        self.arena.apply_virtual_loss(ref, amount)

    def revert_virtual_loss(self, ref: int, amount: float = 1.0) -> None:
        self.arena.revert_virtual_loss(ref, amount)

    def state_of(self, ref: int) -> GameState:
        return self.arena.state_of(ref)

    def terminal_of(self, ref: int) -> bool:
        return self.arena.terminal_of(ref)

    def winner_of(self, ref: int) -> int:
        return self.arena.winner_of(ref)

    def root_stats(self) -> dict[int, tuple[float, float]]:
        return self.arena.root_stats(0)

    @property
    def node_count(self) -> int:
        return self.arena.node_count(0)

    @property
    def max_depth(self) -> int:
        return self.arena.max_depth(0)

    def depth(self) -> int:
        return self.max_depth

    def ref_token(self, ref: int) -> int:
        """Arena refs are stable slot numbers: the token is the ref."""
        return int(ref)

    def ref_from_token(self, token: int) -> int:
        return int(token)

    def snapshot(self) -> dict:
        return {"kind": "arena_tree", "arena": self.arena.snapshot()}

    @classmethod
    def from_snapshot(cls, game: Game, snap: dict) -> "ArenaTree":
        tree = object.__new__(cls)
        tree.arena = TreeArena.from_snapshot(game, snap["arena"])
        return tree


def make_tree(
    backend: str,
    game: Game,
    root_state: GameState,
    rng: XorShift64Star,
    ucb_c: float = 1.0,
    selection_rule: str = "ucb1",
    parallel_mode: str = "vloss",
):
    """One tree on the chosen backend."""
    validate_backend(backend)
    cls = ArenaTree if backend == "arena" else SearchTree
    return cls(
        game,
        root_state,
        rng,
        ucb_c,
        selection_rule,
        parallel_mode=parallel_mode,
    )


def audit_search_tree(tree: SearchTree, legal_moves=None) -> str | None:
    """Walk one pointer tree checking the statistics invariants every
    clean tree satisfies: finite, non-negative visits; wins within
    ``[0, visits]``; parent visits at least the sum of child visits
    (visit conservation).  Returns a violation description, or None.

    In-flight selections are accounted in ``vloss`` (both modes), not
    ``visits``/``wins``, so the audit holds at any point of a
    shared-tree round, not just at quiescence.
    """
    for node in tree.iter_nodes():
        v, w = node.visits, node.wins
        if not (math.isfinite(v) and math.isfinite(w)):
            return f"node for move {node.move}: non-finite statistics"
        if v < 0:
            return f"node for move {node.move}: negative visits {v}"
        if w < -1e-9 or w > v + 1e-9:
            return (
                f"node for move {node.move}: wins {w} outside "
                f"[0, visits={v}]"
            )
        if node.children:
            child_visits = sum(c.visits for c in node.children)
            if v + 1e-9 < child_visits:
                return (
                    f"node for move {node.move}: visits {v} < sum "
                    f"of child visits {child_visits}"
                )
    return audit_root_stats(tree.root_stats(), legal_moves)


class SingleTreeForest:
    """Adapter: one shared tree behind the forest surface
    :class:`~repro.integrity.engine.IntegrityState` audits and poisons
    (tree index 0).  Lets the shared-tree engines reuse the ensemble
    defenses unchanged."""

    def __init__(self, tree) -> None:
        self.tree = tree

    def poison_root(self, i: int, bonus: float) -> bool:
        """See :meth:`NodeForest.poison_root` (single tree, index 0)."""
        if i != 0:
            return False
        if isinstance(self.tree, ArenaTree):
            return self.tree.arena.poison_root(0, bonus)
        root = self.tree.root
        if not root.children:
            return False
        victim = max(
            root.children,
            key=lambda c: (c.visits, c.wins, -c.move),
        )
        victim.wins += bonus
        return True

    def audit_tree(self, i: int, legal_moves=None) -> str | None:
        if isinstance(self.tree, ArenaTree):
            try:
                self.tree.arena.validate(trees=(0,))
            except ArenaInvariantError as exc:
                return str(exc)
            return audit_root_stats(
                self.tree.root_stats(), legal_moves
            )
        return audit_search_tree(self.tree, legal_moves)


class NodeForest:
    """Many independent pointer trees (the reference forest)."""

    def __init__(
        self,
        game: Game,
        root_state: GameState,
        rngs: Sequence[XorShift64Star],
        ucb_c: float = 1.0,
        selection_rule: str = "ucb1",
    ) -> None:
        self.trees = [
            SearchTree(game, root_state, rng, ucb_c, selection_rule)
            for rng in rngs
        ]

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    def select_expand_all(self, indices=None):
        which = range(self.n_trees) if indices is None else indices
        refs, depths = [], []
        for i in which:
            node, depth = self.trees[i].select_expand()
            refs.append(node)
            depths.append(depth)
        return refs, depths

    def select_expand(self, i: int):
        return self.trees[i].select_expand()

    def state_of(self, ref) -> GameState:
        return ref.state

    def terminal_of(self, ref) -> bool:
        return ref.terminal

    def winner_of(self, ref) -> int:
        return ref.winner

    def backprop(
        self, i, ref, simulations, wins_black, wins_white, draws=0.0
    ) -> None:
        self.trees[i].backprop(
            ref, simulations, wins_black, wins_white, draws
        )

    def backprop_winner(self, i, ref, winner, simulations=1) -> None:
        self.trees[i].backprop_winner(ref, winner, simulations)

    def backprop_block(self, refs, simulations, winners_2d) -> None:
        """Per-tree playout tallies: row ``b`` of ``winners_2d`` holds
        tree ``b``'s playout outcomes."""
        from repro.core.base import tally

        for b, tree in enumerate(self.trees):
            wins_b, wins_w, draws = tally(winners_2d[b])
            tree.backprop(refs[b], simulations, wins_b, wins_w, draws)

    def root_stats(self, i: int) -> dict[int, tuple[float, float]]:
        return self.trees[i].root_stats()

    def aggregate_stats(self, indices=None) -> dict[int, tuple[float, float]]:
        which = self.trees if indices is None else [
            self.trees[i] for i in indices
        ]
        return aggregate_stat_dicts([t.root_stats() for t in which])

    def majority_vote_stats(
        self, indices=None
    ) -> dict[int, tuple[float, float]]:
        which = self.trees if indices is None else [
            self.trees[i] for i in indices
        ]
        return majority_vote_stat_dicts([t.root_stats() for t in which])

    def trimmed_vote_stats(
        self, indices=None, trim: float = 0.2
    ) -> dict[int, tuple[float, float]]:
        which = self.trees if indices is None else [
            self.trees[i] for i in indices
        ]
        return trimmed_vote_stat_dicts(
            [t.root_stats() for t in which], trim=trim
        )

    def poison_root(self, i: int, bonus: float) -> bool:
        """Write ``bonus`` phantom wins straight into tree ``i``'s
        most-visited root child, *bypassing backprop* -- the
        ``poison=tree:K`` fault.  Backprop-mediated corruption always
        leaves a tree self-consistent; only a direct write like this
        can break the win-bound invariant the audit checks.  Returns
        False before the root has any children."""
        root = self.trees[i].root
        if not root.children:
            return False
        victim = max(
            root.children,
            key=lambda c: (c.visits, c.wins, -c.move),
        )
        victim.wins += bonus
        return True

    def audit_tree(self, i: int, legal_moves=None) -> str | None:
        """Walk tree ``i`` checking the statistics invariants every
        clean tree satisfies: finite, non-negative visits; wins within
        ``[0, visits]``; parent visits at least the sum of child visits
        (visit conservation).  Returns a violation description, or
        None."""
        return audit_search_tree(self.trees[i], legal_moves)

    def max_depth(self) -> int:
        return max(t.max_depth for t in self.trees)

    def node_count(self) -> int:
        return sum(t.node_count for t in self.trees)

    def per_tree_depth(self) -> list[int]:
        return [t.max_depth for t in self.trees]

    def per_tree_nodes(self) -> list[int]:
        return [t.node_count for t in self.trees]

    def snapshot(self) -> dict:
        return {
            "kind": "node_forest",
            "trees": [t.snapshot() for t in self.trees],
        }

    @classmethod
    def from_snapshot(cls, game: Game, snap: dict) -> "NodeForest":
        forest = object.__new__(cls)
        forest.trees = [
            SearchTree.from_snapshot(game, s) for s in snap["trees"]
        ]
        return forest


class ArenaForest:
    """Many trees in one arena with lockstep vectorised selection."""

    def __init__(
        self,
        game: Game,
        root_state: GameState,
        rngs: Sequence[XorShift64Star],
        ucb_c: float = 1.0,
        selection_rule: str = "ucb1",
    ) -> None:
        self.arena = TreeArena(
            game, root_state, list(rngs), ucb_c, selection_rule
        )

    @property
    def n_trees(self) -> int:
        return self.arena.n_trees

    def select_expand_all(self, indices=None):
        return self.arena.select_expand_all(indices)

    def select_expand(self, i: int):
        return self.arena.select_expand(i)

    def state_of(self, ref) -> GameState:
        return self.arena.state_of(ref)

    def terminal_of(self, ref) -> bool:
        return self.arena.terminal_of(ref)

    def winner_of(self, ref) -> int:
        return self.arena.winner_of(ref)

    def backprop(
        self, i, ref, simulations, wins_black, wins_white, draws=0.0
    ) -> None:
        self.arena.backprop(
            ref, simulations, wins_black, wins_white, draws
        )

    def backprop_winner(self, i, ref, winner, simulations=1) -> None:
        self.arena.backprop_winner(ref, winner, simulations)

    def backprop_block(self, refs, simulations, winners_2d) -> None:
        winners = np.asarray(winners_2d)
        wins_b = (winners == 1).sum(axis=1)
        wins_w = (winners == -1).sum(axis=1)
        draws = (winners == 0).sum(axis=1)
        self.arena.backprop_many(
            np.asarray(refs, dtype=np.int64),
            simulations,
            wins_b,
            wins_w,
            draws,
        )

    def root_stats(self, i: int) -> dict[int, tuple[float, float]]:
        return self.arena.root_stats(i)

    def aggregate_stats(self, indices=None) -> dict[int, tuple[float, float]]:
        if indices is None:
            return self.arena.aggregate_stats()
        return aggregate_stat_dicts(
            [self.arena.root_stats(i) for i in indices]
        )

    def majority_vote_stats(
        self, indices=None
    ) -> dict[int, tuple[float, float]]:
        if indices is None:
            return self.arena.majority_vote_stats()
        return majority_vote_stat_dicts(
            [self.arena.root_stats(i) for i in indices]
        )

    def trimmed_vote_stats(
        self, indices=None, trim: float = 0.2
    ) -> dict[int, tuple[float, float]]:
        which = range(self.n_trees) if indices is None else indices
        return trimmed_vote_stat_dicts(
            [self.arena.root_stats(i) for i in which], trim=trim
        )

    def poison_root(self, i: int, bonus: float) -> bool:
        """See :meth:`NodeForest.poison_root`."""
        return self.arena.poison_root(i, bonus)

    def audit_tree(self, i: int, legal_moves=None) -> str | None:
        """Audit tree ``i``: the arena's full structural validation
        (visit conservation, win bounds, span bookkeeping) restricted
        to that tree, plus the backend-neutral root-stats checks."""
        try:
            self.arena.validate(trees=(i,))
        except ArenaInvariantError as exc:
            return str(exc)
        return audit_root_stats(self.arena.root_stats(i), legal_moves)

    def max_depth(self) -> int:
        return int(self.arena.tree_max_depth.max())

    def node_count(self) -> int:
        return int(self.arena.tree_node_count.sum())

    def per_tree_depth(self) -> list[int]:
        return [int(d) for d in self.arena.tree_max_depth]

    def per_tree_nodes(self) -> list[int]:
        return [int(n) for n in self.arena.tree_node_count]

    def snapshot(self) -> dict:
        return {"kind": "arena_forest", "arena": self.arena.snapshot()}

    @classmethod
    def from_snapshot(cls, game: Game, snap: dict) -> "ArenaForest":
        forest = object.__new__(cls)
        forest.arena = TreeArena.from_snapshot(game, snap["arena"])
        return forest


def restore_tree(game: Game, snap: dict):
    """Rebuild a single tree (either backend) from its snapshot.

    Restored arenas are audited with :meth:`TreeArena.validate`
    before use -- a corrupted checkpoint fails loudly here, not as a
    wrong move later.
    """
    kind = snap.get("kind")
    if kind == "node_tree":
        return SearchTree.from_snapshot(game, snap)
    if kind == "arena_tree":
        tree = ArenaTree.from_snapshot(game, snap)
        tree.arena.validate()
        return tree
    raise ValueError(f"not a tree snapshot: kind={kind!r}")


def restore_forest(game: Game, snap: dict):
    """Rebuild a forest (either backend) from its snapshot; arena
    forests are validated on the way in."""
    kind = snap.get("kind")
    if kind == "node_forest":
        return NodeForest.from_snapshot(game, snap)
    if kind == "arena_forest":
        forest = ArenaForest.from_snapshot(game, snap)
        forest.arena.validate()
        return forest
    raise ValueError(f"not a forest snapshot: kind={kind!r}")


def make_forest(
    backend: str,
    game: Game,
    root_state: GameState,
    rngs: Sequence[XorShift64Star],
    ucb_c: float = 1.0,
    selection_rule: str = "ucb1",
):
    """``len(rngs)`` trees from one root on the chosen backend."""
    validate_backend(backend)
    cls = ArenaForest if backend == "arena" else NodeForest
    return cls(game, root_state, rngs, ucb_c, selection_rule)
