"""Engine base class and the playout-executor seam.

CPU-side engines are written as *generators* (``search_steps``): they
yield lists of leaf states whose playouts they need, and receive the
``(winner, plies)`` results back via ``send``.  That seam lets

* ``search()`` run standalone with a local executor, and
* the arena drive many engines' generators in lockstep, merging their
  playout requests into one vectorised batch (how a 1-core-per-player
  tournament stays tractable on this machine).

GPU engines implement ``search`` directly (their playouts already run
as wide kernels on the virtual device).
"""

from __future__ import annotations

import abc
from typing import Callable, Generator, Sequence

import numpy as np

from repro.cpu import XEON_X5670, CpuCostModel
from repro.games.base import Game, GameState
from repro.games.batch import run_playouts_tracked
from repro.core.backend import make_forest, make_tree, validate_backend
from repro.core.executors import tracked_runner, validate_playout
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    EngineSnapshot,
)
from repro.core.policy import MAX_VISITS, validate_selection_rule
from repro.core.results import SearchResult
from repro.games import make_batch_game
from repro.rng import BatchXorShift128Plus, XorShift64Star
from repro.util.clock import Clock
from repro.util.profile import NULL_PROFILER, Profiler
from repro.util.seeding import derive_seed

#: What engines yield: leaf states needing one playout each.
PlayoutBatch = Sequence[GameState]
#: What they receive back: per-state ``(absolute winner, plies)``.
PlayoutResults = Sequence[tuple[int, int]]

SearchGenerator = Generator[PlayoutBatch, PlayoutResults, SearchResult]


class Engine(abc.ABC):
    """Common engine state: game, clock, RNG, cost model, UCB constant."""

    #: Short identifier used in reports ("sequential", "block", ...).
    name: str = "engine"

    def __init__(
        self,
        game: Game,
        seed: int,
        ucb_c: float = 1.0,
        cost_model: CpuCostModel = XEON_X5670,
        clock: Clock | None = None,
        final_policy: str = MAX_VISITS,
        max_iterations: int | None = None,
        selection_rule: str = "ucb1",
        backend: str = "node",
        playout: str = "numpy",
        profiler: Profiler | None = None,
    ) -> None:
        if max_iterations is not None and max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive: {max_iterations}"
            )
        validate_selection_rule(selection_rule)
        validate_backend(backend)
        validate_playout(playout)
        self.game = game
        self.seed = seed
        self.ucb_c = ucb_c
        self.cost = cost_model
        self.clock = clock if clock is not None else Clock()
        self.final_policy = final_policy
        self.max_iterations = max_iterations
        self.selection_rule = selection_rule
        self.backend = backend
        #: Playout executor for vectorised batches ("numpy" or
        #: "compiled"); bit-identical by contract, so it is a pure
        #: performance knob that never changes search results.
        self.playout = playout
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.rng = XorShift64Star(derive_seed(seed, "engine", self.name))
        #: Called as ``hook(engine, iterations)`` at every clean
        #: iteration boundary (trees consistent, no virtual loss or
        #: in-flight kernel outstanding) -- the seam the serving layer
        #: uses to journal periodic checkpoints and the fault layer
        #: uses to crash a search at a planned point.  Raising from the
        #: hook aborts the search; a later ``restore`` + ``resume``
        #: continues it bit-identically.
        self.iteration_hook: "Callable[[Engine, int], None] | None" = None
        #: Live search session (engine-specific dict) between the
        #: first iteration and the final result; ``None`` when idle.
        self._live: dict | None = None

    @abc.abstractmethod
    def search(self, state: GameState, budget_s: float) -> SearchResult:
        """Run an anytime search for ``budget_s`` *virtual* seconds."""

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        """Generator protocol (CPU engines only); see module docstring."""
        raise NotImplementedError(
            f"{self.name} engine does not support cohort driving"
        )

    # -- checkpoint / resume -------------------------------------------------

    def snapshot(self) -> EngineSnapshot:
        """Freeze the live search into a picklable, restorable
        snapshot.  Only valid at iteration boundaries (where
        :attr:`iteration_hook` fires) or whenever no kernel / virtual
        loss is in flight; capturing never perturbs the search."""
        if self._live is None:
            raise CheckpointError(
                f"{self.name}: no live search session to snapshot"
            )
        payload = self._snapshot_payload()
        payload["engine_rng"] = self.rng.getstate()
        return EngineSnapshot(
            format_version=CHECKPOINT_FORMAT_VERSION,
            kind=self.name,
            backend=self.backend,
            game=self.game.name,
            seed=self.seed,
            clock_s=self.clock.now,
            iterations=int(self._live["iterations"]),
            payload=payload,
        )

    def restore(self, snap: EngineSnapshot) -> None:
        """Adopt a snapshot as this engine's live session.

        The engine must have been constructed identically to the one
        that snapshotted (same kind, backend, game and seed -- the
        caller keeps the construction recipe; the serving journal
        stores the originating request).  Resets the engine clock to
        the capture time, so only call on engines owning a private
        clock."""
        if not isinstance(snap, EngineSnapshot):
            raise CheckpointError(
                f"restore needs an EngineSnapshot, got "
                f"{type(snap).__name__}"
            )
        if snap.format_version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"snapshot format {snap.format_version} unsupported "
                f"(this build reads {CHECKPOINT_FORMAT_VERSION})"
            )
        for label, theirs, mine in (
            ("engine kind", snap.kind, self.name),
            ("backend", snap.backend, self.backend),
            ("game", snap.game, self.game.name),
            ("seed", snap.seed, self.seed),
        ):
            if theirs != mine:
                raise CheckpointError(
                    f"snapshot {label} mismatch: snapshot has "
                    f"{theirs!r}, engine has {mine!r}"
                )
        self.clock.reset(snap.clock_s)
        self.rng.setstate(snap.payload["engine_rng"])
        self._live = self._restore_payload(snap.payload)

    def resume(self) -> SearchResult:
        """Run a restored (or interrupted) session to completion."""
        session = self._require_session()
        if type(self).search_steps is not Engine.search_steps:
            executor = session.get("executor")
            if executor is None:
                raise CheckpointError(
                    f"{self.name}: session was driven externally; "
                    "drive resume_steps() with your executor instead"
                )
            return drive_search(self.resume_steps(), executor)
        return self._session_run()

    def resume_steps(self) -> SearchGenerator:
        """Generator-protocol counterpart of :meth:`resume` (CPU
        engines only): continue the restored session, yielding playout
        batches exactly like ``search_steps``."""
        self._require_session()
        return self._session_steps()

    def _require_session(self) -> dict:
        if self._live is None:
            raise CheckpointError(
                f"{self.name}: no session to resume (call restore() "
                "or interrupt a search first)"
            )
        return self._live

    def _session_steps(self) -> SearchGenerator:
        """Engine-specific continuation generator over ``self._live``."""
        raise NotImplementedError(
            f"{self.name} engine has no generator session"
        )

    def _session_run(self) -> SearchResult:
        """Engine-specific direct continuation over ``self._live``."""
        raise NotImplementedError(
            f"{self.name} engine has no direct session"
        )

    def _snapshot_payload(self) -> dict:
        raise NotImplementedError(
            f"{self.name} engine does not support checkpointing"
        )

    def _restore_payload(self, payload: dict) -> dict:
        raise NotImplementedError(
            f"{self.name} engine does not support checkpointing"
        )

    def _after_iteration(self, iterations: int) -> None:
        """Fire the iteration hook at a clean boundary."""
        hook = self.iteration_hook
        if hook is not None:
            hook(self, iterations)

    def _take_pending_executor(self):
        """The executor ``search()`` parked for the session (None when
        the generator is driven externally, e.g. by the service)."""
        return self.__dict__.pop("_pending_executor", None)

    def _executor_state(self, executor) -> "dict | None":
        return executor.getstate() if executor is not None else None

    def _restore_executor(self, state: "dict | None"):
        if state is None:
            return None
        if state["kind"] == "scalar":
            return ScalarExecutor(
                self.game, XorShift64Star.from_state(state["rng"])
            )
        if state["kind"] == "batch":
            executor = BatchExecutor(
                self.game.name, state["seed"], playout=self.playout
            )
            executor.setstate(state)
            return executor
        raise CheckpointError(
            f"unknown executor state kind: {state.get('kind')!r}"
        )

    def _make_tree(
        self,
        state: GameState,
        rng: XorShift64Star,
        parallel_mode: str = "vloss",
    ):
        """One tree on the engine's configured backend."""
        return make_tree(
            self.backend,
            self.game,
            state,
            rng,
            self.ucb_c,
            self.selection_rule,
            parallel_mode=parallel_mode,
        )

    def _make_forest(self, state: GameState, rngs):
        """``len(rngs)`` trees on the engine's configured backend."""
        return make_forest(
            self.backend,
            self.game,
            state,
            rngs,
            self.ucb_c,
            self.selection_rule,
        )

    def _check_budget(self, budget_s: float, state: GameState) -> None:
        if budget_s <= 0:
            raise ValueError(f"budget must be positive: {budget_s}")
        if self.game.is_terminal(state):
            raise ValueError("cannot search a terminal position")

    def _iteration_cap(self) -> float:
        return self.max_iterations if self.max_iterations else float("inf")


class ScalarExecutor:
    """Playouts via the game's (fast) scalar path -- the real sequential
    CPU behaviour, one playout at a time.  Checkpointable: the only
    state is the playout RNG."""

    def __init__(self, game: Game, rng: XorShift64Star) -> None:
        self.game = game
        self.rng = rng

    def __call__(self, states: PlayoutBatch) -> PlayoutResults:
        return [self.game.playout(s, self.rng) for s in states]

    def getstate(self) -> dict:
        return {"kind": "scalar", "rng": self.rng.getstate()}

    def setstate(self, state: dict) -> None:
        self.rng.setstate(state["rng"])


class BatchExecutor:
    """Playouts via the vectorised engine, one lane per requested state.

    Used by multi-tree engines and the arena's cohort driver; results
    are statistically identical to the scalar path (both play uniform
    random moves), just computed in lockstep.  Checkpointable: the
    per-call lane RNGs derive from ``(seed, call_count)``, so the call
    counter plus the scalar-fallback RNG state resume the stream.
    """

    #: Below this many lanes the NumPy lockstep overhead loses to the
    #: inlined scalar playout (measured crossover ~10 lanes on Reversi).
    SCALAR_CUTOFF = 10

    def __init__(
        self, game_name: str, seed: int, playout: str = "numpy"
    ) -> None:
        from repro.games import make_game

        self.game_name = game_name
        self.seed = seed
        self.playout = validate_playout(playout)
        self.bg = make_batch_game(game_name)
        self.game = make_game(game_name)
        self.ladder_seed = derive_seed(seed, "batch_executor")
        self.scalar_rng = XorShift64Star(
            derive_seed(seed, "scalar_fallback")
        )
        self.call_count = 0

    def __call__(self, states: PlayoutBatch) -> PlayoutResults:
        if not states:
            return []
        if len(states) < self.SCALAR_CUTOFF:
            return [self.game.playout(s, self.scalar_rng) for s in states]
        self.call_count += 1
        rng = BatchXorShift128Plus(
            len(states), derive_seed(self.ladder_seed, self.call_count)
        )
        batch = self.bg.make_batch(list(states), 1)
        tracked = tracked_runner(self.playout)(self.bg, batch, rng)
        return list(
            zip(
                (int(w) for w in tracked.winners),
                (int(p) for p in tracked.finish_steps),
            )
        )

    def getstate(self) -> dict:
        return {
            "kind": "batch",
            "seed": self.seed,
            "call_count": self.call_count,
            "scalar_rng": self.scalar_rng.getstate(),
        }

    def setstate(self, state: dict) -> None:
        self.call_count = state["call_count"]
        self.scalar_rng.setstate(state["scalar_rng"])


def scalar_executor(
    game: Game, rng: XorShift64Star
) -> Callable[[PlayoutBatch], PlayoutResults]:
    """Factory form of :class:`ScalarExecutor` (kept for callers that
    predate the checkpointable executor classes)."""
    return ScalarExecutor(game, rng)


def batch_executor(
    game_name: str, seed: int, playout: str = "numpy"
) -> Callable[[PlayoutBatch], PlayoutResults]:
    """Factory form of :class:`BatchExecutor`."""
    return BatchExecutor(game_name, seed, playout=playout)


def drive_search(
    gen: SearchGenerator,
    executor: Callable[[PlayoutBatch], PlayoutResults],
) -> SearchResult:
    """Run a search generator to completion with ``executor`` supplying
    playout results."""
    try:
        requests = next(gen)
        while True:
            requests = gen.send(executor(requests))
    except StopIteration as stop:
        result = stop.value
        if result is None:  # pragma: no cover - engine bug guard
            raise RuntimeError("search generator returned no result")
        return result


def tally(winners: np.ndarray) -> tuple[int, int, int]:
    """Count (black wins, white wins, draws) in an outcome array."""
    black = int((winners == 1).sum())
    white = int((winners == -1).sum())
    draws = int((winners == 0).sum())
    return black, white, draws
