"""Engine base class and the playout-executor seam.

CPU-side engines are written as *generators* (``search_steps``): they
yield lists of leaf states whose playouts they need, and receive the
``(winner, plies)`` results back via ``send``.  That seam lets

* ``search()`` run standalone with a local executor, and
* the arena drive many engines' generators in lockstep, merging their
  playout requests into one vectorised batch (how a 1-core-per-player
  tournament stays tractable on this machine).

GPU engines implement ``search`` directly (their playouts already run
as wide kernels on the virtual device).
"""

from __future__ import annotations

import abc
from typing import Callable, Generator, Sequence

import numpy as np

from repro.cpu import XEON_X5670, CpuCostModel
from repro.games.base import Game, GameState
from repro.games.batch import run_playouts_tracked
from repro.core.backend import make_forest, make_tree, validate_backend
from repro.core.policy import MAX_VISITS, validate_selection_rule
from repro.core.results import SearchResult
from repro.games import make_batch_game
from repro.rng import BatchXorShift128Plus, XorShift64Star
from repro.util.clock import Clock
from repro.util.profile import NULL_PROFILER, Profiler
from repro.util.seeding import derive_seed

#: What engines yield: leaf states needing one playout each.
PlayoutBatch = Sequence[GameState]
#: What they receive back: per-state ``(absolute winner, plies)``.
PlayoutResults = Sequence[tuple[int, int]]

SearchGenerator = Generator[PlayoutBatch, PlayoutResults, SearchResult]


class Engine(abc.ABC):
    """Common engine state: game, clock, RNG, cost model, UCB constant."""

    #: Short identifier used in reports ("sequential", "block", ...).
    name: str = "engine"

    def __init__(
        self,
        game: Game,
        seed: int,
        ucb_c: float = 1.0,
        cost_model: CpuCostModel = XEON_X5670,
        clock: Clock | None = None,
        final_policy: str = MAX_VISITS,
        max_iterations: int | None = None,
        selection_rule: str = "ucb1",
        backend: str = "node",
        profiler: Profiler | None = None,
    ) -> None:
        if max_iterations is not None and max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive: {max_iterations}"
            )
        validate_selection_rule(selection_rule)
        validate_backend(backend)
        self.game = game
        self.seed = seed
        self.ucb_c = ucb_c
        self.cost = cost_model
        self.clock = clock if clock is not None else Clock()
        self.final_policy = final_policy
        self.max_iterations = max_iterations
        self.selection_rule = selection_rule
        self.backend = backend
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.rng = XorShift64Star(derive_seed(seed, "engine", self.name))

    @abc.abstractmethod
    def search(self, state: GameState, budget_s: float) -> SearchResult:
        """Run an anytime search for ``budget_s`` *virtual* seconds."""

    def search_steps(
        self, state: GameState, budget_s: float
    ) -> SearchGenerator:
        """Generator protocol (CPU engines only); see module docstring."""
        raise NotImplementedError(
            f"{self.name} engine does not support cohort driving"
        )

    def _make_tree(self, state: GameState, rng: XorShift64Star):
        """One tree on the engine's configured backend."""
        return make_tree(
            self.backend,
            self.game,
            state,
            rng,
            self.ucb_c,
            self.selection_rule,
        )

    def _make_forest(self, state: GameState, rngs):
        """``len(rngs)`` trees on the engine's configured backend."""
        return make_forest(
            self.backend,
            self.game,
            state,
            rngs,
            self.ucb_c,
            self.selection_rule,
        )

    def _check_budget(self, budget_s: float, state: GameState) -> None:
        if budget_s <= 0:
            raise ValueError(f"budget must be positive: {budget_s}")
        if self.game.is_terminal(state):
            raise ValueError("cannot search a terminal position")

    def _iteration_cap(self) -> float:
        return self.max_iterations if self.max_iterations else float("inf")


def scalar_executor(
    game: Game, rng: XorShift64Star
) -> Callable[[PlayoutBatch], PlayoutResults]:
    """Playouts via the game's (fast) scalar path -- the real sequential
    CPU behaviour, one playout at a time."""

    def run(states: PlayoutBatch) -> PlayoutResults:
        return [game.playout(s, rng) for s in states]

    return run


def batch_executor(
    game_name: str, seed: int
) -> Callable[[PlayoutBatch], PlayoutResults]:
    """Playouts via the vectorised engine, one lane per requested state.

    Used by multi-tree engines and the arena's cohort driver; results
    are statistically identical to the scalar path (both play uniform
    random moves), just computed in lockstep.
    """
    from repro.games import make_game

    bg = make_batch_game(game_name)
    game = make_game(game_name)
    ladder_seed = derive_seed(seed, "batch_executor")
    scalar_rng = XorShift64Star(derive_seed(seed, "scalar_fallback"))
    call_count = 0
    # Below this many lanes the NumPy lockstep overhead loses to the
    # inlined scalar playout (measured crossover ~10 lanes on Reversi).
    scalar_cutoff = 10

    def run(states: PlayoutBatch) -> PlayoutResults:
        nonlocal call_count
        if not states:
            return []
        if len(states) < scalar_cutoff:
            return [game.playout(s, scalar_rng) for s in states]
        call_count += 1
        rng = BatchXorShift128Plus(
            len(states), derive_seed(ladder_seed, call_count)
        )
        batch = bg.make_batch(list(states), 1)
        tracked = run_playouts_tracked(bg, batch, rng)
        return list(
            zip(
                (int(w) for w in tracked.winners),
                (int(p) for p in tracked.finish_steps),
            )
        )

    return run


def drive_search(
    gen: SearchGenerator,
    executor: Callable[[PlayoutBatch], PlayoutResults],
) -> SearchResult:
    """Run a search generator to completion with ``executor`` supplying
    playout results."""
    try:
        requests = next(gen)
        while True:
            requests = gen.send(executor(requests))
    except StopIteration as stop:
        result = stop.value
        if result is None:  # pragma: no cover - engine bug guard
            raise RuntimeError("search generator returned no result")
        return result


def tally(winners: np.ndarray) -> tuple[int, int, int]:
    """Count (black wins, white wins, draws) in an outcome array."""
    black = int((winners == 1).sum())
    white = int((winners == -1).sum())
    draws = int((winners == 0).sum())
    return black, white, draws
