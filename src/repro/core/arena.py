"""Array-backed MCTS tree arena with vectorised selection.

The pointer tree in :mod:`repro.core.tree` stores one Python object per
node, so walking ``B`` block-parallel trees costs ``B`` pointer-chasing
UCB descents per iteration -- the *sequential part* that bends the
paper's Figure 5 curves.  :class:`TreeArena` stores one or many trees
in a single preallocated, growable struct-of-arrays: numpy arrays for
parent, move, mover, visits, wins, virtual loss, child spans,
untried-move bitmasks and terminal flags, plus a Python list of states
(immutable game positions are cold data -- they are touched once per
expansion, never during selection).

Layout invariants
-----------------
* A node's children occupy one contiguous *span* of slots.  The span
  is reserved at the node's **first** expansion, sized ``n_legal`` (the
  node's branching factor), and filled left to right as further
  children are expanded; ``child_count`` tracks the filled prefix.
* Trees never share nodes: each tree's slots form a disjoint set, so
  batched backpropagation can use plain fancy indexing.
* ``untried_order[i]`` holds node ``i``'s not-yet-expanded moves in
  the same shuffled order the pointer backend would use, popped from
  the end; ``untried_mask`` mirrors it as a bitmask.

Bit-for-bit equivalence with the pointer backend
------------------------------------------------
The arena replicates the pointer tree's arithmetic exactly: the same
RNG consumption (one Fisher-Yates shuffle per created node, on the
move list ``Game.legal_mask`` extracts in ``legal_moves`` order), the
same UCB expression evaluation order, first-max argmax tie-breaking,
and ``math.log`` (not ``np.log``, which differs in the last ulp on
some inputs) for the per-node visit logarithm.  Same seeds therefore
produce identical root statistics and chosen moves on both backends --
the differential test suite enforces this for every engine kind.

The payoff is :meth:`select_expand_all`: one lockstep descent of all
``B`` trees per iteration, scoring every active tree's child span in a
handful of vectorised numpy passes instead of ``B`` independent Python
walks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.policy import (
    validate_parallel_mode,
    validate_selection_rule,
)
from repro.core.tree import aggregate_stat_dicts, majority_vote_stat_dicts
from repro.games.base import Game, GameState
from repro.rng import XorShift64Star
from repro.util.bitops import bits_of

_U64_MASK = (1 << 64) - 1


class ArenaInvariantError(RuntimeError):
    """Raised by :meth:`TreeArena.validate` on a corrupted arena."""


class TreeArena:
    """``n_trees`` MCTS trees in one struct-of-arrays node store."""

    def __init__(
        self,
        game: Game,
        root_state: GameState,
        rngs: "list[XorShift64Star]",
        ucb_c: float = 1.0,
        selection_rule: str = "ucb1",
        capacity: int | None = None,
        parallel_mode: str = "vloss",
    ) -> None:
        if ucb_c < 0:
            raise ValueError(f"ucb_c must be non-negative: {ucb_c}")
        validate_selection_rule(selection_rule)
        validate_parallel_mode(parallel_mode)
        if not rngs:
            raise ValueError("arena needs at least one tree RNG")
        self.game = game
        self.rngs = list(rngs)
        self.n_trees = len(self.rngs)
        self.ucb_c = ucb_c
        self.selection_rule = selection_rule
        self.parallel_mode = parallel_mode
        #: uint64 words per untried-move bitmask row.
        self.mask_words = (game.num_moves + 63) // 64

        cap = capacity if capacity else max(256, 8 * self.n_trees)
        self._cap = 0
        self._allocated = 0
        #: ``_log_table[n] == math.log(n)`` for integer visit totals
        #: (the common case -- whole playout counts); grown on demand.
        self._log_table = np.zeros(2, dtype=np.float64)
        #: Any virtual loss outstanding?  While False, ``n_i`` and the
        #: totals reduce to plain visit reads (fewer vector ops).
        self._vloss_active = False
        self._make_arrays(cap)

        self.roots = np.empty(self.n_trees, dtype=np.int64)
        self.tree_node_count = np.ones(self.n_trees, dtype=np.int64)
        self.tree_max_depth = np.zeros(self.n_trees, dtype=np.int64)
        for t in range(self.n_trees):
            root = self._alloc_span(1)
            self._init_node(root, -1, -1, root_state, self.rngs[t])
            if self.terminal[root]:
                raise ValueError("cannot search a terminal position")
            self.roots[t] = root

    # -- storage ------------------------------------------------------------

    def _make_arrays(self, cap: int) -> None:
        self.parent = np.full(cap, -1, dtype=np.int64)
        self.move = np.full(cap, -1, dtype=np.int32)
        self.mover = np.zeros(cap, dtype=np.int8)
        self.to_move = np.zeros(cap, dtype=np.int8)
        self.visits = np.zeros(cap, dtype=np.float64)
        self.wins = np.zeros(cap, dtype=np.float64)
        self.vloss = np.zeros(cap, dtype=np.float64)
        self.terminal = np.zeros(cap, dtype=bool)
        self.winner = np.zeros(cap, dtype=np.int8)
        self.child_start = np.full(cap, -1, dtype=np.int64)
        self.child_count = np.zeros(cap, dtype=np.int32)
        self.n_legal = np.zeros(cap, dtype=np.int32)
        self.untried_count = np.zeros(cap, dtype=np.int32)
        self.untried_mask = np.zeros(
            (cap, self.mask_words), dtype=np.uint64
        )
        self.states: list = [None] * cap
        self.untried_order: list = [None] * cap
        self._cap = cap

    def _grow(self, min_cap: int) -> None:
        new_cap = max(2 * self._cap, min_cap)
        pad = new_cap - self._cap
        self.parent = np.concatenate(
            [self.parent, np.full(pad, -1, dtype=np.int64)]
        )
        self.move = np.concatenate(
            [self.move, np.full(pad, -1, dtype=np.int32)]
        )
        for name in ("mover", "to_move", "winner"):
            arr = getattr(self, name)
            setattr(
                self, name, np.concatenate([arr, np.zeros(pad, arr.dtype)])
            )
        for name in ("visits", "wins", "vloss"):
            arr = getattr(self, name)
            setattr(
                self, name, np.concatenate([arr, np.zeros(pad, arr.dtype)])
            )
        self.terminal = np.concatenate(
            [self.terminal, np.zeros(pad, dtype=bool)]
        )
        self.child_start = np.concatenate(
            [self.child_start, np.full(pad, -1, dtype=np.int64)]
        )
        for name in ("child_count", "n_legal", "untried_count"):
            arr = getattr(self, name)
            setattr(
                self, name, np.concatenate([arr, np.zeros(pad, arr.dtype)])
            )
        self.untried_mask = np.concatenate(
            [
                self.untried_mask,
                np.zeros((pad, self.mask_words), dtype=np.uint64),
            ]
        )
        self.states.extend([None] * pad)
        self.untried_order.extend([None] * pad)
        self._cap = new_cap

    def _alloc_span(self, n: int) -> int:
        """Reserve ``n`` contiguous slots; returns the span start."""
        start = self._allocated
        if start + n > self._cap:
            self._grow(start + n)
        self._allocated = start + n
        return start

    @property
    def capacity(self) -> int:
        return self._cap

    @property
    def allocated(self) -> int:
        """Slots handed out, including reserved-but-unfilled ones."""
        return self._allocated

    def __len__(self) -> int:
        """Initialised (live) nodes across all trees."""
        return int(self.tree_node_count.sum())

    # -- node construction --------------------------------------------------

    def _init_node(
        self,
        idx: int,
        parent: int,
        move: int,
        state: GameState,
        rng: XorShift64Star,
    ) -> None:
        # Slots arrive virgin (fresh allocations and compact() both
        # leave defaults in place), so default-valued fields -- visits,
        # wins, vloss, child_start, child_count, terminal, winner --
        # are only written when they differ from the default.
        self.states[idx] = state
        self.parent[idx] = parent
        self.move[idx] = move
        tm = self.game.to_move(state)
        self.to_move[idx] = tm
        self.mover[idx] = self.to_move[parent] if parent >= 0 else -tm
        mask = self.game.legal_mask(state)
        if mask:
            legal = list(bits_of(mask))
        else:
            legal = []
            self.terminal[idx] = True
            self.winner[idx] = self.game.winner(state)
        rng.shuffle(legal)
        self.untried_order[idx] = legal
        n = len(legal)
        self.n_legal[idx] = n
        self.untried_count[idx] = n
        m = mask
        for w in range(self.mask_words):
            self.untried_mask[idx, w] = m & _U64_MASK
            m >>= 64

    def _expand(self, node: int, t: int, child_depth: int) -> int:
        """Pop one untried move of ``node`` and create its child."""
        if self.child_start[node] < 0:
            self.child_start[node] = self._alloc_span(
                int(self.n_legal[node])
            )
        mv = self.untried_order[node].pop()
        self.untried_count[node] -= 1
        word, bit = divmod(mv, 64)
        self.untried_mask[node, word] = np.uint64(
            int(self.untried_mask[node, word]) & ~(1 << bit)
        )
        child = int(self.child_start[node]) + int(self.child_count[node])
        self.child_count[node] += 1
        state = self.game.apply(self.states[node], mv)
        self._init_node(child, node, mv, state, self.rngs[t])
        self.tree_node_count[t] += 1
        if child_depth > self.tree_max_depth[t]:
            self.tree_max_depth[t] = child_depth
        return child

    def _expand_many(
        self,
        nodes: np.ndarray,
        ts: np.ndarray,
        child_depths: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`_expand` over several *distinct* nodes.

        The per-node work that must stay scalar (game calls, the
        tree's own RNG shuffle, span allocation) runs in row order --
        the same order the per-tree loop would use, so RNG consumption
        is identical -- but every array field is then written with one
        fancy-indexed store instead of ``len(nodes)`` scalar stores.
        """
        k = len(nodes)
        children = np.empty(k, dtype=np.int64)
        moves = np.empty(k, dtype=np.int32)
        to_moves = np.empty(k, dtype=np.int8)
        n_legals = np.empty(k, dtype=np.int32)
        terminals = np.zeros(k, dtype=bool)
        winners = np.zeros(k, dtype=np.int8)
        mask_rows = np.zeros((k, self.mask_words), dtype=np.uint64)
        game = self.game
        states = self.states
        orders = self.untried_order
        counts = self.child_count[nodes]
        starts = self.child_start[nodes]
        for i in range(k):
            node = int(nodes[i])
            start = int(starts[i])
            if start < 0:
                start = self._alloc_span(int(self.n_legal[node]))
                self.child_start[node] = start
            mv = orders[node].pop()
            child = start + int(counts[i])
            state = game.apply(states[node], mv)
            mask = game.legal_mask(state)
            if mask:
                legal = list(bits_of(mask))
            else:
                legal = []
                terminals[i] = True
                winners[i] = game.winner(state)
            self.rngs[int(ts[i])].shuffle(legal)
            states[child] = state
            orders[child] = legal
            children[i] = child
            moves[i] = mv
            to_moves[i] = game.to_move(state)
            n_legals[i] = len(legal)
            m = mask
            for w in range(self.mask_words):
                mask_rows[i, w] = m & _U64_MASK
                m >>= 64
        # Parents: pop the tried move's mask bit, bump the fill count.
        mv64 = moves.astype(np.uint64)
        words = (mv64 >> np.uint64(6)).astype(np.int64)
        bits = mv64 & np.uint64(63)
        self.untried_mask[nodes, words] &= ~(np.uint64(1) << bits)
        self.untried_count[nodes] -= 1
        self.child_count[nodes] += 1
        # Children: all slots are virgin, so default-valued fields
        # (visits, wins, vloss, child_start, child_count) stay as-is.
        self.parent[children] = nodes
        self.move[children] = moves
        self.to_move[children] = to_moves
        self.mover[children] = self.to_move[nodes]
        self.n_legal[children] = n_legals
        self.untried_count[children] = n_legals
        if terminals.any():
            self.terminal[children] = terminals
            self.winner[children] = winners
        self.untried_mask[children] = mask_rows
        self.tree_node_count[ts] += 1
        self.tree_max_depth[ts] = np.maximum(
            self.tree_max_depth[ts], child_depths
        )
        return children

    # -- selection + expansion ---------------------------------------------

    def select_expand(self, t: int) -> tuple[int, int]:
        """Single-tree descent; mirrors ``SearchTree.select_expand``."""
        node = int(self.roots[t])
        depth = 0
        while True:
            if self.terminal[node]:
                return node, depth
            if self.untried_count[node] > 0:
                return self._expand(node, t, depth + 1), depth + 1
            node = self._best_child(node)
            depth += 1

    def select_expand_all(
        self, indices: "np.ndarray | list[int] | None" = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lockstep descent of several trees at once.

        Returns ``(leaves, depths)`` aligned with ``indices`` (all
        trees when ``None``).  Per level, every still-descending tree's
        child span is scored in one vectorised pass; expansions (one
        per tree per call, exactly like the scalar walk) drop back to
        per-tree code because they touch the game and the tree's own
        RNG.
        """
        idx = (
            np.arange(self.n_trees, dtype=np.int64)
            if indices is None
            else np.asarray(indices, dtype=np.int64)
        )
        cur = self.roots[idx].copy()
        depths = np.zeros(len(idx), dtype=np.int64)
        leaves = np.full(len(idx), -1, dtype=np.int64)
        active = np.ones(len(idx), dtype=bool)
        while True:
            rows = np.nonzero(active)[0]
            if not len(rows):
                break
            nodes = cur[rows]
            # Trees parked on a terminal node stop here.
            term = self.terminal[nodes]
            if term.any():
                stop = rows[term]
                leaves[stop] = cur[stop]
                active[stop] = False
                rows = rows[~term]
                nodes = cur[rows]
                if not len(rows):
                    continue
            # Trees at a node with untried moves expand one child.
            expandable = self.untried_count[nodes] > 0
            if expandable.any():
                erows = rows[expandable]
                leaves[erows] = self._expand_many(
                    cur[erows], idx[erows], depths[erows] + 1
                )
                depths[erows] += 1
                active[erows] = False
                rows = rows[~expandable]
                nodes = cur[rows]
                if not len(rows):
                    continue
            # Everyone else descends one level, scored in one batch.
            cur[rows] = self._best_children(nodes)
            depths[rows] += 1
        return leaves, depths

    def _log_totals(self, totals: np.ndarray) -> np.ndarray:
        # math.log, not np.log: the vectorised log differs from libm's
        # in the last ulp for some inputs, which would break the
        # bit-for-bit backend equivalence the differential tests pin.
        # Integral totals (every whole-playout engine) go through a
        # lazily grown lookup table of math.log values instead of a
        # Python loop; math.log(float(n)) == table[n] exactly.
        as_int = totals.astype(np.int64)
        if np.array_equal(as_int, totals):
            hi = int(as_int.max(initial=0))
            table = self._log_table
            if hi >= len(table):
                old = len(table)
                table = np.resize(table, max(hi + 1, 2 * old))
                for n in range(old, len(table)):
                    table[n] = math.log(n)
                self._log_table = table
            out = table[as_int]
            out[totals <= 1.0] = 0.0
            return out
        log = math.log
        return np.fromiter(
            (log(tv) if tv > 1.0 else 0.0 for tv in totals.tolist()),
            dtype=np.float64,
            count=len(totals),
        )

    def _best_child(self, node: int) -> int:
        """Selection-rule argmax over ``node``'s child span."""
        start = int(self.child_start[node])
        span = slice(start, start + int(self.child_count[node]))
        n_i = self.visits[span] + self.vloss[span]
        unvisited = n_i <= 0.0
        if unvisited.any():
            return start + int(np.argmax(unvisited))
        total = self.visits[node] + self.vloss[node]
        log_total = math.log(total) if total > 1.0 else 0.0
        if self.parallel_mode == "wuct":
            # WU-UCT: mean over completed visits only; the in-flight
            # counts widen just the exploration denominator (n_i).
            completed = self.visits[span]
            safe_c = np.where(completed > 0.0, completed, 1.0)
            p = np.where(
                completed > 0.0, self.wins[span] / safe_c, 0.5
            )
        else:
            p = self.wins[span] / n_i
        c = self.ucb_c
        if self.selection_rule == "ucb1_tuned":
            variance = p * (1.0 - p) + np.sqrt(2.0 * log_total / n_i)
            width = np.minimum(0.25, variance)
            score = p + c * np.sqrt(log_total / n_i * width)
        else:
            score = p + c * np.sqrt(log_total / n_i)
        return start + int(np.argmax(score))

    def _best_children(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorised ``_best_child`` over many nodes' child spans."""
        starts = self.child_start[nodes]
        counts = self.child_count[nodes].astype(np.int64)
        width = int(counts.max())
        cols = np.arange(width, dtype=np.int64)
        uniform = width == int(counts.min())
        if uniform:
            # Every span has the same width: no padding machinery.
            valid = None
            cids = starts[:, None] + cols[None, :]
        else:
            valid = cols[None, :] < counts[:, None]
            cids = np.where(valid, starts[:, None] + cols[None, :], 0)
        if self._vloss_active:
            n_i = self.visits[cids] + self.vloss[cids]
            totals = self.visits[nodes] + self.vloss[nodes]
        else:
            n_i = self.visits[cids]
            totals = self.visits[nodes]
        log_tot = self._log_totals(totals)[:, None]
        safe = np.where(n_i > 0.0, n_i, 1.0)
        if self.parallel_mode == "wuct":
            completed = self.visits[cids]
            safe_c = np.where(completed > 0.0, completed, 1.0)
            p = np.where(
                completed > 0.0, self.wins[cids] / safe_c, 0.5
            )
        else:
            p = self.wins[cids] / safe
        c = self.ucb_c
        if self.selection_rule == "ucb1_tuned":
            variance = p * (1.0 - p) + np.sqrt(2.0 * log_tot / safe)
            width_term = np.minimum(0.25, variance)
            score = p + c * np.sqrt(log_tot / safe * width_term)
        else:
            score = p + c * np.sqrt(log_tot / safe)
        # Unvisited children outrank everything (the scalar walk
        # returns the first one immediately); padding never wins.
        score = np.where(n_i <= 0.0, np.inf, score)
        if not uniform:
            score = np.where(valid, score, -np.inf)
        return starts + np.argmax(score, axis=1)

    # -- statistics updates -------------------------------------------------

    def backprop(
        self,
        leaf: int,
        simulations: int,
        wins_black: float,
        wins_white: float,
        draws: float = 0.0,
    ) -> None:
        """Scalar path update; mirrors ``SearchTree.backprop``."""
        node = int(leaf)
        while node >= 0:
            self.visits[node] += simulations
            side = wins_black if self.mover[node] == 1 else wins_white
            self.wins[node] += side + 0.5 * draws
            node = int(self.parent[node])

    def backprop_winner(
        self, leaf: int, winner: int, simulations: int = 1
    ) -> None:
        self.backprop(
            leaf,
            simulations,
            simulations if winner == 1 else 0,
            simulations if winner == -1 else 0,
            simulations if winner == 0 else 0,
        )

    def backprop_many(
        self,
        leaves: np.ndarray,
        simulations: float,
        wins_black: np.ndarray,
        wins_white: np.ndarray,
        draws: np.ndarray,
    ) -> None:
        """Vectorised backprop of one leaf per tree.

        Requires at most one leaf per tree (paths in distinct trees
        are disjoint, so fancy-indexed ``+=`` never collides).
        """
        cur = np.asarray(leaves, dtype=np.int64).copy()
        wb = np.asarray(wins_black, dtype=np.float64)
        ww = np.asarray(wins_white, dtype=np.float64)
        dr = np.asarray(draws, dtype=np.float64)
        act = cur >= 0
        while act.any():
            nodes = cur[act]
            self.visits[nodes] += simulations
            side = np.where(self.mover[nodes] == 1, wb[act], ww[act])
            self.wins[nodes] += side + 0.5 * dr[act]
            cur[act] = self.parent[nodes]
            act = cur >= 0

    def apply_virtual_loss(self, leaf: int, amount: float = 1.0) -> None:
        self._vloss_active = True
        node = int(leaf)
        while node >= 0:
            self.vloss[node] += amount
            node = int(self.parent[node])

    def revert_virtual_loss(self, leaf: int, amount: float = 1.0) -> None:
        self.apply_virtual_loss(leaf, -amount)

    # -- ref accessors ------------------------------------------------------

    def state_of(self, ref: int) -> GameState:
        return self.states[int(ref)]

    def terminal_of(self, ref: int) -> bool:
        return bool(self.terminal[int(ref)])

    def winner_of(self, ref: int) -> int:
        return int(self.winner[int(ref)])

    # -- reporting ----------------------------------------------------------

    def root_stats(self, t: int = 0) -> dict[int, tuple[float, float]]:
        root = int(self.roots[t])
        start = int(self.child_start[root])
        if start < 0:
            return {}
        count = int(self.child_count[root])
        return {
            int(self.move[c]): (float(self.visits[c]), float(self.wins[c]))
            for c in range(start, start + count)
        }

    def aggregate_stats(self) -> dict[int, tuple[float, float]]:
        return aggregate_stat_dicts(
            [self.root_stats(t) for t in range(self.n_trees)]
        )

    def majority_vote_stats(self) -> dict[int, tuple[float, float]]:
        return majority_vote_stat_dicts(
            [self.root_stats(t) for t in range(self.n_trees)]
        )

    def poison_root(self, t: int, bonus: float) -> bool:
        """Write ``bonus`` phantom wins straight into tree ``t``'s
        most-visited root child, *bypassing backprop* -- the
        ``poison=tree:K`` corruption fault.  Only a direct write like
        this can break the win-bound invariant :meth:`validate`
        checks; anything routed through backprop stays
        self-consistent.  Returns False before the root has
        children."""
        root = int(self.roots[t])
        start = int(self.child_start[root])
        if start < 0:
            return False
        count = int(self.child_count[root])
        victim = max(
            range(start, start + count),
            key=lambda c: (
                float(self.visits[c]),
                float(self.wins[c]),
                -int(self.move[c]),
            ),
        )
        self.wins[victim] += bonus
        return True

    def node_count(self, t: int) -> int:
        return int(self.tree_node_count[t])

    def max_depth(self, t: int) -> int:
        return int(self.tree_max_depth[t])

    # -- checkpointing ------------------------------------------------------

    #: Array fields captured verbatim (``[:allocated]``) by snapshots.
    _SNAPSHOT_ARRAYS = (
        "parent",
        "move",
        "mover",
        "to_move",
        "visits",
        "wins",
        "vloss",
        "terminal",
        "winner",
        "child_start",
        "child_count",
        "n_legal",
        "untried_count",
        "untried_mask",
    )

    def snapshot(self) -> dict:
        """A picklable copy of all live arena state.

        Cheap by construction: every struct-of-arrays field is one
        ``ndarray[:allocated].copy()``.  Per-node Python data (states,
        shuffled untried orders) is copied shallowly -- states are
        immutable, but untried orders are popped in place, so each
        list is duplicated.  The per-tree RNG states ride along; the
        log table is omitted (it regrows to identical values).
        """
        n = self._allocated
        return {
            "kind": "arena",
            "ucb_c": self.ucb_c,
            "selection_rule": self.selection_rule,
            "parallel_mode": self.parallel_mode,
            "n_trees": self.n_trees,
            "mask_words": self.mask_words,
            "allocated": n,
            "rng_states": [rng.getstate() for rng in self.rngs],
            "vloss_active": self._vloss_active,
            "roots": self.roots.copy(),
            "tree_node_count": self.tree_node_count.copy(),
            "tree_max_depth": self.tree_max_depth.copy(),
            "arrays": {
                name: getattr(self, name)[:n].copy()
                for name in self._SNAPSHOT_ARRAYS
            },
            "states": self.states[:n],
            "untried_order": [
                list(order) if order is not None else None
                for order in self.untried_order[:n]
            ],
        }

    @classmethod
    def from_snapshot(cls, game: Game, snap: dict) -> "TreeArena":
        """Rebuild an arena from :meth:`snapshot`; consumes no RNG
        draws and calls no game logic."""
        arena = object.__new__(cls)
        arena.game = game
        arena.ucb_c = snap["ucb_c"]
        arena.selection_rule = snap["selection_rule"]
        arena.parallel_mode = snap.get("parallel_mode", "vloss")
        arena.n_trees = snap["n_trees"]
        arena.mask_words = snap["mask_words"]
        arena.rngs = [
            XorShift64Star.from_state(s) for s in snap["rng_states"]
        ]
        arena._log_table = np.zeros(2, dtype=np.float64)
        arena._vloss_active = snap["vloss_active"]
        n = snap["allocated"]
        arena._make_arrays(max(n, 2))
        arena._allocated = n
        for name in cls._SNAPSHOT_ARRAYS:
            getattr(arena, name)[:n] = snap["arrays"][name]
        arena.states[:n] = snap["states"]
        arena.untried_order[:n] = [
            list(order) if order is not None else None
            for order in snap["untried_order"]
        ]
        arena.roots = np.asarray(snap["roots"], dtype=np.int64).copy()
        arena.tree_node_count = np.asarray(
            snap["tree_node_count"], dtype=np.int64
        ).copy()
        arena.tree_max_depth = np.asarray(
            snap["tree_max_depth"], dtype=np.int64
        ).copy()
        return arena

    def validate(self, trees=None) -> None:
        """Audit the arena's structural invariants; raises
        ``ArenaInvariantError`` on the first violation.

        Checks, per live node: the child span is inside the
        allocation, parent links point back into the span, every
        child's mover is its parent's player-to-move, the untried
        bookkeeping agrees three ways (count, shuffled order list,
        bitmask popcount and bit positions), filled children plus
        untried moves equal the branching factor, statistics are
        monotone (``wins - 0.5*draws <= visits``; parent visits at
        least the sum of child visits), and per-tree node counts match
        a BFS of each root.  Called after every restore and by the
        differential tests.

        ``trees`` restricts the audit to the given tree indices --
        how the integrity layer amortises a full sweep to one tree per
        audit point; None (the default) validates every tree.
        """
        n = self._allocated
        for t in range(self.n_trees) if trees is None else trees:
            root = int(self.roots[t])
            if not 0 <= root < n:
                raise ArenaInvariantError(
                    f"tree {t}: root {root} outside allocation {n}"
                )
            if self.parent[root] != -1:
                raise ArenaInvariantError(
                    f"tree {t}: root {root} has a parent"
                )
            reached = 0
            queue = [root]
            while queue:
                node = queue.pop()
                reached += 1
                self._validate_node(node, n)
                start = int(self.child_start[node])
                if start >= 0:
                    queue.extend(
                        start + k
                        for k in range(int(self.child_count[node]))
                    )
            if reached != int(self.tree_node_count[t]):
                raise ArenaInvariantError(
                    f"tree {t}: BFS reaches {reached} nodes, "
                    f"tree_node_count says {int(self.tree_node_count[t])}"
                )

    def _validate_node(self, node: int, allocated: int) -> None:
        n_legal = int(self.n_legal[node])
        untried = int(self.untried_count[node])
        filled = int(self.child_count[node])
        start = int(self.child_start[node])
        if filled + untried != n_legal:
            raise ArenaInvariantError(
                f"node {node}: children({filled}) + untried({untried}) "
                f"!= n_legal({n_legal})"
            )
        order = self.untried_order[node]
        order_set = set(order) if order is not None else set()
        if len(order_set) != untried or (
            order is not None and len(order) != untried
        ):
            raise ArenaInvariantError(
                f"node {node}: untried_order {order!r} disagrees with "
                f"untried_count {untried}"
            )
        mask_bits = set()
        for w in range(self.mask_words):
            word = int(self.untried_mask[node, w])
            while word:
                low = word & -word
                mask_bits.add(64 * w + low.bit_length() - 1)
                word ^= low
        if mask_bits != order_set:
            raise ArenaInvariantError(
                f"node {node}: untried bitmask {sorted(mask_bits)} != "
                f"untried order {sorted(order_set)}"
            )
        if start < 0:
            if filled:
                raise ArenaInvariantError(
                    f"node {node}: {filled} children but no child span"
                )
        else:
            if start + n_legal > allocated:
                raise ArenaInvariantError(
                    f"node {node}: span [{start}, {start + n_legal}) "
                    f"overruns allocation {allocated}"
                )
            child_visits = 0.0
            for k in range(filled):
                child = start + k
                if int(self.parent[child]) != node:
                    raise ArenaInvariantError(
                        f"node {child}: parent link "
                        f"{int(self.parent[child])} != {node}"
                    )
                if int(self.mover[child]) != int(self.to_move[node]):
                    raise ArenaInvariantError(
                        f"node {child}: mover != parent's to_move"
                    )
                child_visits += float(self.visits[child])
            if float(self.visits[node]) + 1e-9 < child_visits:
                raise ArenaInvariantError(
                    f"node {node}: visits {float(self.visits[node])} < "
                    f"sum of child visits {child_visits}"
                )
        if float(self.wins[node]) > float(self.visits[node]) + 1e-9:
            raise ArenaInvariantError(
                f"node {node}: wins {float(self.wins[node])} exceed "
                f"visits {float(self.visits[node])}"
            )

    # -- maintenance --------------------------------------------------------

    def compact(self) -> None:
        """Rewrite the arena in breadth-first order, trimming slack.

        Child spans keep their reserved ``n_legal`` width (unfilled
        slots are future children), but the capacity tail beyond the
        last allocation is dropped and nodes land in BFS order, which
        improves gather locality for the vectorised selection.  Node
        ids change: outstanding refs from before the call are invalid.
        Logical structure and statistics are untouched -- searching on
        after a compact yields bit-identical results.
        """
        mapping = np.full(self._allocated, -1, dtype=np.int64)
        new_span_start = np.full(self._allocated, -1, dtype=np.int64)
        new_alloc = 0
        queue: list[int] = []
        for t in range(self.n_trees):
            root = int(self.roots[t])
            mapping[root] = new_alloc
            new_alloc += 1
            queue.append(root)
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            start = int(self.child_start[node])
            if start < 0:
                continue
            new_span_start[node] = new_alloc
            new_alloc += int(self.n_legal[node])
            for k in range(int(self.child_count[node])):
                child = start + k
                mapping[child] = new_span_start[node] + k
                queue.append(child)

        copied = (
            "move",
            "mover",
            "to_move",
            "visits",
            "wins",
            "vloss",
            "terminal",
            "winner",
            "child_count",
            "n_legal",
            "untried_count",
            "untried_mask",
        )
        old_arrays = {name: getattr(self, name) for name in copied}
        old_parent = self.parent
        old_states = self.states
        old_orders = self.untried_order
        olds = np.nonzero(mapping >= 0)[0]
        news = mapping[olds]
        self._make_arrays(new_alloc)
        self._allocated = new_alloc
        for name in copied:
            getattr(self, name)[news] = old_arrays[name][olds]
        parents = old_parent[olds]
        self.parent[news] = np.where(parents >= 0, mapping[parents], -1)
        self.child_start[news] = new_span_start[olds]
        for o, n in zip(olds.tolist(), news.tolist()):
            self.states[n] = old_states[o]
            self.untried_order[n] = old_orders[o]
        self.roots = mapping[self.roots]
