"""Block-parallel MCTS -- the paper's contribution.

One CPU control thread owns one MCTS tree per GPU *block*.  Each
iteration the CPU walks every tree (selection + expansion -- this is
the *sequential part* whose cost grows with the number of blocks and
bends the paper's Figure 5 throughput curves down), then launches a
single kernel in which block ``b``'s threads all run playouts from tree
``b``'s selected leaf.  Results are reduced per block, backpropagated
per tree, and the final move is the root-parallel vote over all trees.

The scheme combines leaf parallelism's sample width with root
parallelism's independent exploration, with zero inter-block
communication -- which is exactly why it maps onto SIMT hardware.
"""

from __future__ import annotations

from repro.core.backend import restore_forest
from repro.core.base import Engine
from repro.core.policy import select_move
from repro.core.results import SearchResult
from repro.cpu import XEON_X5670
from repro.games.base import GameState
from repro.gpu import TESLA_C2050, LaunchConfig, VirtualGpu
from repro.util.seeding import derive_seed


class BlockParallelMcts(Engine):
    """One tree per block; block threads simulate their tree's leaf."""

    name = "block_parallel"

    def __init__(
        self,
        game,
        seed,
        blocks: int,
        threads_per_block: int,
        device=TESLA_C2050,
        cost_model=XEON_X5670,
        vote: str = "sum",
        **kwargs,
    ) -> None:
        if vote not in ("sum", "majority"):
            raise ValueError(f"unknown vote mode {vote!r}")
        super().__init__(game, seed, cost_model=cost_model, **kwargs)
        self.vote = vote
        self.config = LaunchConfig(blocks, threads_per_block)
        self.config.validate(device)
        self.gpu = VirtualGpu(
            device, self.clock, game.name, derive_seed(seed, "gpu")
        )

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        self._check_budget(budget_s, state)
        blocks = self.config.blocks
        self._live = {
            "forest": self._make_forest(
                state, [self.rng.fork("tree", b) for b in range(blocks)]
            ),
            "start_s": self.clock.now,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
        }
        return self._session_run()

    def _session_run(self) -> SearchResult:
        live = self._live
        forest = live["forest"]
        budget_s = live["budget_s"]
        blocks = self.config.blocks
        tpb = self.config.threads_per_block
        prof = self.profiler
        # tree_control_time is a pure function of depth; memoising it
        # repeats the exact same floats, so clock accumulation (and
        # therefore every budget decision) is unchanged -- including
        # across a checkpoint/restore boundary, where the cache simply
        # refills with identical values.
        control_time = self.cost.tree_control_time
        control_cache: dict[int, float] = {}
        advance = self.clock.advance
        cap = self._iteration_cap()
        while (
            self.clock.now - live["start_s"] < budget_s
            and live["iterations"] < cap
        ) or live["iterations"] == 0:
            # Sequential part: the one controlling CPU walks each tree
            # (lockstep-vectorised on the arena backend).
            with prof.phase("select"):
                leaves, depths = forest.select_expand_all()
                for depth in (
                    depths.tolist() if hasattr(depths, "tolist") else depths
                ):
                    t = control_cache.get(depth)
                    if t is None:
                        t = control_cache[depth] = control_time(depth)
                    advance(t)
            with prof.phase("playout"):
                result = self.gpu.run_playouts(
                    [forest.state_of(leaf) for leaf in leaves],
                    self.config,
                )
            with prof.phase("backprop"):
                per_block = result.winners.reshape(blocks, tpb)
                forest.backprop_block(leaves, tpb, per_block)
            live["iterations"] += 1
            live["simulations"] += result.playouts
            self._after_iteration(live["iterations"])
        stats = forest.aggregate_stats()
        voted = (
            forest.majority_vote_stats()
            if self.vote == "majority"
            else stats
        )
        result = SearchResult(
            move=select_move(voted, self.final_policy),
            stats=stats,
            iterations=live["iterations"],
            simulations=live["simulations"],
            max_depth=forest.max_depth(),
            tree_nodes=forest.node_count(),
            elapsed_s=self.clock.now - live["start_s"],
            trees=blocks,
            extras={
                "kernels": self.gpu.stats.kernels_launched,
                "per_tree_depth": forest.per_tree_depth(),
                "per_tree_nodes": forest.per_tree_nodes(),
            },
        )
        self._live = None
        return result

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        return {
            "forest": live["forest"].snapshot(),
            "start_s": live["start_s"],
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "gpu": self.gpu.getstate(),
        }

    def _restore_payload(self, payload: dict) -> dict:
        self.gpu.setstate(payload["gpu"])
        return {
            "forest": restore_forest(self.game, payload["forest"]),
            "start_s": payload["start_s"],
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
        }
