"""Block-parallel MCTS -- the paper's contribution.

One CPU control thread owns one MCTS tree per GPU *block*.  Each
iteration the CPU walks every tree (selection + expansion -- this is
the *sequential part* whose cost grows with the number of blocks and
bends the paper's Figure 5 throughput curves down), then launches a
single kernel in which block ``b``'s threads all run playouts from tree
``b``'s selected leaf.  Results are reduced per block, backpropagated
per tree, and the final move is the root-parallel vote over all trees.

The scheme combines leaf parallelism's sample width with root
parallelism's independent exploration, with zero inter-block
communication -- which is exactly why it maps onto SIMT hardware.

With a :class:`~repro.faults.FaultInjector` attached, every kernel
readback is screened at the host boundary (see
:mod:`repro.integrity`): rejected results are retried by re-running the
kernel (the GPU's lane RNGs have advanced, so the retry is fresh work,
and its playouts are charged), then degraded to a neutral all-draws
batch; the ``poison=tree:K`` fault and the amortised per-tree audit /
quarantine run at iteration boundaries.  Without an injector none of
these paths execute and the engine is bit-identical to before.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import restore_forest
from repro.core.base import Engine
from repro.core.policy import select_move
from repro.core.results import (
    INTEGRITY_EXTRA_KEYS,
    SearchResult,
    register_extra_keys,
)
from repro.cpu import XEON_X5670
from repro.games.base import GameState
from repro.gpu import TESLA_C2050, LaunchConfig, VirtualGpu
from repro.integrity.engine import IntegrityState
from repro.util.seeding import derive_seed

#: Root-vote modes shared by the multi-tree engines.
VOTE_MODES = ("sum", "majority", "trimmed")


class BlockParallelMcts(Engine):
    """One tree per block; block threads simulate their tree's leaf."""

    name = "block_parallel"

    def __init__(
        self,
        game,
        seed,
        blocks: int,
        threads_per_block: int,
        device=TESLA_C2050,
        cost_model=XEON_X5670,
        vote: str = "sum",
        injector=None,
        integrity=None,
        **kwargs,
    ) -> None:
        if vote not in VOTE_MODES:
            raise ValueError(f"unknown vote mode {vote!r}")
        super().__init__(game, seed, cost_model=cost_model, **kwargs)
        self.vote = vote
        self.injector = injector
        self.integrity = integrity
        self.config = LaunchConfig(blocks, threads_per_block)
        self.config.validate(device)
        self.gpu = VirtualGpu(
            device,
            self.clock,
            game.name,
            derive_seed(seed, "gpu"),
            playout=self.playout,
        )

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        self._check_budget(budget_s, state)
        blocks = self.config.blocks
        self._live = {
            "forest": self._make_forest(
                state, [self.rng.fork("tree", b) for b in range(blocks)]
            ),
            "start_s": self.clock.now,
            "budget_s": budget_s,
            "iterations": 0,
            "simulations": 0,
            "integrity": self._make_integrity(blocks),
        }
        return self._session_run()

    def _make_integrity(self, n_trees: int) -> "IntegrityState | None":
        if self.injector is None:
            return None
        return IntegrityState(self.integrity, self.injector, n_trees)

    def _vote_stats(self, forest, keep):
        if self.vote == "majority":
            return forest.majority_vote_stats(keep)
        if self.vote == "trimmed":
            return forest.trimmed_vote_stats(keep)
        return None  # sum: reuse the aggregate

    def _session_run(self) -> SearchResult:
        live = self._live
        forest = live["forest"]
        budget_s = live["budget_s"]
        blocks = self.config.blocks
        tpb = self.config.threads_per_block
        prof = self.profiler
        guard = live["integrity"]
        # tree_control_time is a pure function of depth; memoising it
        # repeats the exact same floats, so clock accumulation (and
        # therefore every budget decision) is unchanged -- including
        # across a checkpoint/restore boundary, where the cache simply
        # refills with identical values.
        control_time = self.cost.tree_control_time
        control_cache: dict[int, float] = {}
        advance = self.clock.advance
        cap = self._iteration_cap()
        while (
            self.clock.now - live["start_s"] < budget_s
            and live["iterations"] < cap
        ) or live["iterations"] == 0:
            # Sequential part: the one controlling CPU walks each tree
            # (lockstep-vectorised on the arena backend).
            with prof.phase("select"):
                leaves, depths = forest.select_expand_all()
                for depth in (
                    depths.tolist() if hasattr(depths, "tolist") else depths
                ):
                    t = control_cache.get(depth)
                    if t is None:
                        t = control_cache[depth] = control_time(depth)
                    advance(t)
            with prof.phase("playout"):
                states = [forest.state_of(leaf) for leaf in leaves]
                if guard is None:
                    result = self.gpu.run_playouts(states, self.config)
                    winners = result.winners
                    live["simulations"] += result.playouts
                else:
                    winners = self._screened_winners(states, live, guard)
            with prof.phase("backprop"):
                per_block = winners.reshape(blocks, tpb)
                forest.backprop_block(leaves, tpb, per_block)
            live["iterations"] += 1
            if guard is not None:
                guard.poison(forest, float(tpb))
                guard.audit(forest, live["iterations"])
            self._after_iteration(live["iterations"])
        if guard is not None:
            guard.final_sweep(forest)
        keep = guard.keep_indices() if guard is not None else None
        stats = forest.aggregate_stats(keep)
        voted = self._vote_stats(forest, keep) or stats
        extras = {
            "gpu.kernels": self.gpu.stats.kernels_launched,
            "tree.depth": forest.per_tree_depth(),
            "tree.nodes": forest.per_tree_nodes(),
        }
        if guard is not None:
            extras.update(guard.extras())
        result = SearchResult(
            move=select_move(voted, self.final_policy),
            stats=stats,
            iterations=live["iterations"],
            simulations=live["simulations"],
            max_depth=forest.max_depth(),
            tree_nodes=forest.node_count(),
            elapsed_s=self.clock.now - live["start_s"],
            trees=blocks,
            extras=extras,
            engine=self.name,
        )
        self._live = None
        return result

    def _screened_winners(
        self, states, live: dict, guard: IntegrityState
    ) -> np.ndarray:
        """Run the kernel, screen its readback, and retry rejects.

        Each retry re-runs the kernel -- the device RNGs have
        advanced, so it is fresh (charged) work.  When the retry
        budget runs out the batch degrades to all-draws, exactly the
        dropped-playout-batch model the serving layer uses for lost
        results.
        """
        blocks = self.config.blocks
        tpb = self.config.threads_per_block
        for attempt in range(guard.policy.max_result_retries + 1):
            result = self.gpu.run_playouts(states, self.config)
            live["simulations"] += result.playouts
            winners, ok = guard.screen_block(result.winners, blocks, tpb)
            if ok:
                return winners
        guard.give_up()
        return np.zeros(blocks * tpb, dtype=np.int8)

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        payload = {
            "forest": live["forest"].snapshot(),
            "start_s": live["start_s"],
            "budget_s": live["budget_s"],
            "iterations": live["iterations"],
            "simulations": live["simulations"],
            "gpu": self.gpu.getstate(),
        }
        if live.get("integrity") is not None:
            payload["integrity"] = live["integrity"].getstate()
        return payload

    def _restore_payload(self, payload: dict) -> dict:
        self.gpu.setstate(payload["gpu"])
        guard = self._make_integrity(self.config.blocks)
        if guard is not None and "integrity" in payload:
            guard.setstate(payload["integrity"])
        return {
            "forest": restore_forest(self.game, payload["forest"]),
            "start_s": payload["start_s"],
            "budget_s": payload["budget_s"],
            "iterations": payload["iterations"],
            "simulations": payload["simulations"],
            "integrity": guard,
        }


register_extra_keys(
    BlockParallelMcts.name,
    {
        "gpu.kernels": int,
        "tree.depth": list,
        "tree.nodes": list,
        **INTEGRITY_EXTRA_KEYS,
    },
)
