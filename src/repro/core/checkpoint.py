"""Engine checkpoints: snapshot, restore, and the on-disk format.

Every engine exposes ``snapshot()`` (a cheap, picklable
:class:`EngineSnapshot` of the live search: trees, RNG states, virtual
clock, iteration counters) and ``restore()`` + ``resume()`` /
``resume_steps()`` to continue the search *bit-identically* -- same
chosen move, same root statistics, same virtual elapsed time -- as if
the interruption never happened.  The determinism contract that makes
this testable is the same one behind the node/arena backend
equivalence: fixed RNG consumption order and explicit state
everywhere.

A snapshot deliberately does **not** self-describe how to build its
engine: constructing the engine is the caller's job (the serving
journal stores the originating request, which carries the engine
spec), and ``restore()`` refuses snapshots taken from a different
engine kind, backend or game.

On disk, :func:`save_checkpoint` / :func:`load_checkpoint` wrap the
snapshot in a versioned, CRC-checksummed pickle envelope; loading
rejects unknown format versions, foreign payloads and *any* byte
corruption.  Two checksums cover the whole blob: a trailing CRC over
the serialised envelope (so even framing bytes the pickle codec would
forgive -- e.g. the protocol byte -- are protected) and an inner CRC
over the nested snapshot pickle.  A single flipped bit anywhere
surfaces as a :class:`CheckpointError`, never as silently-adopted
poisoned state.  See docs/checkpointing.md.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

#: Bump on any incompatible change to snapshot payload layout.
CHECKPOINT_FORMAT_VERSION = 1

#: Bump on any incompatible change to the on-disk envelope shape.
#: Version 2 nests the snapshot pickle as checksummed bytes.
ENVELOPE_VERSION = 2

#: Magic key identifying our checkpoint envelopes on disk.
_ENVELOPE_KEY = "repro-mcts-checkpoint"


class CheckpointError(RuntimeError):
    """Raised on invalid checkpoint use: restoring a snapshot into a
    mismatched engine, loading an unknown format version, resuming an
    engine that holds no session."""


@dataclass(frozen=True)
class EngineSnapshot:
    """One engine's live search state, frozen mid-iteration.

    ``payload`` is the engine-kind-specific session dict (trees,
    counters, executor state, device state); the surrounding fields
    identify what may restore it.
    """

    #: :data:`CHECKPOINT_FORMAT_VERSION` at capture time.
    format_version: int
    #: Engine class name ("sequential", "block_parallel", ...).
    kind: str
    #: Tree backend the search ran on ("node" | "arena").
    backend: str
    #: Game name the search is over.
    game: str
    #: Engine seed (restore sanity check, not used to re-derive state).
    seed: int
    #: Virtual time on the engine clock at capture.
    clock_s: float
    #: Iterations completed at capture (engine-defined granularity).
    iterations: int
    #: Engine-specific live-session state.
    payload: dict = field(default_factory=dict)


def _pack(snapshot: EngineSnapshot) -> bytes:
    """The checksummed envelope: the snapshot pickle nested as bytes
    with its CRC alongside, so corruption of any body byte is caught
    by the checksum and corruption of the envelope itself is caught by
    the unpickle / magic / version checks."""
    if not isinstance(snapshot, EngineSnapshot):
        raise CheckpointError(
            f"can only save EngineSnapshot, got "
            f"{type(snapshot).__name__}"
        )
    body = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    blob = pickle.dumps(
        {
            "magic": _ENVELOPE_KEY,
            "envelope_version": ENVELOPE_VERSION,
            "format_version": snapshot.format_version,
            "crc": zlib.crc32(body),
            "snapshot_pickle": body,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    # Trailing whole-blob CRC: the envelope pickle has framing bytes
    # (protocol marker, memo opcodes) a flip of which the codec may
    # forgive; checksumming the serialised form closes that hole.
    return blob + struct.pack("<I", zlib.crc32(blob))


def _unpack(data: bytes, source: str) -> EngineSnapshot:
    """Inverse of :func:`_pack`; every failure mode -- including any
    single flipped byte -- raises :class:`CheckpointError`."""
    if len(data) < 5:
        raise CheckpointError(
            f"{source}: truncated checkpoint ({len(data)} bytes)"
        )
    blob, trailer = data[:-4], data[-4:]
    if zlib.crc32(blob) != struct.unpack("<I", trailer)[0]:
        raise CheckpointError(
            f"{source}: checkpoint CRC mismatch -- corrupted on disk "
            f"or not an engine checkpoint"
        )
    try:
        envelope = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"{source}: corrupt checkpoint envelope "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if (
        not isinstance(envelope, dict)
        or envelope.get("magic") != _ENVELOPE_KEY
    ):
        raise CheckpointError(f"{source} is not an engine checkpoint")
    envelope_version = envelope.get("envelope_version")
    if envelope_version != ENVELOPE_VERSION:
        raise CheckpointError(
            f"{source}: checkpoint envelope version "
            f"{envelope_version!r} unsupported (this build reads "
            f"{ENVELOPE_VERSION})"
        )
    version = envelope.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"{source}: checkpoint format {version!r} unsupported "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    body = envelope.get("snapshot_pickle")
    if not isinstance(body, (bytes, bytearray)):
        raise CheckpointError(
            f"{source}: envelope carries no snapshot payload"
        )
    stored = envelope.get("crc")
    actual = zlib.crc32(bytes(body))
    if stored != actual:
        raise CheckpointError(
            f"{source}: checkpoint CRC mismatch (stored {stored!r}, "
            f"computed {actual}) -- corrupted on disk"
        )
    try:
        snapshot = pickle.loads(bytes(body))
    except Exception as exc:  # pragma: no cover - CRC catches first
        raise CheckpointError(
            f"{source}: corrupt snapshot payload "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(snapshot, EngineSnapshot):
        raise CheckpointError(
            f"{source}: envelope payload is not an EngineSnapshot"
        )
    return snapshot


def save_checkpoint(
    snapshot: EngineSnapshot, path: str | Path
) -> Path:
    """Write ``snapshot`` to ``path`` in the checksummed envelope."""
    path = Path(path)
    data = _pack(snapshot)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
    tmp.replace(path)
    return path


def load_checkpoint(path: str | Path) -> EngineSnapshot:
    """Read a snapshot back; rejects foreign files, unknown versions
    and corrupted bytes (CRC) with :class:`CheckpointError`."""
    with open(path, "rb") as fh:
        data = fh.read()
    return _unpack(data, str(path))


def snapshot_bytes(snapshot: EngineSnapshot) -> bytes:
    """The checksummed envelope as bytes (what the serving journal
    embeds)."""
    return _pack(snapshot)


def snapshot_from_bytes(data: bytes) -> EngineSnapshot:
    """Inverse of :func:`snapshot_bytes`, with the same checks as
    :func:`load_checkpoint`."""
    return _unpack(data, "blob")
