"""Engine checkpoints: snapshot, restore, and the on-disk format.

Every engine exposes ``snapshot()`` (a cheap, picklable
:class:`EngineSnapshot` of the live search: trees, RNG states, virtual
clock, iteration counters) and ``restore()`` + ``resume()`` /
``resume_steps()`` to continue the search *bit-identically* -- same
chosen move, same root statistics, same virtual elapsed time -- as if
the interruption never happened.  The determinism contract that makes
this testable is the same one behind the node/arena backend
equivalence: fixed RNG consumption order and explicit state
everywhere.

A snapshot deliberately does **not** self-describe how to build its
engine: constructing the engine is the caller's job (the serving
journal stores the originating request, which carries the engine
spec), and ``restore()`` refuses snapshots taken from a different
engine kind, backend or game.

On disk, :func:`save_checkpoint` / :func:`load_checkpoint` wrap the
snapshot in a versioned pickle envelope; loading rejects unknown
format versions and foreign payloads instead of resuming garbage.
See docs/checkpointing.md.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path

#: Bump on any incompatible change to snapshot payload layout.
CHECKPOINT_FORMAT_VERSION = 1

#: Magic key identifying our checkpoint envelopes on disk.
_ENVELOPE_KEY = "repro-mcts-checkpoint"


class CheckpointError(RuntimeError):
    """Raised on invalid checkpoint use: restoring a snapshot into a
    mismatched engine, loading an unknown format version, resuming an
    engine that holds no session."""


@dataclass(frozen=True)
class EngineSnapshot:
    """One engine's live search state, frozen mid-iteration.

    ``payload`` is the engine-kind-specific session dict (trees,
    counters, executor state, device state); the surrounding fields
    identify what may restore it.
    """

    #: :data:`CHECKPOINT_FORMAT_VERSION` at capture time.
    format_version: int
    #: Engine class name ("sequential", "block_parallel", ...).
    kind: str
    #: Tree backend the search ran on ("node" | "arena").
    backend: str
    #: Game name the search is over.
    game: str
    #: Engine seed (restore sanity check, not used to re-derive state).
    seed: int
    #: Virtual time on the engine clock at capture.
    clock_s: float
    #: Iterations completed at capture (engine-defined granularity).
    iterations: int
    #: Engine-specific live-session state.
    payload: dict = field(default_factory=dict)


def save_checkpoint(
    snapshot: EngineSnapshot, path: str | Path
) -> Path:
    """Write ``snapshot`` to ``path`` in the versioned envelope."""
    if not isinstance(snapshot, EngineSnapshot):
        raise CheckpointError(
            f"can only save EngineSnapshot, got "
            f"{type(snapshot).__name__}"
        )
    path = Path(path)
    envelope = {
        "magic": _ENVELOPE_KEY,
        "format_version": snapshot.format_version,
        "snapshot": snapshot,
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return path


def load_checkpoint(path: str | Path) -> EngineSnapshot:
    """Read a snapshot back; rejects foreign files and unknown
    format versions."""
    with open(path, "rb") as fh:
        envelope = pickle.load(fh)
    if (
        not isinstance(envelope, dict)
        or envelope.get("magic") != _ENVELOPE_KEY
    ):
        raise CheckpointError(f"{path} is not an engine checkpoint")
    version = envelope.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {version!r} unsupported (this build "
            f"reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    snapshot = envelope.get("snapshot")
    if not isinstance(snapshot, EngineSnapshot):
        raise CheckpointError(
            f"{path}: envelope payload is not an EngineSnapshot"
        )
    return snapshot


def snapshot_bytes(snapshot: EngineSnapshot) -> bytes:
    """The envelope as bytes (what the serving journal embeds)."""
    return pickle.dumps(
        {
            "magic": _ENVELOPE_KEY,
            "format_version": snapshot.format_version,
            "snapshot": snapshot,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def snapshot_from_bytes(data: bytes) -> EngineSnapshot:
    """Inverse of :func:`snapshot_bytes`, with the same checks as
    :func:`load_checkpoint`."""
    envelope = pickle.loads(data)
    if (
        not isinstance(envelope, dict)
        or envelope.get("magic") != _ENVELOPE_KEY
    ):
        raise CheckpointError("blob is not an engine checkpoint")
    version = envelope.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {version!r} unsupported (this build "
            f"reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    snapshot = envelope.get("snapshot")
    if not isinstance(snapshot, EngineSnapshot):
        raise CheckpointError(
            "envelope payload is not an EngineSnapshot"
        )
    return snapshot
