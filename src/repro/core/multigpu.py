"""Multi-GPU MCTS over simulated MPI (paper Figure 9).

Each rank owns one virtual GPU running block-parallel MCTS; the root
state is broadcast, every rank searches independently for the move
budget, and per-move root statistics are summed with an MPI reduction
-- root parallelism across GPUs on top of block parallelism within
each, the exact structure of the paper's multi-GPU runs (112 blocks x
64 threads per GPU).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Engine
from repro.core.block_parallel import BlockParallelMcts
from repro.core.policy import select_move
from repro.core.results import (
    INTEGRITY_EXTRA_KEYS,
    SearchResult,
    register_extra_keys,
)
from repro.cpu import XEON_X5670
from repro.games.base import GameState
from repro.gpu import TESLA_C2050
from repro.mpi import MpiCluster, TSUBAME_IB
from repro.util.seeding import derive_seed


class MultiGpuMcts(Engine):
    """Rank-per-GPU root aggregation via the simulated cluster."""

    name = "multigpu"

    def __init__(
        self,
        game,
        seed,
        n_gpus: int,
        blocks: int,
        threads_per_block: int,
        device=TESLA_C2050,
        network=TSUBAME_IB,
        cost_model=XEON_X5670,
        injector=None,
        integrity=None,
        **kwargs,
    ) -> None:
        if n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive: {n_gpus}")
        super().__init__(game, seed, cost_model=cost_model, **kwargs)
        self.n_gpus = n_gpus
        self.blocks = blocks
        self.threads_per_block = threads_per_block
        self.device = device
        self.network = network
        #: Optional :class:`~repro.faults.FaultInjector`: per-rank vote
        #: contributions may be dropped in the final reductions, and it
        #: is forwarded to every rank-local block-parallel engine so
        #: kernel-readback corruption / poison / audits apply there too.
        self.injector = injector
        self.integrity = integrity
        self._engine_kwargs = kwargs

    def _make_cluster(self) -> MpiCluster:
        return MpiCluster(
            self.n_gpus,
            self.network,
            derive_seed(self.seed, "cluster"),
            injector=self.injector,
        )

    def _rank_engine(self, ctx) -> BlockParallelMcts:
        return BlockParallelMcts(
            self.game,
            ctx.seed,
            blocks=self.blocks,
            threads_per_block=self.threads_per_block,
            device=self.device,
            cost_model=self.cost,
            ucb_c=self.ucb_c,
            clock=ctx.clock,
            final_policy=self.final_policy,
            max_iterations=self.max_iterations,
            selection_rule=self.selection_rule,
            backend=self.backend,
            playout=self.playout,
            injector=self.injector,
            integrity=self.integrity,
        )

    def search(self, state: GameState, budget_s: float) -> SearchResult:
        self._check_budget(budget_s, state)
        cluster = self._make_cluster()
        states = cluster.bcast(state, root=0)
        self._live = {
            "root_state": state,
            "cluster": cluster,
            "states": states,
            "budget_s": budget_s,
            "rank_results": [],
            "iterations": 0,
        }
        return self._session_run()

    def _session_run(self) -> SearchResult:
        live = self._live
        cluster = live["cluster"]
        rank_results = live["rank_results"]
        budget_s = live["budget_s"]
        # Rank-local searches run sequentially in real time, each
        # charging only its own clock; a completed rank is this
        # engine's checkpoint boundary.
        while len(rank_results) < self.n_gpus:
            ctx = cluster._contexts[len(rank_results)]
            engine = self._rank_engine(ctx)
            rank_results.append(
                engine.search(live["states"][ctx.rank], budget_s)
            )
            live["iterations"] = len(rank_results)
            self._after_iteration(len(rank_results))

        # Reduce per-move (visits, wins) as fixed-size arrays, the way
        # the MPI code ships them (move id indexes the buffer).
        num_moves = self.game.num_moves
        visit_bufs = []
        win_bufs = []
        for res in rank_results:
            visits = np.zeros(num_moves)
            wins = np.zeros(num_moves)
            for move, (v, w) in res.stats.items():
                visits[move] = v
                wins[move] = w
            visit_bufs.append(visits)
            win_bufs.append(wins)
        total_visits = cluster.reduce(visit_bufs, op="sum", root=0)
        total_wins = cluster.reduce(win_bufs, op="sum", root=0)

        stats = {
            m: (float(total_visits[m]), float(total_wins[m]))
            for m in range(num_moves)
            if total_visits[m] > 0
        }
        elapsed = cluster.elapsed
        self.clock.advance_to(max(self.clock.now, elapsed))
        result = SearchResult(
            move=select_move(stats, self.final_policy),
            stats=stats,
            iterations=sum(r.iterations for r in rank_results),
            simulations=sum(r.simulations for r in rank_results),
            max_depth=max(r.max_depth for r in rank_results),
            tree_nodes=sum(r.tree_nodes for r in rank_results),
            elapsed_s=elapsed,
            trees=self.n_gpus * self.blocks,
            extras={
                "mpi.ranks": self.n_gpus,
                "mpi.rank_simulations": [
                    r.simulations for r in rank_results
                ],
                "tree.depth": [
                    d
                    for r in rank_results
                    for d in r.extras["tree.depth"]
                ],
                "tree.nodes": [
                    n
                    for r in rank_results
                    for n in r.extras["tree.nodes"]
                ],
                "mpi.dropped_messages": cluster.dropped,
            },
            engine=self.name,
        )
        if self.injector is not None:
            merged: dict = {
                key: [] if kind is list else 0
                for key, kind in INTEGRITY_EXTRA_KEYS.items()
            }
            for rank, r in enumerate(rank_results):
                for key in INTEGRITY_EXTRA_KEYS:
                    value = r.extras.get(key)
                    if value is None:
                        continue
                    if key == "integrity.quarantined":
                        merged[key].extend(
                            rank * self.blocks + t for t in value
                        )
                    else:
                        merged[key] += value
            result.extras.update(merged)
        self._live = None
        return result

    # -- checkpointing -------------------------------------------------------

    def _snapshot_payload(self) -> dict:
        live = self._live
        cluster = live["cluster"]
        return {
            "root_state": live["root_state"],
            "budget_s": live["budget_s"],
            "rank_results": list(live["rank_results"]),
            "rank_clocks": [c.now for c in cluster.clocks],
            "iterations": live["iterations"],
        }

    def _restore_payload(self, payload: dict) -> dict:
        # The cluster is rebuilt from scratch: its seed ladder is a
        # pure function of the engine seed, and the broadcast consumes
        # no injector draws, so replaying it reproduces the exact
        # post-bcast clock times before the stored per-rank times are
        # re-applied (completed ranks advance past them; pending ranks
        # are already there).
        cluster = self._make_cluster()
        states = cluster.bcast(payload["root_state"], root=0)
        for clock, t in zip(cluster.clocks, payload["rank_clocks"]):
            clock.advance_to(max(clock.now, t))
        return {
            "root_state": payload["root_state"],
            "cluster": cluster,
            "states": states,
            "budget_s": payload["budget_s"],
            "rank_results": list(payload["rank_results"]),
            "iterations": payload["iterations"],
        }


register_extra_keys(
    MultiGpuMcts.name,
    {
        "mpi.ranks": int,
        "mpi.rank_simulations": list,
        "tree.depth": list,
        "tree.nodes": list,
        "mpi.dropped_messages": int,
        **INTEGRITY_EXTRA_KEYS,
    },
)
