"""Shared-tree shootout: strength of the five CPU-side engine shapes.

Pits the shared-tree family -- ``tree:N`` (virtual loss), ``tree:N@wuct``
(WU-UCT accounting) and ``pipeline:N`` (3PMCTS staging) -- against the
independent-tree baselines ``root:N`` and ``block:1xN`` at equal worker
count and equal virtual move budget.  Every contender plays the same
opponent the paper's Figure 6 uses: sequential MCTS on one virtual CPU
core, both sides getting the same move time.  All games run in one
cohort so the CPU searches batch their playouts.

The claim under test (WU-UCT, arXiv:1810.11755): once enough workers
are in flight, folding incomplete visits into the *exploration* term
only -- instead of poisoning the mean as virtual loss does -- preserves
search quality, so ``@wuct`` should match or beat ``@vloss`` as N
grows.  The pipeline trades one round of staleness for select/playout
overlap, buying extra iterations at the same budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.cohort import play_games_cohort
from repro.arena.metrics import wilson_interval
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import make_game
from repro.harness.common import resolve_tier
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import format_series

#: label -> spec template; ``{n}`` is the worker count.
CONTENDERS = {
    "tree@vloss": "tree:{n}",
    "tree@wuct": "tree:{n}@wuct",
    "pipeline": "pipeline:{n}",
    "root": "root:{n}",
    "block": "block:1x{n}",
}


@dataclass(frozen=True)
class ShootoutConfig:
    games: tuple[str, ...] = ("reversi", "connect4")
    worker_counts: tuple[int, ...] = (4, 16)
    contenders: tuple[str, ...] = tuple(CONTENDERS)
    games_per_point: int = 8
    move_budget_s: float = 0.02
    seed: int = 23_1810
    max_plies: int | None = None

    def __post_init__(self) -> None:
        unknown = set(self.contenders) - set(CONTENDERS)
        if unknown:
            raise ValueError(
                f"unknown contenders {sorted(unknown)}; "
                f"available: {sorted(CONTENDERS)}"
            )

    @staticmethod
    def for_tier(tier: str | None = None) -> "ShootoutConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return ShootoutConfig(
                games=("connect4",),
                worker_counts=(4,),
                contenders=("tree@vloss", "tree@wuct", "pipeline"),
                games_per_point=2,
                move_budget_s=0.004,
            )
        if tier == "full":
            return ShootoutConfig(
                worker_counts=(4, 16, 64),
                games_per_point=24,
                move_budget_s=0.04,
            )
        return ShootoutConfig()

    @staticmethod
    def smoke() -> "ShootoutConfig":
        """The CI gate: wuct vs vloss head-to-head readout at N=16."""
        return ShootoutConfig(
            games=("connect4",),
            worker_counts=(16,),
            contenders=("tree@vloss", "tree@wuct"),
            games_per_point=8,
            move_budget_s=0.008,
        )


@dataclass
class ShootoutResult:
    config: ShootoutConfig
    #: (game, label) -> win ratios aligned with worker_counts.
    win_ratio: dict[tuple[str, str], list[float]] = field(
        default_factory=dict
    )
    #: (game, label) -> (lo, hi) Wilson 95% intervals per point.
    intervals: dict[tuple[str, str], list[tuple[float, float]]] = field(
        default_factory=dict
    )

    def ratio(self, game: str, label: str, n_workers: int) -> float:
        i = self.config.worker_counts.index(n_workers)
        return self.win_ratio[(game, label)][i]

    def render(self) -> str:
        blocks = []
        for game_name in self.config.games:
            series = {}
            for label in self.config.contenders:
                key = (game_name, label)
                cells = []
                for ratio, (lo, hi) in zip(
                    self.win_ratio[key], self.intervals[key]
                ):
                    cells.append(f"{ratio:.2f} [{lo:.2f},{hi:.2f}]")
                series[label] = cells
            blocks.append(
                format_series(
                    "workers",
                    list(self.config.worker_counts),
                    series,
                    title=(
                        f"{game_name}: win ratio vs 1-core sequential "
                        f"({self.config.games_per_point} games/point, "
                        f"{self.config.move_budget_s * 1e3:.0f} ms/move"
                        " virtual)"
                    ),
                )
            )
        return "\n\n".join(blocks)


def _subject(label: str, n: int, game, seed: int, cfg) -> MctsPlayer:
    spec = CONTENDERS[label].format(n=n)
    engine = make_engine(spec, game, seed)
    return MctsPlayer(game, engine, cfg.move_budget_s, name=label)


def run_shootout(config: ShootoutConfig | None = None) -> ShootoutResult:
    cfg = config or ShootoutConfig.for_tier()
    out = ShootoutResult(config=cfg)

    for game_name in cfg.games:
        game = make_game(game_name)
        matchups = []
        keys = []  # (label, n_workers, subject colour)
        for label in cfg.contenders:
            for n in cfg.worker_counts:
                for g in range(cfg.games_per_point):
                    seed_s = derive_seed(
                        cfg.seed, game_name, label, n, g, "subject"
                    )
                    seed_o = derive_seed(
                        cfg.seed, game_name, label, n, g, "opponent"
                    )
                    subject = _subject(label, n, game, seed_s, cfg)
                    opponent = MctsPlayer(
                        game,
                        make_engine("sequential", game, seed_o),
                        cfg.move_budget_s,
                        name="cpu-1",
                    )
                    colour = 1 if g % 2 == 0 else -1
                    if colour == 1:
                        matchups.append((subject, opponent))
                    else:
                        matchups.append((opponent, subject))
                    keys.append((label, n, colour))

        records = play_games_cohort(
            game,
            matchups,
            batch_executor(
                game_name, derive_seed(cfg.seed, game_name, "executor")
            ),
            max_plies=cfg.max_plies,
        )

        for label in cfg.contenders:
            ratios, cis = [], []
            for n in cfg.worker_counts:
                score, count = 0.0, 0
                for rec, (lab, workers, colour) in zip(records, keys):
                    if lab != label or workers != n:
                        continue
                    outcome = rec.winner * colour
                    score += (
                        1.0 if outcome > 0
                        else 0.5 if outcome == 0
                        else 0.0
                    )
                    count += 1
                ratios.append(score / count)
                cis.append(wilson_interval(score, count))
            out.win_ratio[(game_name, label)] = ratios
            out.intervals[(game_name, label)] = cis
    return out
