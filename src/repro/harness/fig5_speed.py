"""Figure 5: playouts/second vs GPU threads, leaf vs block parallelism.

For every (scheme, thread count) point we run a short real search from
the Reversi opening and report ``simulations / virtual elapsed``.  The
virtual elapsed includes the kernel time *and* the CPU sequential part
(one tree walk per block per iteration) -- the term that makes
block(32)'s curve sag below leaf(64)'s at high thread counts in the
paper, because 448 tiny trees cost the single controlling CPU more than
112 larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import make_engine
from repro.games import Reversi
from repro.gpu import TESLA_C2050, DeviceSpec
from repro.harness.common import (
    PAPER_SCHEMES,
    PAPER_THREAD_SWEEP,
    Scheme,
    resolve_tier,
)
from repro.util.seeding import derive_seed
from repro.util.tables import format_series


@dataclass(frozen=True)
class Fig5Config:
    thread_counts: tuple[int, ...] = PAPER_THREAD_SWEEP
    schemes: tuple[Scheme, ...] = PAPER_SCHEMES
    iterations_per_point: int = 4
    device: DeviceSpec = TESLA_C2050
    seed: int = 50_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "Fig5Config":
        tier = resolve_tier(tier)
        if tier == "quick":
            return Fig5Config(
                thread_counts=(32, 256, 1024),
                iterations_per_point=2,
            )
        if tier == "full":
            return Fig5Config(iterations_per_point=8)
        return Fig5Config()


@dataclass
class Fig5Result:
    config: Fig5Config
    #: scheme label -> list of playouts/s aligned with thread_counts.
    series: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        return format_series(
            "threads",
            list(self.config.thread_counts),
            {k: [f"{v:.3g}" for v in vs] for k, vs in self.series.items()},
            title=(
                "Figure 5 reproduction: playouts/second vs GPU threads "
                f"({self.config.device.name})"
            ),
        )


def _engine_for(scheme: Scheme, threads: int, cfg: Fig5Config):
    blocks, tpb = scheme.grid_for(threads)
    return make_engine(
        f"{scheme.kind}:{blocks}x{tpb}",
        Reversi(),
        derive_seed(cfg.seed, scheme.label, threads),
        device=cfg.device,
        max_iterations=cfg.iterations_per_point,
    )


def measure_point(
    scheme: Scheme, threads: int, cfg: Fig5Config
) -> float:
    """Sustained playouts/second for one configuration."""
    engine = _engine_for(scheme, threads, cfg)
    game = engine.game
    result = engine.search(game.initial_state(), budget_s=1e9)
    return result.simulations / result.elapsed_s


def run_fig5(config: Fig5Config | None = None) -> Fig5Result:
    cfg = config or Fig5Config.for_tier()
    out = Fig5Result(config=cfg)
    for scheme in cfg.schemes:
        out.series[scheme.label] = [
            measure_point(scheme, threads, cfg)
            for threads in cfg.thread_counts
        ]
    return out
