"""Figure 9: multi-GPU scaling over (simulated) MPI.

Two panels, reproduced as two series:

* throughput -- aggregate playouts/second as ranks grow (the paper's
  log-scale left panel, near-linear scaling);
* strength -- average final point difference vs the 1-core sequential
  opponent as ranks grow (the paper's right panel: improving with GPU
  count but flattening, the gains bounded by root-vote saturation and
  Reversi itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.cohort import play_games_cohort
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import Reversi
from repro.gpu import TESLA_C2050, DeviceSpec
from repro.harness.common import resolve_tier
from repro.mpi import TSUBAME_IB, NetworkModel
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import format_series


@dataclass(frozen=True)
class Fig9Config:
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8)
    blocks: int = 8
    tpb: int = 32
    games_per_point: int = 4
    move_budget_s: float = 0.036
    throughput_iterations: int = 3
    device: DeviceSpec = TESLA_C2050
    network: NetworkModel = TSUBAME_IB
    seed: int = 90_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "Fig9Config":
        tier = resolve_tier(tier)
        if tier == "quick":
            return Fig9Config(
                gpu_counts=(1, 2),
                blocks=4,
                games_per_point=2,
                move_budget_s=0.012,
            )
        if tier == "full":
            return Fig9Config(
                gpu_counts=(1, 2, 4, 8, 16, 32),
                blocks=112,
                tpb=64,
                games_per_point=8,
                move_budget_s=0.096,
            )
        return Fig9Config()


@dataclass
class Fig9Result:
    config: Fig9Config
    #: rank count -> aggregate playouts/second (virtual).
    throughput: dict[int, float] = field(default_factory=dict)
    #: rank count -> mean final point difference vs the opponent.
    point_difference: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        ranks = list(self.config.gpu_counts)
        return format_series(
            "gpus",
            ranks,
            {
                "playouts/s": [
                    f"{self.throughput[r]:.3g}" for r in ranks
                ],
                "avg point diff": [
                    f"{self.point_difference[r]:+.1f}" for r in ranks
                ],
            },
            title=(
                "Figure 9 reproduction: multi-GPU scaling "
                f"({self.config.blocks}x{self.config.tpb} per GPU, "
                "MPI root aggregation)"
            ),
        )


def _multigpu_engine(n_gpus: int, seed: int, cfg: Fig9Config):
    return make_engine(
        f"multigpu:{n_gpus}x{cfg.blocks}x{cfg.tpb}",
        Reversi(),
        seed,
        device=cfg.device,
        network=cfg.network,
    )


def measure_throughput(n_gpus: int, cfg: Fig9Config) -> float:
    engine = _multigpu_engine(
        n_gpus, derive_seed(cfg.seed, "thr", n_gpus), cfg
    )
    engine.max_iterations = cfg.throughput_iterations
    game = engine.game
    result = engine.search(game.initial_state(), budget_s=1e9)
    return result.simulations / result.elapsed_s


def run_fig9(config: Fig9Config | None = None) -> Fig9Result:
    cfg = config or Fig9Config.for_tier()
    game = Reversi()
    out = Fig9Result(config=cfg)

    for n in cfg.gpu_counts:
        out.throughput[n] = measure_throughput(n, cfg)

    matchups = []
    keys = []
    for n in cfg.gpu_counts:
        for g in range(cfg.games_per_point):
            subj = MctsPlayer(
                game,
                _multigpu_engine(
                    n, derive_seed(cfg.seed, "game", n, g, "s"), cfg
                ),
                cfg.move_budget_s,
                name=f"{n} GPUs",
            )
            opp = MctsPlayer(
                game,
                make_engine(
                    "sequential",
                    game,
                    derive_seed(cfg.seed, "game", n, g, "o"),
                ),
                cfg.move_budget_s,
            )
            colour = 1 if g % 2 == 0 else -1
            matchups.append((subj, opp) if colour == 1 else (opp, subj))
            keys.append((n, colour))

    records = play_games_cohort(
        game,
        matchups,
        batch_executor("reversi", derive_seed(cfg.seed, "executor")),
    )
    for n in cfg.gpu_counts:
        scores = [
            rec.final_score * colour
            for rec, (k, colour) in zip(records, keys)
            if k == n
        ]
        out.point_difference[n] = sum(scores) / len(scores)
    return out
