"""Experiment harness: one module per paper figure, plus ablations.

Every experiment has a config with ``for_tier('quick'|'default'|'full')``
presets (see :mod:`repro.harness.common`), a ``run_*`` entry point, and
a result object with ``.render()`` producing the rows/series the paper
plots.  The registry below maps experiment ids (DESIGN.md section 4) to
their runners.
"""

from repro.harness.ablations import (
    BackendConfig,
    BlockSizeConfig,
    UcbConfig,
    VotePolicyConfig,
    run_backend_ablation,
    run_block_size_ablation,
    run_divergence_ablation,
    run_seq_part_ablation,
    run_ucb_ablation,
    run_vote_policy_ablation,
)
from repro.harness.common import (
    PAPER_SCHEMES,
    PAPER_THREAD_SWEEP,
    Scheme,
    resolve_tier,
)
from repro.harness.fig5_speed import Fig5Config, Fig5Result, run_fig5
from repro.harness.generalization import (
    GeneralizationConfig,
    GeneralizationResult,
    run_generalization,
)
from repro.harness.fig6_winratio import Fig6Config, Fig6Result, run_fig6
from repro.harness.fig7_gpu_vs_cpus import Fig7Config, Fig7Result, run_fig7
from repro.harness.fig8_hybrid import Fig8Config, Fig8Result, run_fig8
from repro.harness.fig9_multigpu import Fig9Config, Fig9Result, run_fig9
from repro.harness.shared_tree import (
    ShootoutConfig,
    ShootoutResult,
    run_shootout,
)

#: Experiment id (DESIGN.md section 4) -> (config factory, runner).
EXPERIMENTS = {
    "fig5_speed": (Fig5Config.for_tier, run_fig5),
    "fig6_winratio": (Fig6Config.for_tier, run_fig6),
    "fig7_gpu_vs_cpus": (Fig7Config.for_tier, run_fig7),
    "fig8_hybrid": (Fig8Config.for_tier, run_fig8),
    "fig9_multigpu": (Fig9Config.for_tier, run_fig9),
    "abl_block_size": (
        BlockSizeConfig.for_tier,
        run_block_size_ablation,
    ),
    "abl_sequential_part": (
        lambda tier=None: None,
        lambda cfg=None: run_seq_part_ablation(),
    ),
    "abl_vote_policy": (
        VotePolicyConfig.for_tier,
        run_vote_policy_ablation,
    ),
    "abl_divergence": (
        lambda tier=None: None,
        lambda cfg=None: run_divergence_ablation(),
    ),
    "abl_ucb_c": (UcbConfig.for_tier, run_ucb_ablation),
    "abl_tree_backend": (BackendConfig.for_tier, run_backend_ablation),
    "exp_generalization": (
        GeneralizationConfig.for_tier,
        run_generalization,
    ),
    "exp_shared_tree": (ShootoutConfig.for_tier, run_shootout),
}


def run_experiment(name: str, tier: str | None = None):
    """Run a registered experiment at a tier; returns its result."""
    try:
        config_factory, runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    config = config_factory(tier)
    return runner(config) if config is not None else runner()


__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "resolve_tier",
    "Scheme",
    "PAPER_SCHEMES",
    "PAPER_THREAD_SWEEP",
    "Fig5Config",
    "Fig5Result",
    "run_fig5",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
    "Fig8Config",
    "Fig8Result",
    "run_fig8",
    "Fig9Config",
    "Fig9Result",
    "run_fig9",
    "BlockSizeConfig",
    "run_block_size_ablation",
    "run_seq_part_ablation",
    "run_divergence_ablation",
    "VotePolicyConfig",
    "run_vote_policy_ablation",
    "UcbConfig",
    "run_ucb_ablation",
    "BackendConfig",
    "run_backend_ablation",
    "GeneralizationConfig",
    "GeneralizationResult",
    "run_generalization",
    "ShootoutConfig",
    "ShootoutResult",
    "run_shootout",
]
