"""Figure 7: point difference per game step -- root-parallel CPUs vs
one block-parallel GPU, all against the 1-core sequential opponent.

The paper plots, for each configuration, the average (our score -
opponent's score) at every game step; the headline is that one GPU's
curve sits above even the 256-CPU curve, with the GPU relatively
stronger early in the game.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arena.cohort import play_games_cohort
from repro.arena.metrics import mean_score_series
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import Reversi
from repro.gpu import TESLA_C2050, DeviceSpec
from repro.harness.common import resolve_tier
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import ascii_chart, format_series


@dataclass(frozen=True)
class Fig7Config:
    cpu_counts: tuple[int, ...] = (2, 8, 32, 128)
    gpu_blocks: int = 32
    gpu_tpb: int = 128
    games_per_point: int = 4
    move_budget_s: float = 0.036
    steps: int = 60
    device: DeviceSpec = TESLA_C2050
    seed: int = 70_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "Fig7Config":
        tier = resolve_tier(tier)
        if tier == "quick":
            return Fig7Config(
                cpu_counts=(2, 8),
                gpu_blocks=8,
                gpu_tpb=32,
                games_per_point=2,
                move_budget_s=0.012,
            )
        if tier == "full":
            return Fig7Config(
                cpu_counts=(2, 4, 8, 16, 32, 64, 128, 256),
                gpu_blocks=112,
                gpu_tpb=128,
                games_per_point=10,
                move_budget_s=0.096,
            )
        return Fig7Config()


@dataclass
class Fig7Result:
    config: Fig7Config
    #: label ("2 cpus", ..., "1 GPU") -> per-step mean point difference.
    series: dict[str, np.ndarray] = field(default_factory=dict)

    def final_scores(self) -> dict[str, float]:
        return {k: float(v[-1]) for k, v in self.series.items()}

    def gpu_equivalent_cpus(self) -> float:
        """The paper's headline: how many root-parallel CPU cores the
        GPU's final score is worth, by log-linear interpolation on the
        CPU curve.  Returns ``inf`` if the GPU beats every CPU
        configuration measured (the paper's Fig. 7 outcome) and the
        smallest measured count if it trails all of them."""
        import math

        finals = self.final_scores()
        gpu = finals["1 GPU"]
        cpu_points = sorted(
            (int(label.split()[0]), score)
            for label, score in finals.items()
            if label != "1 GPU"
        )
        if gpu >= cpu_points[-1][1]:
            return float("inf")
        if gpu <= cpu_points[0][1]:
            return float(cpu_points[0][0])
        for (n0, s0), (n1, s1) in zip(cpu_points, cpu_points[1:]):
            if s0 <= gpu <= s1 and s1 > s0:
                frac = (gpu - s0) / (s1 - s0)
                return float(
                    math.exp(
                        math.log(n0)
                        + frac * (math.log(n1) - math.log(n0))
                    )
                )
        return float(cpu_points[0][0])

    def render(self, step_stride: int = 8) -> str:
        steps = list(range(1, self.config.steps + 1, step_stride))
        if steps[-1] != self.config.steps:
            steps.append(self.config.steps)
        series = {
            label: [f"{values[s - 1]:+.1f}" for s in steps]
            for label, values in self.series.items()
        }
        table = format_series(
            "step",
            steps,
            series,
            title=(
                "Figure 7 reproduction: mean point difference vs game "
                "step (subject minus 1-core sequential opponent, "
                f"{self.config.games_per_point} games/config)"
            ),
        )
        chart = ascii_chart(
            {k: list(v) for k, v in self.series.items()},
            title="point difference vs game step:",
        )
        eq = self.gpu_equivalent_cpus()
        eq_line = (
            "1 GPU >= every measured CPU configuration"
            if eq == float("inf")
            else f"1 GPU ~ {eq:.0f} root-parallel CPU cores"
        )
        return f"{table}\n\n{chart}\n\nheadline: {eq_line}"


def run_fig7(config: Fig7Config | None = None) -> Fig7Result:
    cfg = config or Fig7Config.for_tier()
    game = Reversi()

    def cpu_subject(n_cpus: int, seed: int) -> MctsPlayer:
        return MctsPlayer(
            game,
            make_engine(f"root:{n_cpus}", game, seed),
            cfg.move_budget_s,
            name=f"{n_cpus} cpus",
        )

    def gpu_subject(seed: int) -> MctsPlayer:
        return MctsPlayer(
            game,
            make_engine(
                f"block:{cfg.gpu_blocks}x{cfg.gpu_tpb}",
                game,
                seed,
                device=cfg.device,
            ),
            cfg.move_budget_s,
            name="1 GPU",
        )

    def opponent(seed: int) -> MctsPlayer:
        return MctsPlayer(
            game, make_engine("sequential", game, seed), cfg.move_budget_s
        )

    subjects: list[tuple[str, object]] = [
        (f"{n} cpus", lambda s, n=n: cpu_subject(n, s))
        for n in cfg.cpu_counts
    ]
    subjects.append(("1 GPU", gpu_subject))

    matchups = []
    keys = []  # (label, colour)
    for label, factory in subjects:
        for g in range(cfg.games_per_point):
            subj = factory(derive_seed(cfg.seed, label, g, "subject"))
            opp = opponent(derive_seed(cfg.seed, label, g, "opponent"))
            colour = 1 if g % 2 == 0 else -1
            matchups.append((subj, opp) if colour == 1 else (opp, subj))
            keys.append((label, colour))

    records = play_games_cohort(
        game,
        matchups,
        batch_executor("reversi", derive_seed(cfg.seed, "executor")),
    )

    out = Fig7Result(config=cfg)
    for label, _ in subjects:
        recs = [r for r, (k, _) in zip(records, keys) if k == label]
        colours = [c for _, (k, c) in zip(records, keys) if k == label]
        out.series[label] = mean_score_series(recs, colours, cfg.steps)
    return out
