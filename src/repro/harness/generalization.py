"""Generalization experiment: block parallelism beyond Reversi.

The paper's future-work section asks whether the algorithm transfers to
other domains.  This experiment replays the Figure 6 comparison (leaf
vs block parallelism against a 1-core sequential player, equal virtual
move time) on Connect-4 and Breakthrough: the *relationships* -- GPU
schemes beating the sequential baseline, block at least matching leaf
-- should survive the domain change even though the games' branching
factors and lengths differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.cohort import play_games_cohort
from repro.arena.metrics import wilson_interval
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import make_game
from repro.gpu import TESLA_C2050, DeviceSpec
from repro.harness.common import resolve_tier
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import format_table


@dataclass(frozen=True)
class GeneralizationConfig:
    games: tuple[str, ...] = ("connect4", "breakthrough")
    blocks: int = 8
    tpb: int = 32
    games_per_point: int = 6
    move_budget_s: float = 0.012
    device: DeviceSpec = TESLA_C2050
    seed: int = 85_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "GeneralizationConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return GeneralizationConfig(
                games=("connect4",),
                blocks=4,
                games_per_point=4,
                move_budget_s=0.008,
            )
        if tier == "full":
            return GeneralizationConfig(
                games_per_point=16, move_budget_s=0.024
            )
        return GeneralizationConfig()


@dataclass
class GeneralizationResult:
    config: GeneralizationConfig
    #: (game, scheme) -> win ratio vs the sequential baseline.
    win_ratio: dict[tuple[str, str], float] = field(default_factory=dict)
    intervals: dict[tuple[str, str], tuple[float, float]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        rows = []
        for (game_name, scheme), ratio in sorted(self.win_ratio.items()):
            lo, hi = self.intervals[(game_name, scheme)]
            rows.append(
                [game_name, scheme, f"{ratio:.2f}", f"[{lo:.2f},{hi:.2f}]"]
            )
        return format_table(
            ["game", "scheme", "win ratio vs cpu-1", "95% CI"],
            rows,
            title=(
                "Generalization: GPU schemes on other domains "
                f"({self.config.blocks}x{self.config.tpb}, "
                f"{self.config.games_per_point} games/cell)"
            ),
        )


def run_generalization(
    config: GeneralizationConfig | None = None,
) -> GeneralizationResult:
    cfg = config or GeneralizationConfig.for_tier()
    out = GeneralizationResult(config=cfg)
    for game_name in cfg.games:
        game = make_game(game_name)
        matchups, keys = [], []
        for scheme in ("block", "leaf"):
            for g in range(cfg.games_per_point):
                subj = MctsPlayer(
                    game,
                    make_engine(
                        f"{scheme}:{cfg.blocks}x{cfg.tpb}",
                        game,
                        derive_seed(cfg.seed, game_name, scheme, g, "s"),
                        device=cfg.device,
                    ),
                    cfg.move_budget_s,
                )
                opp = MctsPlayer(
                    game,
                    make_engine(
                        "sequential",
                        game,
                        derive_seed(cfg.seed, game_name, scheme, g, "o"),
                    ),
                    cfg.move_budget_s,
                )
                colour = 1 if g % 2 == 0 else -1
                matchups.append(
                    (subj, opp) if colour == 1 else (opp, subj)
                )
                keys.append((scheme, colour))
        records = play_games_cohort(
            game,
            matchups,
            batch_executor(
                game_name, derive_seed(cfg.seed, game_name, "x")
            ),
        )
        for scheme in ("block", "leaf"):
            score = sum(
                1.0 if rec.winner * colour > 0
                else 0.5 if rec.winner == 0
                else 0.0
                for rec, (k, colour) in zip(records, keys)
                if k == scheme
            )
            out.win_ratio[(game_name, scheme)] = (
                score / cfg.games_per_point
            )
            out.intervals[(game_name, scheme)] = wilson_interval(
                score, cfg.games_per_point
            )
    return out
