"""Ablation experiments for the design choices DESIGN.md calls out.

These are not paper figures; they probe the claims the paper makes in
prose: the block-size trade-off, the growth of the CPU sequential part
with tree count, the root-vote aggregation policy, and UCB exploration
sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.cohort import play_games_cohort
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.core.policy import MAX_RATIO, MAX_VISITS, MAX_WINS
from repro.games import Reversi
from repro.gpu import TESLA_C2050, LaunchConfig, playout_kernel_spec
from repro.gpu.timing import kernel_time
from repro.harness.common import resolve_tier
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import format_series, format_table

import numpy as np


# ---------------------------------------------------------------------------
# Block-size trade-off at fixed total threads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockSizeConfig:
    total_threads: int = 1024
    block_sizes: tuple[int, ...] = (32, 64, 128, 256)
    games_per_point: int = 4
    move_budget_s: float = 0.036
    seed: int = 81_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "BlockSizeConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return BlockSizeConfig(
                total_threads=256,
                block_sizes=(32, 128),
                games_per_point=2,
                move_budget_s=0.024,
            )
        if tier == "full":
            return BlockSizeConfig(
                total_threads=4096,
                block_sizes=(32, 64, 128, 256, 512),
                games_per_point=12,
                move_budget_s=0.096,
            )
        return BlockSizeConfig()


@dataclass
class BlockSizeResult:
    config: BlockSizeConfig
    win_ratio: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        sizes = list(self.config.block_sizes)
        return format_series(
            "block size",
            sizes,
            {
                "win ratio vs cpu-1": [
                    f"{self.win_ratio[b]:.2f}" for b in sizes
                ]
            },
            title=(
                "Ablation: block size at fixed "
                f"{self.config.total_threads} total threads "
                "(trees x samples trade-off)"
            ),
        )


def run_block_size_ablation(
    config: BlockSizeConfig | None = None,
) -> BlockSizeResult:
    cfg = config or BlockSizeConfig.for_tier()
    game = Reversi()
    matchups, keys = [], []
    for bs in cfg.block_sizes:
        blocks = max(1, cfg.total_threads // bs)
        for g in range(cfg.games_per_point):
            tpb = min(bs, cfg.total_threads)
            subj = MctsPlayer(
                game,
                make_engine(
                    f"block:{blocks}x{tpb}",
                    game,
                    derive_seed(cfg.seed, bs, g, "s"),
                ),
                cfg.move_budget_s,
            )
            opp = MctsPlayer(
                game,
                make_engine(
                    "sequential", game, derive_seed(cfg.seed, bs, g, "o")
                ),
                cfg.move_budget_s,
            )
            colour = 1 if g % 2 == 0 else -1
            matchups.append((subj, opp) if colour == 1 else (opp, subj))
            keys.append((bs, colour))
    records = play_games_cohort(
        game, matchups, batch_executor("reversi", derive_seed(cfg.seed, "x"))
    )
    out = BlockSizeResult(config=cfg)
    for bs in cfg.block_sizes:
        score = sum(
            1.0 if rec.winner * colour > 0 else 0.5 if rec.winner == 0 else 0.0
            for rec, (k, colour) in zip(records, keys)
            if k == bs
        )
        out.win_ratio[bs] = score / cfg.games_per_point
    return out


# ---------------------------------------------------------------------------
# Sequential-part share (model-based, no games needed)
# ---------------------------------------------------------------------------

@dataclass
class SeqPartResult:
    block_counts: list[int]
    seq_fraction: list[float]

    def render(self) -> str:
        return format_series(
            "blocks(trees)",
            self.block_counts,
            {
                "CPU sequential share": [
                    f"{f * 100:.1f}%" for f in self.seq_fraction
                ]
            },
            title=(
                "Ablation: share of each block-parallel iteration spent "
                "in the serial CPU part (Amdahl term of Figure 5)"
            ),
        )


def run_seq_part_ablation(
    block_counts: tuple[int, ...] = (1, 4, 16, 64, 112, 224, 448),
    tpb: int = 32,
    mean_depth: int = 8,
    mean_steps: float = 65.0,
) -> SeqPartResult:
    from repro.cpu import XEON_X5670

    spec = TESLA_C2050
    kernel = playout_kernel_spec("reversi")
    fractions = []
    for blocks in block_counts:
        config = LaunchConfig(blocks, tpb)
        timing = kernel_time(
            spec, kernel, config, np.full(blocks, mean_steps)
        )
        t_seq = blocks * XEON_X5670.tree_control_time(mean_depth)
        fractions.append(t_seq / (t_seq + timing.total_s))
    return SeqPartResult(list(block_counts), fractions)


# ---------------------------------------------------------------------------
# Warp divergence across game stages
# ---------------------------------------------------------------------------

@dataclass
class DivergenceAblationResult:
    stage_labels: list[str]
    mean_efficiency: list[float]
    utilisation: list[float]

    def render(self) -> str:
        return format_series(
            "game stage",
            self.stage_labels,
            {
                "warp efficiency": [
                    f"{e:.2f}" for e in self.mean_efficiency
                ],
                "lane utilisation": [
                    f"{u:.2f}" for u in self.utilisation
                ],
            },
            title=(
                "Ablation: SIMT warp efficiency of the playout kernel "
                "by game stage (justifies the kernel divergence "
                "constant)"
            ),
        )


def run_divergence_ablation(
    plies_per_stage: tuple[int, ...] = (0, 20, 40, 52),
    lanes: int = 256,
    seed: int = 84_2011,
) -> DivergenceAblationResult:
    """Warp efficiency of playout kernels launched from positions of
    increasing depth: later positions have shorter, more variable
    playouts, so divergence grows toward the endgame."""
    from repro.games import BatchReversi
    from repro.games.batch import run_playouts_tracked
    from repro.gpu.divergence import analyze_divergence
    from repro.rng import BatchXorShift128Plus, XorShift64Star

    game = Reversi()
    bg = BatchReversi()
    config = LaunchConfig(lanes // 32, 32)
    labels, eff, util = [], [], []
    for plies in plies_per_stage:
        rng = XorShift64Star(derive_seed(seed, plies))
        state = game.initial_state()
        for _ in range(plies):
            if game.is_terminal(state):
                break
            moves = game.legal_moves(state)
            state = game.apply(state, moves[rng.randrange(len(moves))])
        batch = bg.make_batch([state], lanes)
        tracked = run_playouts_tracked(
            bg, batch, BatchXorShift128Plus(lanes, derive_seed(seed, plies, 1))
        )
        report = analyze_divergence(tracked.finish_steps, config)
        labels.append(f"ply {plies}")
        eff.append(report.mean_efficiency)
        util.append(report.utilisation)
    return DivergenceAblationResult(labels, eff, util)


# ---------------------------------------------------------------------------
# Root-vote aggregation policy
# ---------------------------------------------------------------------------

#: Pseudo-policy id: one ballot per tree instead of summed visits.
MAJORITY_VOTE = "majority_vote"


@dataclass(frozen=True)
class VotePolicyConfig:
    policies: tuple[str, ...] = (
        MAX_VISITS,
        MAX_RATIO,
        MAX_WINS,
        MAJORITY_VOTE,
    )
    blocks: int = 16
    tpb: int = 32
    games_per_point: int = 4
    move_budget_s: float = 0.036
    seed: int = 82_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "VotePolicyConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return VotePolicyConfig(
                policies=(MAX_VISITS, MAX_RATIO),
                blocks=4,
                games_per_point=2,
                move_budget_s=0.024,
            )
        if tier == "full":
            return VotePolicyConfig(
                games_per_point=12, move_budget_s=0.096
            )
        return VotePolicyConfig()


@dataclass
class VotePolicyResult:
    config: VotePolicyConfig
    win_ratio: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [policy, f"{self.win_ratio[policy]:.2f}"]
            for policy in self.config.policies
        ]
        return format_table(
            ["final-move policy", "win ratio vs cpu-1"],
            rows,
            title="Ablation: root-vote aggregation policy",
        )


def run_vote_policy_ablation(
    config: VotePolicyConfig | None = None,
) -> VotePolicyResult:
    cfg = config or VotePolicyConfig.for_tier()
    game = Reversi()
    matchups, keys = [], []
    for policy in cfg.policies:
        if policy == MAJORITY_VOTE:
            engine_kwargs = {"vote": "majority"}
        else:
            engine_kwargs = {"final_policy": policy}
        for g in range(cfg.games_per_point):
            subj = MctsPlayer(
                game,
                make_engine(
                    f"block:{cfg.blocks}x{cfg.tpb}",
                    game,
                    derive_seed(cfg.seed, policy, g, "s"),
                    **engine_kwargs,
                ),
                cfg.move_budget_s,
            )
            opp = MctsPlayer(
                game,
                make_engine(
                    "sequential",
                    game,
                    derive_seed(cfg.seed, policy, g, "o"),
                ),
                cfg.move_budget_s,
            )
            colour = 1 if g % 2 == 0 else -1
            matchups.append((subj, opp) if colour == 1 else (opp, subj))
            keys.append((policy, colour))
    records = play_games_cohort(
        game, matchups, batch_executor("reversi", derive_seed(cfg.seed, "x"))
    )
    out = VotePolicyResult(config=cfg)
    for policy in cfg.policies:
        score = sum(
            1.0 if rec.winner * colour > 0 else 0.5 if rec.winner == 0 else 0.0
            for rec, (k, colour) in zip(records, keys)
            if k == policy
        )
        out.win_ratio[policy] = score / cfg.games_per_point
    return out


# ---------------------------------------------------------------------------
# Tree backend: pointer nodes vs struct-of-arrays arena
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BackendConfig:
    """Node-vs-arena wall-clock comparison on block-parallel search.

    The default shape (many narrow trees on a small-branching game) is
    where the lockstep descent pays off; expansion-dominated shapes
    (reversi, few trees) sit at parity -- see
    ``benchmarks/REPORT_arena.md`` for the sweep.
    """

    blocks: int = 256
    tpb: int = 1
    iterations: int = 400
    game: str = "tictactoe"
    seed: int = 85_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "BackendConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return BackendConfig(blocks=128, iterations=120)
        if tier == "full":
            return BackendConfig(blocks=512, iterations=600)
        return BackendConfig()


@dataclass
class BackendResult:
    config: BackendConfig
    #: backend -> wall-clock iterations per second.
    iters_per_s: dict[str, float] = field(default_factory=dict)
    #: Same seed produced the same move and root stats on both?
    identical: bool = False

    @property
    def speedup(self) -> float:
        node = self.iters_per_s.get("node", 0.0)
        arena = self.iters_per_s.get("arena", 0.0)
        return arena / node if node > 0 else float("nan")

    def render(self) -> str:
        rows = [
            [backend, f"{self.iters_per_s[backend]:.1f}"]
            for backend in sorted(self.iters_per_s)
        ]
        rows.append(["arena/node speedup", f"{self.speedup:.2f}x"])
        rows.append(["identical results", str(self.identical)])
        return format_table(
            ["tree backend", "iterations/s (wall)"],
            rows,
            title=(
                "Ablation: tree backend on block-parallel "
                f"({self.config.blocks}x{self.config.tpb}, "
                f"{self.config.iterations} iterations, "
                f"{self.config.game})"
            ),
        )


def run_backend_ablation(
    config: BackendConfig | None = None,
) -> BackendResult:
    import time

    from repro.games import make_game

    cfg = config or BackendConfig.for_tier()
    game = make_game(cfg.game)
    state = game.initial_state()
    out = BackendResult(config=cfg)
    results = {}
    for backend in ("node", "arena"):
        engine = make_engine(
            {
                "kind": "block",
                "blocks": cfg.blocks,
                "threads_per_block": cfg.tpb,
                "max_iterations": cfg.iterations,
                "backend": backend,
            },
            game,
            cfg.seed,
        )
        t0 = time.perf_counter()
        results[backend] = engine.search(state, budget_s=1e9)
        wall = time.perf_counter() - t0
        out.iters_per_s[backend] = results[backend].iterations / wall
    node, arena = results["node"], results["arena"]
    out.identical = (
        node.move == arena.move
        and node.stats == arena.stats
        and node.iterations == arena.iterations
    )
    return out


# ---------------------------------------------------------------------------
# UCB exploration constant
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UcbConfig:
    c_values: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0)
    games_per_point: int = 4
    move_budget_s: float = 0.024
    seed: int = 83_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "UcbConfig":
        tier = resolve_tier(tier)
        if tier == "quick":
            return UcbConfig(
                c_values=(0.5, 2.0),
                games_per_point=2,
                move_budget_s=0.012,
            )
        if tier == "full":
            return UcbConfig(
                c_values=(0.1, 0.25, 0.5, 1.0, 1.4, 2.0, 4.0),
                games_per_point=12,
            )
        return UcbConfig()


@dataclass
class UcbResult:
    config: UcbConfig
    win_ratio: dict[float, float] = field(default_factory=dict)

    def render(self) -> str:
        cs = list(self.config.c_values)
        return format_series(
            "UCB C",
            cs,
            {
                "win ratio vs C=1.0": [
                    f"{self.win_ratio[c]:.2f}" for c in cs
                ]
            },
            title="Ablation: UCB exploration constant (sequential MCTS)",
        )


def run_ucb_ablation(config: UcbConfig | None = None) -> UcbResult:
    cfg = config or UcbConfig.for_tier()
    game = Reversi()
    matchups, keys = [], []
    for c in cfg.c_values:
        for g in range(cfg.games_per_point):
            subj = MctsPlayer(
                game,
                make_engine(
                    "sequential",
                    game,
                    derive_seed(cfg.seed, str(c), g, "s"),
                    ucb_c=c,
                ),
                cfg.move_budget_s,
            )
            opp = MctsPlayer(
                game,
                make_engine(
                    "sequential",
                    game,
                    derive_seed(cfg.seed, str(c), g, "o"),
                    ucb_c=1.0,
                ),
                cfg.move_budget_s,
            )
            colour = 1 if g % 2 == 0 else -1
            matchups.append((subj, opp) if colour == 1 else (opp, subj))
            keys.append((c, colour))
    records = play_games_cohort(
        game, matchups, batch_executor("reversi", derive_seed(cfg.seed, "x"))
    )
    out = UcbResult(config=cfg)
    for c in cfg.c_values:
        score = sum(
            1.0 if rec.winner * colour > 0 else 0.5 if rec.winner == 0 else 0.0
            for rec, (k, colour) in zip(records, keys)
            if k == c
        )
        out.win_ratio[c] = score / cfg.games_per_point
    return out
