"""Figure 8: hybrid CPU/GPU vs GPU-only -- points and tree depth.

The paper's two-panel figure: per game step, (left) the points achieved
against the sequential opponent and (right) the maximum tree depth
reached by the subject's search.  The hybrid engine overlaps CPU
iterations with the asynchronous kernel, so its trees are deeper and
its endgame stronger -- the two claims this experiment checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arena.cohort import play_games_cohort
from repro.arena.metrics import mean_depth_series, mean_score_series
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import Reversi
from repro.gpu import TESLA_C2050, DeviceSpec
from repro.harness.common import resolve_tier
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import ascii_chart, format_series


@dataclass(frozen=True)
class Fig8Config:
    blocks: int = 16
    tpb: int = 32
    games_per_series: int = 5
    move_budget_s: float = 0.036
    steps: int = 60
    device: DeviceSpec = TESLA_C2050
    seed: int = 80_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "Fig8Config":
        tier = resolve_tier(tier)
        if tier == "quick":
            return Fig8Config(
                blocks=4, games_per_series=2, move_budget_s=0.012
            )
        if tier == "full":
            return Fig8Config(
                blocks=56,
                tpb=64,
                games_per_series=10,
                move_budget_s=0.096,
            )
        return Fig8Config()


@dataclass
class Fig8Result:
    config: Fig8Config
    points: dict[str, np.ndarray] = field(default_factory=dict)
    depth: dict[str, np.ndarray] = field(default_factory=dict)

    def render(self, step_stride: int = 8) -> str:
        steps = list(range(1, self.config.steps + 1, step_stride))
        if steps[-1] != self.config.steps:
            steps.append(self.config.steps)
        series = {}
        for label in self.points:
            series[f"{label} pts"] = [
                f"{self.points[label][s - 1]:+.1f}" for s in steps
            ]
            series[f"{label} depth"] = [
                f"{self.depth[label][s - 1]:.1f}" for s in steps
            ]
        table = format_series(
            "step",
            steps,
            series,
            title=(
                "Figure 8 reproduction: hybrid CPU/GPU vs GPU-only "
                "(points vs sequential opponent; subject max tree depth)"
            ),
        )
        chart = ascii_chart(
            {k: list(v) for k, v in self.depth.items()},
            title="subject max tree depth vs game step:",
        )
        return f"{table}\n\n{chart}"


def run_fig8(config: Fig8Config | None = None) -> Fig8Result:
    cfg = config or Fig8Config.for_tier()
    game = Reversi()

    def subject(kind: str, seed: int) -> MctsPlayer:
        family = "hybrid" if kind == "GPU + CPU" else "block"
        return MctsPlayer(
            game,
            make_engine(
                f"{family}:{cfg.blocks}x{cfg.tpb}",
                game,
                seed,
                device=cfg.device,
            ),
            cfg.move_budget_s,
            name=kind,
        )

    def opponent(seed: int) -> MctsPlayer:
        return MctsPlayer(
            game, make_engine("sequential", game, seed), cfg.move_budget_s
        )

    matchups = []
    keys = []
    for kind in ("GPU", "GPU + CPU"):
        for g in range(cfg.games_per_series):
            subj = subject(kind, derive_seed(cfg.seed, kind, g, "s"))
            opp = opponent(derive_seed(cfg.seed, kind, g, "o"))
            colour = 1 if g % 2 == 0 else -1
            matchups.append((subj, opp) if colour == 1 else (opp, subj))
            keys.append((kind, colour))

    records = play_games_cohort(
        game,
        matchups,
        batch_executor("reversi", derive_seed(cfg.seed, "executor")),
    )

    out = Fig8Result(config=cfg)
    for kind in ("GPU", "GPU + CPU"):
        recs = [r for r, (k, _) in zip(records, keys) if k == kind]
        colours = [c for _, (k, c) in zip(records, keys) if k == kind]
        out.points[kind] = mean_score_series(recs, colours, cfg.steps)
        out.depth[kind] = mean_depth_series(recs, colours, cfg.steps)
    return out
