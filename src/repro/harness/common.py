"""Shared harness plumbing: scheme grids, scaling tiers, result bases.

Every experiment comes in three tiers:

* ``quick``   -- seconds; used by the pytest-benchmark targets and CI.
* ``default`` -- minutes; enough samples for the figure *shapes*.
* ``full``    -- the closest laptop-feasible approximation of the
  paper's sweep ranges (hours); documented in EXPERIMENTS.md.

The tier is chosen per-call or via the ``REPRO_TIER`` environment
variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

TIERS = ("quick", "default", "full")


def resolve_tier(tier: str | None = None) -> str:
    """Explicit argument beats ``REPRO_TIER`` beats ``default``."""
    chosen = tier or os.environ.get("REPRO_TIER", "default")
    if chosen not in TIERS:
        raise ValueError(
            f"unknown tier {chosen!r}; available: {TIERS}"
        )
    return chosen


@dataclass(frozen=True)
class Scheme:
    """A named GPU parallelisation scheme at a given block size."""

    kind: str  # "leaf" | "block"
    block_size: int

    def __post_init__(self) -> None:
        if self.kind not in ("leaf", "block"):
            raise ValueError(f"unknown scheme kind {self.kind!r}")
        if self.block_size <= 0:
            raise ValueError(
                f"block_size must be positive: {self.block_size}"
            )

    @property
    def label(self) -> str:
        return f"{self.kind}(bs={self.block_size})"

    def grid_for(self, threads: int) -> tuple[int, int]:
        """(blocks, threads_per_block) covering ``threads`` total.

        Fewer threads than one block: a single partial block, exactly
        how the paper's sweep launches its 1..16-thread points.
        """
        if threads <= 0:
            raise ValueError(f"threads must be positive: {threads}")
        if threads <= self.block_size:
            return 1, threads
        if threads % self.block_size:
            raise ValueError(
                f"{threads} threads do not divide into blocks of "
                f"{self.block_size}"
            )
        return threads // self.block_size, self.block_size


#: The three configurations the paper sweeps in Figures 5 and 6.
PAPER_SCHEMES = (
    Scheme("leaf", 64),
    Scheme("block", 32),
    Scheme("block", 128),
)

#: The paper's Figure 5/6 x-axis.
PAPER_THREAD_SWEEP = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 2048, 4096, 7168, 14336,
)

#: The paper's multi-GPU configuration (Figure 9).
PAPER_MULTIGPU_BLOCKS = 112
PAPER_MULTIGPU_TPB = 64
