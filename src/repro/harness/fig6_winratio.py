"""Figure 6: win ratio vs GPU threads, GPU player vs 1-core sequential.

Every (scheme, thread count) point plays a set of Reversi games against
the same opponent the paper uses -- sequential MCTS on one virtual CPU
core -- both sides getting the same virtual move time.  All games of
all points run in one cohort so the CPU searches batch their playouts.

The qualitative targets from the paper: win ratio grows with thread
count for every scheme; leaf parallelism saturates (~0.75 in the paper)
while block parallelism keeps improving; small blocks do better at few
threads, large blocks win at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.cohort import play_games_cohort
from repro.arena.metrics import wilson_interval
from repro.core import make_engine
from repro.core.base import batch_executor
from repro.games import Reversi
from repro.gpu import TESLA_C2050, DeviceSpec
from repro.harness.common import PAPER_SCHEMES, Scheme, resolve_tier
from repro.players import MctsPlayer
from repro.util.seeding import derive_seed
from repro.util.tables import format_series


@dataclass(frozen=True)
class Fig6Config:
    thread_counts: tuple[int, ...] = (32, 128, 512, 2048)
    schemes: tuple[Scheme, ...] = PAPER_SCHEMES
    games_per_point: int = 5
    move_budget_s: float = 0.036
    device: DeviceSpec = TESLA_C2050
    seed: int = 60_2011

    @staticmethod
    def for_tier(tier: str | None = None) -> "Fig6Config":
        tier = resolve_tier(tier)
        if tier == "quick":
            return Fig6Config(
                thread_counts=(32, 512),
                schemes=(Scheme("block", 32), Scheme("leaf", 64)),
                games_per_point=2,
                move_budget_s=0.012,
            )
        if tier == "full":
            return Fig6Config(
                thread_counts=(32, 128, 512, 1024, 2048, 4096, 7168),
                games_per_point=12,
                move_budget_s=0.096,
            )
        return Fig6Config()


@dataclass
class Fig6Result:
    config: Fig6Config
    #: scheme label -> win ratios aligned with thread_counts.
    win_ratio: dict[str, list[float]] = field(default_factory=dict)
    #: scheme label -> (lo, hi) Wilson 95% intervals per point.
    intervals: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        series = {}
        for label, ratios in self.win_ratio.items():
            cells = []
            for ratio, (lo, hi) in zip(ratios, self.intervals[label]):
                cells.append(f"{ratio:.2f} [{lo:.2f},{hi:.2f}]")
            series[label] = cells
        return format_series(
            "threads",
            list(self.config.thread_counts),
            series,
            title=(
                "Figure 6 reproduction: win ratio vs 1-core sequential "
                f"MCTS ({self.config.games_per_point} games/point, "
                f"{self.config.move_budget_s * 1e3:.0f} ms/move virtual)"
            ),
        )


def _gpu_player(
    scheme: Scheme, threads: int, seed: int, cfg: Fig6Config
) -> MctsPlayer:
    game = Reversi()
    blocks, tpb = scheme.grid_for(threads)
    engine = make_engine(
        f"{scheme.kind}:{blocks}x{tpb}", game, seed, device=cfg.device
    )
    return MctsPlayer(game, engine, cfg.move_budget_s, name=scheme.label)


def _cpu_player(seed: int, cfg: Fig6Config) -> MctsPlayer:
    game = Reversi()
    return MctsPlayer(
        game,
        make_engine("sequential", game, seed),
        cfg.move_budget_s,
        name="cpu-1",
    )


def run_fig6(config: Fig6Config | None = None) -> Fig6Result:
    cfg = config or Fig6Config.for_tier()
    game = Reversi()

    matchups = []
    keys = []  # (scheme label, threads, subject colour)
    for scheme in cfg.schemes:
        for threads in cfg.thread_counts:
            for g in range(cfg.games_per_point):
                seed_g = derive_seed(
                    cfg.seed, scheme.label, threads, g, "gpu"
                )
                seed_c = derive_seed(
                    cfg.seed, scheme.label, threads, g, "cpu"
                )
                gpu = _gpu_player(scheme, threads, seed_g, cfg)
                cpu = _cpu_player(seed_c, cfg)
                colour = 1 if g % 2 == 0 else -1
                if colour == 1:
                    matchups.append((gpu, cpu))
                else:
                    matchups.append((cpu, gpu))
                keys.append((scheme.label, threads, colour))

    records = play_games_cohort(
        game,
        matchups,
        batch_executor("reversi", derive_seed(cfg.seed, "executor")),
    )

    out = Fig6Result(config=cfg)
    for scheme in cfg.schemes:
        ratios, cis = [], []
        for threads in cfg.thread_counts:
            score = 0.0
            n = 0
            for rec, (label, t, colour) in zip(records, keys):
                if label != scheme.label or t != threads:
                    continue
                outcome = rec.winner * colour
                score += 1.0 if outcome > 0 else 0.5 if outcome == 0 else 0.0
                n += 1
            ratios.append(score / n)
            cis.append(wilson_interval(score, n))
        out.win_ratio[scheme.label] = ratios
        out.intervals[scheme.label] = cis
    return out
