"""Merged scheduling primitives: generator pool + lane batcher.

Two layers, both reused outside the service:

* :class:`GeneratorPool` steps many ``search_steps`` generators in
  merged rounds -- the arena's cohort driver
  (:func:`repro.arena.cohort.drive_merged`) is now a thin wrapper over
  :func:`drive_generators`, and the service advances the pool one
  round per scheduler tick.
* :class:`LaneBatcher` converts one tick's merged playout demand (all
  outstanding leaf states, one lane per leaf, grouped per game) into
  wide vectorised kernel launches placed on a shared
  :class:`~repro.gpu.lease.DevicePool`, and returns the per-lane
  ``(winner, plies)`` results along with the leases to synchronise on.

Results are deterministic: lane RNG streams derive from the batcher
seed and a global launch counter, and placement follows insertion
order, so the same submitted workload always produces the same
per-request search results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.base import PlayoutBatch, PlayoutResults
from repro.games import make_batch_game
from repro.games.batch import run_playouts_tracked
from repro.gpu.kernel import LaunchConfig, playout_kernel_spec
from repro.gpu.lease import DeviceLease, DevicePool
from repro.gpu.timing import kernel_time
from repro.faults import KIND_CORRUPT_RESULT
from repro.integrity import IntegrityState
from repro.rng import BatchXorShift128Plus
from repro.serve.resilience import LaunchOutcome, ResilientLauncher
from repro.util.seeding import derive_seed

import numpy as np


class GeneratorPool:
    """A set of keyed ``search_steps`` generators advanced in merged
    rounds.

    ``add`` primes each generator to its first playout request; each
    round, callers gather ``requests_for`` every pending key, execute
    the merged batch however they like, and ``step`` each key with its
    slice of answers.  Finished searches land in :attr:`results`.
    """

    def __init__(self) -> None:
        self._gens: dict[Hashable, object] = {}
        self._requests: dict[Hashable, list] = {}
        self.results: dict[Hashable, object] = {}

    def add(self, key: Hashable, gen) -> bool:
        """Prime ``gen``; returns False if it finished immediately."""
        if key in self._gens or key in self.results:
            raise ValueError(f"duplicate generator key: {key!r}")
        try:
            self._requests[key] = list(next(gen))
        except StopIteration as stop:
            self.results[key] = stop.value
            return False
        self._gens[key] = gen
        return True

    @property
    def pending(self) -> tuple[Hashable, ...]:
        """Keys still searching, in insertion order."""
        return tuple(self._gens)

    def __len__(self) -> int:
        return len(self._gens)

    def requests_for(self, key: Hashable) -> list:
        return self._requests[key]

    def step(self, key: Hashable, answers: PlayoutResults) -> bool:
        """Deliver one round of answers; returns True if finished."""
        gen = self._gens[key]
        try:
            self._requests[key] = list(gen.send(answers))
        except StopIteration as stop:
            self.results[key] = stop.value
            del self._gens[key]
            del self._requests[key]
            return True
        return False

    def cancel(self, key: Hashable) -> None:
        """Abandon a search (deadline miss); no result is recorded."""
        gen = self._gens.pop(key)
        self._requests.pop(key)
        gen.close()


def drive_generators(
    generators: Mapping[Hashable, object],
    executor: Callable[[PlayoutBatch], PlayoutResults],
) -> dict[Hashable, object]:
    """Drive several search generators to completion, merging their
    playout requests into shared executor calls.  Returns each key's
    ``SearchResult``."""
    pool = GeneratorPool()
    for key, gen in generators.items():
        pool.add(key, gen)
    while pool.pending:
        keys = pool.pending
        flat: list = []
        offsets: dict[Hashable, tuple[int, int]] = {}
        for key in keys:
            start = len(flat)
            flat.extend(pool.requests_for(key))
            offsets[key] = (start, len(flat))
        answers = executor(flat) if flat else []
        for key in keys:
            lo, hi = offsets[key]
            pool.step(key, answers[lo:hi])
    return dict(pool.results)


# ---------------------------------------------------------------------------
# Lane batching: merged playout demand -> wide kernel launches
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LaunchRecord:
    """One merged kernel this tick: where it ran and what it cost."""

    game: str
    lanes: int
    #: The successful placement; None when the launch chain was lost
    #: (resilient path only -- its lanes' results were dropped).
    lease: DeviceLease | None
    #: Full retry-chain outcome (resilient path only).
    outcome: LaunchOutcome | None = None
    #: Lane span ``[lo, hi)`` of the merged per-game batch this launch
    #: covered.
    lo: int = 0
    hi: int = 0

    @property
    def delivered(self) -> bool:
        return self.lease is not None

    @property
    def ready_s(self) -> float:
        """When the host has (or gives up on) this launch's results."""
        if self.outcome is not None:
            return self.outcome.ready_s
        return self.lease.end_s


def launch_config_for(lanes: int, warp_size: int = 32) -> LaunchConfig:
    """The grid a merged launch of ``lanes`` one-playout lanes uses:
    warp-aligned blocks of at most 128 threads (the paper's sweet spot
    for block width), as many blocks as needed."""
    if lanes <= 0:
        raise ValueError(f"lanes must be positive: {lanes}")
    tpb = min(128, -(-lanes // warp_size) * warp_size)
    blocks = -(-lanes // tpb)
    return LaunchConfig(blocks=blocks, threads_per_block=tpb)


class LaneBatcher:
    """Executes merged per-game playout batches on a device pool.

    One instance per service run: it owns the batch-game caches, the
    launch counter that seeds each launch's RNG lanes, and the policy
    for splitting very wide batches across devices.
    """

    #: Below this many lanes a batch is never split across devices
    #: (launch latency would dominate the win).
    MIN_LANES_PER_DEVICE = 64

    def __init__(
        self,
        pool: DevicePool,
        seed: int,
        launcher: ResilientLauncher | None = None,
        integrity: IntegrityState | None = None,
    ) -> None:
        self.pool = pool
        self.seed = derive_seed(seed, "lane_batcher")
        self.launcher = launcher
        #: Host-boundary result screening for merged launches.  When
        #: set (the service attaches one per run under fault
        #: injection), every delivered readback is corrupted per the
        #: injector's decision and validated; rejects retry through the
        #: resilient launcher.  Requires ``launcher``.
        self.integrity = integrity
        self.launch_count = 0
        self.lanes_total = 0
        #: Lanes whose launch chain exhausted its retries (results
        #: dropped, requests degraded).
        self.lost_lanes = 0
        self._batch_games: dict[str, object] = {}

    def _batch_game(self, game: str):
        bg = self._batch_games.get(game)
        if bg is None:
            bg = make_batch_game(game)
            self._batch_games[game] = bg
        return bg

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        """Contiguous (lo, hi) lane spans, one per launch."""
        per_device = max(self.MIN_LANES_PER_DEVICE, -(-n // len(self.pool)))
        spans = []
        lo = 0
        while lo < n:
            hi = min(n, lo + per_device)
            spans.append((lo, hi))
            lo = hi
        return spans

    def _duration_for(self, game: str, tracked, lanes: int):
        """Closure mapping a device spec to this chunk's modelled
        kernel time there (re-placement may land on any device)."""
        kernel = playout_kernel_spec(game)

        def duration(spec) -> float:
            config = launch_config_for(lanes, spec.warp_size)
            padded = np.zeros(config.total_threads, dtype=np.int64)
            padded[:lanes] = tracked.finish_steps
            block_steps = padded.reshape(
                config.blocks, config.threads_per_block
            ).max(axis=1)
            return kernel_time(
                spec,
                kernel,
                config,
                block_steps,
                transfer_bytes=4 * lanes,
            ).total_s

        return duration

    def _make_screen(self, chunk_answers):
        """Build the host-boundary validation closure for one chunk.

        Each call to the closure models one readback of the chunk's
        results: the injector decides whether *this* delivery is
        corrupted (fresh draw per attempt), the integrity state applies
        and validates it, and an accepted batch -- clean or carrying an
        escaped corruption -- lands in the returned cell for the caller
        to adopt.  Returns ``(None, None)`` when no integrity state is
        attached, so fault-free service runs stay draw-for-draw
        identical.
        """
        guard = self.integrity
        if guard is None:
            return None, None
        cell: dict = {}

        def screen() -> bool:
            screened, ok = guard.screen_answers(chunk_answers)
            if ok:
                cell["answers"] = screened
            return ok

        return screen, cell

    def execute(
        self, game: str, states: Sequence, holder: str = "merged"
    ) -> tuple[PlayoutResults, list[LaunchRecord]]:
        """Run one game's merged lane batch; one playout per state.

        Returns per-lane ``(winner, plies)`` aligned with ``states``
        and the launch records (wait on their ``ready_s`` / leases to
        charge the kernel time to the clock).  A chunk whose resilient
        launch chain was lost yields neutral ``(0, 0)`` answers for its
        lanes -- the dropped-playout-batch degradation contract.
        """
        if not states:
            return [], []
        bg = self._batch_game(game)
        answers: list[tuple[int, int]] = []
        records: list[LaunchRecord] = []
        for lo, hi in self._chunks(len(states)):
            chunk = list(states[lo:hi])
            lanes = len(chunk)
            self.launch_count += 1
            self.lanes_total += lanes
            rng = BatchXorShift128Plus(
                lanes, derive_seed(self.seed, game, self.launch_count)
            )
            batch = bg.make_batch(chunk, 1)
            tracked = run_playouts_tracked(bg, batch, rng)
            chunk_answers = list(
                zip(
                    (int(w) for w in tracked.winners),
                    (int(p) for p in tracked.finish_steps),
                )
            )
            duration_for = self._duration_for(game, tracked, lanes)
            if self.launcher is not None:
                screen, cell = self._make_screen(chunk_answers)
                outcome = self.launcher.launch(
                    holder,
                    duration_for,
                    label=f"{game}_playouts",
                    screen=screen,
                    lanes=lanes,
                    game=game,
                )
                if not outcome.delivered:
                    chunk_answers = [(0, 0)] * lanes
                    self.lost_lanes += lanes
                    if (
                        self.integrity is not None
                        and outcome.attempts
                        and outcome.attempts[-1].fault
                        == KIND_CORRUPT_RESULT
                    ):
                        # The chain died rejecting corrupt readbacks,
                        # not launching -- that is a dropped batch in
                        # the integrity accounting.
                        self.integrity.give_up()
                elif cell is not None:
                    # The accepted readback (possibly carrying an
                    # escaped corruption) is whatever the last screen
                    # call stored.
                    chunk_answers = cell["answers"]
                records.append(
                    LaunchRecord(
                        game=game,
                        lanes=lanes,
                        lease=outcome.lease,
                        outcome=outcome,
                        lo=lo,
                        hi=hi,
                    )
                )
            else:
                device_id = self.pool.least_busy()
                lease = self.pool.launch(
                    holder,
                    duration_for(self.pool.spec_of(device_id)),
                    device_id=device_id,
                    label=f"{game}_playouts",
                    lanes=lanes,
                    game=game,
                )
                records.append(
                    LaunchRecord(
                        game=game, lanes=lanes, lease=lease, lo=lo, hi=hi
                    )
                )
            answers.extend(chunk_answers)
        return answers, records

    @property
    def mean_lanes_per_launch(self) -> float:
        if self.launch_count == 0:
            return 0.0
        return self.lanes_total / self.launch_count
