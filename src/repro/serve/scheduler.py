"""Merged scheduling primitives: generator pool + lane batcher.

Two layers, both reused outside the service:

* :class:`GeneratorPool` steps many ``search_steps`` generators in
  merged rounds -- the arena's cohort driver
  (:func:`repro.arena.cohort.drive_merged`) is now a thin wrapper over
  :func:`drive_generators`, and the service advances the pool one
  round per scheduler tick.
* :class:`LaneBatcher` converts one tick's merged playout demand (all
  outstanding leaf states, one lane per leaf, grouped per game) into
  wide vectorised kernel launches placed on a shared
  :class:`~repro.gpu.lease.DevicePool`, and returns the per-lane
  ``(winner, plies)`` results along with the leases to synchronise on.

Results are deterministic *and geometry-independent*: lane ``i`` of
game ``g``'s merged demand on that game's round ``r`` always draws
from stream ``i`` of the ``derive_seed(batcher_seed, g, r)`` family,
no matter how the batch was chunked across devices or fused with other
games' lanes.  The same submitted workload therefore produces the same
per-request search results under every launch geometry -- the property
the fused-vs-unfused identity tests pin.

:class:`FusedBatcher` is the cross-tenant fusion variant: instead of
one launch per game per tick it packs every game's lane demand into a
single power-of-two-padded virtual megakernel, paying the launch and
readback latencies once per tick instead of once per game.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.base import PlayoutBatch, PlayoutResults
from repro.core.executors import tracked_runner
from repro.games import make_batch_game
from repro.gpu.kernel import (
    KernelSpec,
    LaunchConfig,
    playout_kernel_spec,
)
from repro.gpu.lease import DeviceLease, DevicePool
from repro.gpu.timing import kernel_time
from repro.faults import KIND_CORRUPT_RESULT
from repro.integrity import IntegrityState
from repro.rng import BatchXorShift128Plus
from repro.serve.resilience import LaunchOutcome, ResilientLauncher
from repro.util.seeding import derive_seed

import numpy as np


class GeneratorPool:
    """A set of keyed ``search_steps`` generators advanced in merged
    rounds.

    ``add`` primes each generator to its first playout request; each
    round, callers gather ``requests_for`` every pending key, execute
    the merged batch however they like, and ``step`` each key with its
    slice of answers.  Finished searches land in :attr:`results`.
    """

    def __init__(self) -> None:
        self._gens: dict[Hashable, object] = {}
        self._requests: dict[Hashable, list] = {}
        self.results: dict[Hashable, object] = {}

    def add(self, key: Hashable, gen) -> bool:
        """Prime ``gen``; returns False if it finished immediately."""
        if key in self._gens or key in self.results:
            raise ValueError(f"duplicate generator key: {key!r}")
        try:
            self._requests[key] = list(next(gen))
        except StopIteration as stop:
            self.results[key] = stop.value
            return False
        self._gens[key] = gen
        return True

    @property
    def pending(self) -> tuple[Hashable, ...]:
        """Keys still searching, in insertion order."""
        return tuple(self._gens)

    def __len__(self) -> int:
        return len(self._gens)

    def requests_for(self, key: Hashable) -> list:
        return self._requests[key]

    def step(self, key: Hashable, answers: PlayoutResults) -> bool:
        """Deliver one round of answers; returns True if finished."""
        gen = self._gens[key]
        try:
            self._requests[key] = list(gen.send(answers))
        except StopIteration as stop:
            self.results[key] = stop.value
            del self._gens[key]
            del self._requests[key]
            return True
        return False

    def cancel(self, key: Hashable) -> None:
        """Abandon a search (deadline miss); no result is recorded."""
        gen = self._gens.pop(key)
        self._requests.pop(key)
        gen.close()


def drive_generators(
    generators: Mapping[Hashable, object],
    executor: Callable[[PlayoutBatch], PlayoutResults],
) -> dict[Hashable, object]:
    """Drive several search generators to completion, merging their
    playout requests into shared executor calls.  Returns each key's
    ``SearchResult``."""
    pool = GeneratorPool()
    for key, gen in generators.items():
        pool.add(key, gen)
    while pool.pending:
        keys = pool.pending
        flat: list = []
        offsets: dict[Hashable, tuple[int, int]] = {}
        for key in keys:
            start = len(flat)
            flat.extend(pool.requests_for(key))
            offsets[key] = (start, len(flat))
        answers = executor(flat) if flat else []
        for key in keys:
            lo, hi = offsets[key]
            pool.step(key, answers[lo:hi])
    return dict(pool.results)


# ---------------------------------------------------------------------------
# Lane batching: merged playout demand -> wide kernel launches
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LaunchRecord:
    """One merged kernel this tick: where it ran and what it cost."""

    game: str
    lanes: int
    #: The successful placement; None when the launch chain was lost
    #: (resilient path only -- its lanes' results were dropped).
    lease: DeviceLease | None
    #: Full retry-chain outcome (resilient path only).
    outcome: LaunchOutcome | None = None
    #: Lane span ``[lo, hi)`` of the merged per-game batch this launch
    #: covered.
    lo: int = 0
    hi: int = 0
    #: Fused launches cover several per-game spans at once; each entry
    #: is ``(game, lo, hi)`` into that game's merged batch.  Empty for
    #: ordinary single-game launches (use ``game``/``lo``/``hi``).
    segments: tuple[tuple[str, int, int], ...] = field(
        default_factory=tuple
    )

    def spans(self) -> tuple[tuple[str, int, int], ...]:
        """Every ``(game, lo, hi)`` span this launch covered."""
        if self.segments:
            return self.segments
        return ((self.game, self.lo, self.hi),)

    @property
    def delivered(self) -> bool:
        return self.lease is not None

    @property
    def ready_s(self) -> float:
        """When the host has (or gives up on) this launch's results."""
        if self.outcome is not None:
            return self.outcome.ready_s
        return self.lease.end_s


def launch_config_for(lanes: int, warp_size: int = 32) -> LaunchConfig:
    """The grid a merged launch of ``lanes`` one-playout lanes uses:
    warp-aligned blocks of at most 128 threads (the paper's sweet spot
    for block width), as many blocks as needed."""
    if lanes <= 0:
        raise ValueError(f"lanes must be positive: {lanes}")
    tpb = min(128, -(-lanes // warp_size) * warp_size)
    blocks = -(-lanes // tpb)
    return LaunchConfig(blocks=blocks, threads_per_block=tpb)


class LaneBatcher:
    """Executes merged per-game playout batches on a device pool.

    One instance per service run: it owns the batch-game caches, the
    per-game round counters that seed each round's lane RNG family,
    and the policy for splitting very wide batches across devices.
    """

    #: Below this many lanes a batch is never split across devices
    #: (launch latency would dominate the win).
    MIN_LANES_PER_DEVICE = 64

    def __init__(
        self,
        pool: DevicePool,
        seed: int,
        launcher: ResilientLauncher | None = None,
        integrity: IntegrityState | None = None,
        playout: str = "numpy",
    ) -> None:
        self.pool = pool
        self.seed = derive_seed(seed, "lane_batcher")
        self.launcher = launcher
        #: Host-boundary result screening for merged launches.  When
        #: set (the service attaches one per run under fault
        #: injection), every delivered readback is corrupted per the
        #: injector's decision and validated; rejects retry through the
        #: resilient launcher.  Requires ``launcher``.
        self.integrity = integrity
        #: Playout executor ("numpy" or "compiled") running the merged
        #: batches; bit-identical by contract, so this never changes
        #: which results tenants see.
        self.playout = playout
        self._run_tracked = tracked_runner(playout)
        self.launch_count = 0
        self.lanes_total = 0
        #: Lanes whose launch chain exhausted its retries (results
        #: dropped, requests degraded).
        self.lost_lanes = 0
        #: Fusion accounting (only the FusedBatcher advances these;
        #: they live on the base so reporting is uniform).
        self.fused_launches = 0
        self.pad_lanes = 0
        self.tenant_slices = 0
        #: Per-game round counters: round ``r`` of game ``g`` seeds the
        #: lane stream family ``derive_seed(seed, g, r)``, independent
        #: of how many launches (or which fusion geometry) served it.
        self._rounds: dict[str, int] = {}
        self._batch_games: dict[str, object] = {}
        #: Reusable pad scratch for block-step padding (grown
        #: geometrically, never re-allocated per launch).
        self._steps_scratch = np.zeros(0, dtype=np.int64)

    def _batch_game(self, game: str):
        bg = self._batch_games.get(game)
        if bg is None:
            bg = make_batch_game(game)
            self._batch_games[game] = bg
        return bg

    def _round_seed(self, game: str) -> int:
        """Advance ``game``'s round counter and derive the round's lane
        stream family seed."""
        r = self._rounds.get(game, 0) + 1
        self._rounds[game] = r
        return derive_seed(self.seed, game, r)

    def _scratch(self, total: int) -> np.ndarray:
        """A reusable int64 scratch view of length ``total`` (contents
        undefined; callers overwrite every entry)."""
        if self._steps_scratch.shape[0] < total:
            self._steps_scratch = np.zeros(
                max(total, 2 * self._steps_scratch.shape[0]),
                dtype=np.int64,
            )
        return self._steps_scratch[:total]

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        """Contiguous (lo, hi) lane spans, one per launch."""
        per_device = max(self.MIN_LANES_PER_DEVICE, -(-n // len(self.pool)))
        spans = []
        lo = 0
        while lo < n:
            hi = min(n, lo + per_device)
            spans.append((lo, hi))
            lo = hi
        return spans

    def _duration_for(self, game: str, tracked, lanes: int):
        """Closure mapping a device spec to this chunk's modelled
        kernel time there (re-placement may land on any device)."""
        kernel = playout_kernel_spec(game)

        def duration(spec) -> float:
            config = launch_config_for(lanes, spec.warp_size)
            padded = self._scratch(config.total_threads)
            padded[:lanes] = tracked.finish_steps
            padded[lanes:] = 0
            block_steps = padded.reshape(
                config.blocks, config.threads_per_block
            ).max(axis=1)
            return kernel_time(
                spec,
                kernel,
                config,
                block_steps,
                transfer_bytes=4 * lanes,
            ).total_s

        return duration

    def _make_screen(self, chunk_answers):
        """Build the host-boundary validation closure for one chunk.

        Each call to the closure models one readback of the chunk's
        results: the injector decides whether *this* delivery is
        corrupted (fresh draw per attempt), the integrity state applies
        and validates it, and an accepted batch -- clean or carrying an
        escaped corruption -- lands in the returned cell for the caller
        to adopt.  Returns ``(None, None)`` when no integrity state is
        attached, so fault-free service runs stay draw-for-draw
        identical.
        """
        guard = self.integrity
        if guard is None:
            return None, None
        cell: dict = {}

        def screen() -> bool:
            screened, ok = guard.screen_answers(chunk_answers)
            if ok:
                cell["answers"] = screened
            return ok

        return screen, cell

    def execute(
        self, game: str, states: Sequence, holder: str = "merged"
    ) -> tuple[PlayoutResults, list[LaunchRecord]]:
        """Run one game's merged lane batch; one playout per state.

        Returns per-lane ``(winner, plies)`` aligned with ``states``
        and the launch records (wait on their ``ready_s`` / leases to
        charge the kernel time to the clock).  A chunk whose resilient
        launch chain was lost yields neutral ``(0, 0)`` answers for its
        lanes -- the dropped-playout-batch degradation contract.
        """
        if not states:
            return [], []
        bg = self._batch_game(game)
        round_seed = self._round_seed(game)
        answers: list[tuple[int, int]] = []
        records: list[LaunchRecord] = []
        for lo, hi in self._chunks(len(states)):
            chunk = list(states[lo:hi])
            lanes = len(chunk)
            self.launch_count += 1
            self.lanes_total += lanes
            # Geometry-independent streams: chunk lane j is merged lane
            # lo + j, and always gets that lane's stream of this
            # round's family regardless of the chunking.
            rng = BatchXorShift128Plus.for_lanes(round_seed, lo, hi)
            batch = bg.make_batch(chunk, 1)
            tracked = self._run_tracked(bg, batch, rng)
            chunk_answers = list(
                zip(
                    (int(w) for w in tracked.winners),
                    (int(p) for p in tracked.finish_steps),
                )
            )
            duration_for = self._duration_for(game, tracked, lanes)
            if self.launcher is not None:
                screen, cell = self._make_screen(chunk_answers)
                outcome = self.launcher.launch(
                    holder,
                    duration_for,
                    label=f"{game}_playouts",
                    screen=screen,
                    lanes=lanes,
                    game=game,
                )
                if not outcome.delivered:
                    chunk_answers = [(0, 0)] * lanes
                    self.lost_lanes += lanes
                    if (
                        self.integrity is not None
                        and outcome.attempts
                        and outcome.attempts[-1].fault
                        == KIND_CORRUPT_RESULT
                    ):
                        # The chain died rejecting corrupt readbacks,
                        # not launching -- that is a dropped batch in
                        # the integrity accounting.
                        self.integrity.give_up()
                elif cell is not None:
                    # The accepted readback (possibly carrying an
                    # escaped corruption) is whatever the last screen
                    # call stored.
                    chunk_answers = cell["answers"]
                records.append(
                    LaunchRecord(
                        game=game,
                        lanes=lanes,
                        lease=outcome.lease,
                        outcome=outcome,
                        lo=lo,
                        hi=hi,
                    )
                )
            else:
                device_id = self.pool.least_busy()
                lease = self.pool.launch(
                    holder,
                    duration_for(self.pool.spec_of(device_id)),
                    device_id=device_id,
                    label=f"{game}_playouts",
                    lanes=lanes,
                    game=game,
                )
                records.append(
                    LaunchRecord(
                        game=game, lanes=lanes, lease=lease, lo=lo, hi=hi
                    )
                )
            answers.extend(chunk_answers)
        return answers, records

    def execute_demand(
        self,
        demand: Mapping[str, Sequence],
        spans: Mapping[Hashable, tuple[str, int, int]] | None = None,
        holder: str = "merged",
    ) -> tuple[dict[str, PlayoutResults], list[LaunchRecord]]:
        """Run one tick's full merged demand (game -> states).

        Returns per-game answer lists (aligned with each game's
        states) and all launch records issued.  ``spans`` maps tenant
        keys to their ``(game, lo, hi)`` slice of the merged per-game
        batches; the base batcher ignores it (it exists for interface
        parity with :meth:`FusedBatcher.execute_demand`, which screens
        and accounts per tenant).
        """
        answers_by_game: dict[str, PlayoutResults] = {}
        records: list[LaunchRecord] = []
        for game, states in demand.items():
            answers, launches = self.execute(game, states, holder)
            answers_by_game[game] = answers
            records.extend(launches)
        return answers_by_game, records

    def tick_floor_s(self) -> float:
        """The cheapest possible merged tick on this pool: one launch
        plus one readback with zero compute.  Fusion-aware admission
        uses this as the lower bound no request can finish under."""
        return min(
            self.pool.spec_of(d).kernel_launch_latency_s
            + self.pool.spec_of(d).transfer_latency_s
            for d in range(len(self.pool))
        )

    @property
    def mean_lanes_per_launch(self) -> float:
        if self.launch_count == 0:
            return 0.0
        return self.lanes_total / self.launch_count

    @property
    def mean_tenants_per_launch(self) -> float:
        """Mean distinct tenant slices sharing one fused launch."""
        if self.fused_launches == 0:
            return 0.0
        return self.tenant_slices / self.fused_launches


def _next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (n >= 1)."""
    return 1 << (n - 1).bit_length()


def fused_kernel_spec(games: Sequence[str]) -> KernelSpec:
    """Conservative kernel spec for a fused cross-game megakernel.

    A fused launch runs every game's playout loop in one grid, so its
    per-step cost, dependent-latency floor and per-thread resources
    are the worst case over the fused games -- the occupancy and
    timing model then never underestimate the fused kernel.
    """
    specs = [playout_kernel_spec(g) for g in dict.fromkeys(games)]
    if len(specs) == 1:
        return specs[0]
    return KernelSpec(
        name="fused_playout",
        cycles_per_step=max(s.cycles_per_step for s in specs),
        latency_cycles_per_step=max(
            s.latency_cycles_per_step for s in specs
        ),
        registers_per_thread=max(
            s.registers_per_thread for s in specs
        ),
        shared_mem_per_block=max(
            s.shared_mem_per_block for s in specs
        ),
        divergence_overhead=max(
            s.divergence_overhead for s in specs
        ),
    )


class FusedBatcher(LaneBatcher):
    """Cross-tenant kernel fusion: one padded megakernel per tick.

    Packs every game's merged lane demand into a single virtual launch
    per tick: per-game block-aligned segments are concatenated and the
    grid is padded up to a power-of-two thread count (pad blocks carry
    zero steps, so they cost no compute -- only the wasted lanes the
    fusion metrics report).  The kernel-launch and readback latencies
    are paid once per tick instead of once per game, which is where
    the p50 win at high tenant counts comes from.

    The identity contract of :class:`LaneBatcher` is preserved
    exactly: lane ``i`` of game ``g``'s merged demand draws from the
    same per-(game, round) stream family under fusion as without it,
    so per-request results are bit-identical fused vs unfused.
    """

    #: Uniform block width of a fused launch (the paper's block-size
    #: sweet spot; keeps pad granularity and occupancy predictable).
    FUSED_TPB = 128

    def __init__(
        self,
        pool: DevicePool,
        seed: int,
        launcher: ResilientLauncher | None = None,
        integrity: IntegrityState | None = None,
        playout: str = "numpy",
        max_fused_lanes: int = 1 << 16,
    ) -> None:
        super().__init__(
            pool,
            seed,
            launcher=launcher,
            integrity=integrity,
            playout=playout,
        )
        if max_fused_lanes < self.FUSED_TPB:
            raise ValueError(
                f"max_fused_lanes must be at least {self.FUSED_TPB}: "
                f"{max_fused_lanes}"
            )
        #: Real-lane capacity of one fused launch; wider demand rolls
        #: over into additional fused launches.
        self.max_fused_lanes = max_fused_lanes

    # -- packing -----------------------------------------------------------

    def _segments(
        self, lane_counts: Mapping[str, int]
    ) -> list[list[tuple[str, int, int]]]:
        """Group per-game lane demand into fused launch groups.

        Each game is cut into block-capacity pieces, then pieces are
        packed greedily (in game insertion order) into groups of at
        most ``max_fused_lanes`` real lanes -- one group per fused
        launch.
        """
        cap = (self.max_fused_lanes // self.FUSED_TPB) * self.FUSED_TPB
        pieces: list[tuple[str, int, int]] = []
        for game, n in lane_counts.items():
            lo = 0
            while lo < n:
                hi = min(n, lo + cap)
                pieces.append((game, lo, hi))
                lo = hi
        groups: list[list[tuple[str, int, int]]] = []
        current: list[tuple[str, int, int]] = []
        current_lanes = 0
        for piece in pieces:
            lanes = piece[2] - piece[1]
            if current and current_lanes + lanes > self.max_fused_lanes:
                groups.append(current)
                current = []
                current_lanes = 0
            current.append(piece)
            current_lanes += lanes
        if current:
            groups.append(current)
        return groups

    def _group_geometry(
        self, segments: list[tuple[str, int, int]]
    ) -> tuple[int, int, int]:
        """``(real_blocks, padded_blocks, real_lanes)`` of one group:
        each segment occupies whole blocks, and the block count is
        padded to the next power of two."""
        tpb = self.FUSED_TPB
        real_blocks = sum(
            -(-(hi - lo) // tpb) for _, lo, hi in segments
        )
        real_lanes = sum(hi - lo for _, lo, hi in segments)
        return real_blocks, _next_pow2(real_blocks), real_lanes

    def _fused_duration(
        self,
        segments: list[tuple[str, int, int]],
        tracked_by_game: Mapping[str, object],
    ):
        """Closure mapping a device spec to the fused launch's modelled
        kernel time (re-placement may land on any pooled device)."""
        kernel = fused_kernel_spec([g for g, _, _ in segments])
        tpb = self.FUSED_TPB
        real_blocks, padded_blocks, real_lanes = self._group_geometry(
            segments
        )

        def duration(spec) -> float:
            config = LaunchConfig(
                blocks=padded_blocks, threads_per_block=tpb
            )
            steps = self._scratch(config.total_threads)
            steps[:] = 0
            offset = 0
            for game, lo, hi in segments:
                lanes = hi - lo
                steps[offset : offset + lanes] = tracked_by_game[
                    game
                ].finish_steps[lo:hi]
                offset += -(-lanes // tpb) * tpb
            block_steps = steps.reshape(padded_blocks, tpb).max(axis=1)
            return kernel_time(
                spec,
                kernel,
                config,
                block_steps,
                transfer_bytes=4 * real_lanes,
            ).total_s

        return duration

    # -- tenant-sliced integrity screening ---------------------------------

    def _tenant_slices(
        self,
        segments: list[tuple[str, int, int]],
        spans: Mapping[Hashable, tuple[str, int, int]] | None,
    ) -> list[tuple[str, int, int]]:
        """The per-tenant ``(game, lo, hi)`` slices of one fused
        launch's readback, in tenant submission order.

        Each tenant whose lanes fall inside the launch gets exactly
        one slice per launch -- the unit the integrity screen
        validates.  Without tenant spans (direct batcher use) each
        whole segment is one slice.
        """
        if spans is None:
            return list(segments)
        slices = []
        for game, lo, hi in spans.values():
            overlap = [
                (game, max(lo, slo), min(hi, shi))
                for sgame, slo, shi in segments
                if sgame == game and min(hi, shi) > max(lo, slo)
            ]
            if overlap:
                olo = min(o[1] for o in overlap)
                ohi = max(o[2] for o in overlap)
                slices.append((game, olo, ohi))
        return slices

    def _make_fused_screen(self, tenant_slices, answers_by_game):
        """Host-boundary validation for one fused readback: every
        tenant's slice is screened exactly once per delivery attempt,
        and the delivery is accepted only if every slice validates.
        Returns ``(None, None)`` with no integrity state attached."""
        guard = self.integrity
        if guard is None:
            return None, None
        cell: dict = {}

        def screen() -> bool:
            parts = []
            ok_all = True
            for game, lo, hi in tenant_slices:
                part = answers_by_game[game][lo:hi]
                screened, ok = guard.screen_answers(part)
                parts.append((game, lo, hi, screened))
                ok_all = ok_all and ok
            if ok_all:
                cell["parts"] = parts
            return ok_all

        return screen, cell

    # -- execution ---------------------------------------------------------

    def execute_demand(
        self,
        demand: Mapping[str, Sequence],
        spans: Mapping[Hashable, tuple[str, int, int]] | None = None,
        holder: str = "merged",
    ) -> tuple[dict[str, PlayoutResults], list[LaunchRecord]]:
        """Run one tick's full merged demand as fused launches.

        The playouts themselves run per game (the vectorised batch
        games share no state layout), with the identical per-(game,
        round) lane streams the unfused path uses; what fuses is the
        *launch*: all games' lanes ride one padded grid whose launch
        and readback latencies are paid once.
        """
        demand = {g: s for g, s in demand.items() if s}
        if not demand:
            return {}, []
        answers_by_game: dict[str, list] = {}
        tracked_by_game: dict[str, object] = {}
        for game, states in demand.items():
            bg = self._batch_game(game)
            round_seed = self._round_seed(game)
            rng = BatchXorShift128Plus.for_lanes(
                round_seed, 0, len(states)
            )
            batch = bg.make_batch(list(states), 1)
            tracked = self._run_tracked(bg, batch, rng)
            tracked_by_game[game] = tracked
            answers_by_game[game] = list(
                zip(
                    (int(w) for w in tracked.winners),
                    (int(p) for p in tracked.finish_steps),
                )
            )

        records: list[LaunchRecord] = []
        lane_counts = {g: len(s) for g, s in demand.items()}
        for segments in self._segments(lane_counts):
            _, padded_blocks, real_lanes = self._group_geometry(
                segments
            )
            self.launch_count += 1
            self.fused_launches += 1
            self.lanes_total += real_lanes
            self.pad_lanes += padded_blocks * self.FUSED_TPB - real_lanes
            tenant_slices = self._tenant_slices(segments, spans)
            self.tenant_slices += len(tenant_slices)
            duration_for = self._fused_duration(
                segments, tracked_by_game
            )
            games_label = "+".join(dict.fromkeys(g for g, _, _ in segments))
            if self.launcher is not None:
                screen, cell = self._make_fused_screen(
                    tenant_slices, answers_by_game
                )
                outcome = self.launcher.launch(
                    holder,
                    duration_for,
                    label=f"fused_{games_label}_playouts",
                    screen=screen,
                    lanes=real_lanes,
                    game=games_label,
                    fused_tenants=len(tenant_slices),
                )
                if not outcome.delivered:
                    for game, lo, hi in segments:
                        answers_by_game[game][lo:hi] = [(0, 0)] * (
                            hi - lo
                        )
                    self.lost_lanes += real_lanes
                    if (
                        self.integrity is not None
                        and outcome.attempts
                        and outcome.attempts[-1].fault
                        == KIND_CORRUPT_RESULT
                    ):
                        self.integrity.give_up()
                elif cell is not None:
                    # Adopt the accepted (possibly escaped-corrupt)
                    # screened slices from the last screen call.
                    for game, lo, hi, part in cell["parts"]:
                        answers_by_game[game][lo:hi] = part
                records.append(
                    LaunchRecord(
                        game=games_label,
                        lanes=real_lanes,
                        lease=outcome.lease,
                        outcome=outcome,
                        segments=tuple(segments),
                    )
                )
            else:
                device_id = self.pool.least_busy()
                lease = self.pool.launch(
                    holder,
                    duration_for(self.pool.spec_of(device_id)),
                    device_id=device_id,
                    label=f"fused_{games_label}_playouts",
                    lanes=real_lanes,
                    game=games_label,
                    fused_tenants=len(tenant_slices),
                )
                records.append(
                    LaunchRecord(
                        game=games_label,
                        lanes=real_lanes,
                        lease=lease,
                        segments=tuple(segments),
                    )
                )
        return answers_by_game, records
