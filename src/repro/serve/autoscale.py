"""SLO-driven autoscaling of the virtual device fleet and shard count.

Two control loops (docs/overload.md):

* :class:`Autoscaler` grows/shrinks one service's
  :class:`~repro.gpu.lease.DevicePool` against a per-class latency
  SLO.  Decisions are taken at most once per ``interval_s`` of
  virtual time; a scale-up provisions devices that only start
  accepting placements after ``scaleup_lag_s`` (modelled bring-up:
  capacity requested at a flash crowd's onset arrives mid-storm, not
  instantly), and a scale-down retires the highest-numbered device
  (no new placements; its in-flight stream drains).  A ``cooldown_s``
  after every decision keeps the loop from thrashing against its own
  transient.
* :class:`ShardAutoscaler` makes the epoch-granularity cluster
  decision: given one epoch's interactive SLO attainment, how many
  shards should the next epoch run?  The storm harness
  (:mod:`repro.serve.storm`) rebuilds the
  :class:`~repro.serve.cluster.ClusterRouter` between epochs;
  consistent hashing keeps most keys in place across the resize.

Both loops are pure functions of observations on the virtual clock,
so autoscaled storm runs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.lease import DevicePool


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the device-fleet control loop."""

    min_devices: int = 1
    max_devices: int = 16
    #: Scale up when the windowed p99 latency/deadline ratio exceeds
    #: this (1.0 = p99 exactly at the deadline).
    target_ratio: float = 0.8
    #: ... or when the queue fraction exceeds this.
    queue_high: float = 0.5
    #: Scale down only when the ratio is below ``target_ratio *
    #: scale_down_frac`` and the queue is empty.
    scale_down_frac: float = 0.5
    #: Minimum virtual time between evaluations.
    interval_s: float = 0.02
    #: Bring-up lag: a provisioned device accepts placements only
    #: this long after the decision.
    scaleup_lag_s: float = 0.05
    #: Quiet period after any decision.
    cooldown_s: float = 0.05
    #: Devices added/removed per decision.
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_devices <= 0:
            raise ValueError(
                f"min_devices must be positive: {self.min_devices}"
            )
        if self.max_devices < self.min_devices:
            raise ValueError(
                f"max_devices ({self.max_devices}) below "
                f"min_devices ({self.min_devices})"
            )
        if self.target_ratio <= 0:
            raise ValueError(
                f"target_ratio must be positive: {self.target_ratio}"
            )
        if not 0 <= self.scale_down_frac < 1.0:
            raise ValueError(
                f"scale_down_frac must be in [0, 1): "
                f"{self.scale_down_frac}"
            )
        if self.interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive: {self.interval_s}"
            )
        if self.scaleup_lag_s < 0 or self.cooldown_s < 0:
            raise ValueError(
                "scaleup_lag_s and cooldown_s cannot be negative"
            )
        if self.step <= 0:
            raise ValueError(f"step must be positive: {self.step}")

    @classmethod
    def coerce(
        cls, value: "AutoscalerConfig | dict | bool | None"
    ) -> "AutoscalerConfig | None":
        """``None``/``False`` -> no autoscaler; ``True`` -> defaults;
        a dict -> kwargs; a config -> itself."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into an AutoscalerConfig"
        )


class Autoscaler:
    """The device-fleet control loop over one pool.

    ``spec`` is the device spec new fleet members are provisioned
    with (storms scale out homogeneously).
    """

    def __init__(
        self,
        pool: DevicePool,
        config: AutoscalerConfig,
        spec: DeviceSpec,
    ) -> None:
        self.pool = pool
        self.config = config
        self.spec = spec
        self.scale_ups = 0
        self.scale_downs = 0
        self.peak_devices = pool.active_size()
        self._next_eval_s = 0.0
        self._cooldown_until_s = 0.0

    def step(
        self, now_s: float, ratio_p99: float, queue_frac: float
    ) -> int:
        """Fold one observation; returns devices added (+) or retired
        (-) by this call (0 almost always)."""
        if now_s < self._next_eval_s:
            return 0
        self._next_eval_s = now_s + self.config.interval_s
        size = self.pool.active_size()
        self.peak_devices = max(self.peak_devices, size)
        if now_s < self._cooldown_until_s:
            return 0
        cfg = self.config
        overloaded = (
            ratio_p99 > cfg.target_ratio
            or queue_frac > cfg.queue_high
        )
        if overloaded and size < cfg.max_devices:
            added = min(cfg.step, cfg.max_devices - size)
            for _ in range(added):
                self.pool.provision(
                    self.spec, now_s + cfg.scaleup_lag_s
                )
            self.scale_ups += 1
            self.peak_devices = max(
                self.peak_devices, self.pool.active_size()
            )
            self._cooldown_until_s = now_s + cfg.cooldown_s
            return added
        calm = (
            ratio_p99 < cfg.target_ratio * cfg.scale_down_frac
            and queue_frac <= 0.0
        )
        if calm and size > cfg.min_devices:
            removed = min(cfg.step, size - cfg.min_devices)
            # Retire from the top: highest-numbered active devices
            # (the most recently provisioned) drain and leave.
            victims = [
                slot_id
                for slot_id in range(len(self.pool) - 1, -1, -1)
                if not self.pool.is_retired(slot_id)
            ][:removed]
            for slot_id in victims:
                self.pool.retire(slot_id)
            self.scale_downs += 1
            self._cooldown_until_s = now_s + cfg.cooldown_s
            return -removed
        return 0


@dataclass(frozen=True)
class ShardAutoscalerConfig:
    """Knobs of the epoch-granularity shard-count loop."""

    min_shards: int = 1
    max_shards: int = 8
    #: Scale up while interactive attainment is below this.
    attainment_low: float = 0.95
    #: Scale down when attainment is at/above this (and above min).
    attainment_high: float = 0.995
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_shards <= 0:
            raise ValueError(
                f"min_shards must be positive: {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) below "
                f"min_shards ({self.min_shards})"
            )
        if not 0 < self.attainment_low <= self.attainment_high <= 1.0:
            raise ValueError(
                "need 0 < attainment_low <= attainment_high <= 1"
            )
        if self.step <= 0:
            raise ValueError(f"step must be positive: {self.step}")


class ShardAutoscaler:
    """Epoch-wise shard-count decisions from SLO attainment."""

    def __init__(self, config: ShardAutoscalerConfig) -> None:
        self.config = config
        self.scale_ups = 0
        self.scale_downs = 0

    def next_count(self, current: int, attainment: float) -> int:
        """Shard count for the next epoch, given this epoch's
        interactive-class SLO attainment."""
        cfg = self.config
        current = max(cfg.min_shards, min(current, cfg.max_shards))
        if attainment < cfg.attainment_low:
            target = min(cfg.max_shards, current + cfg.step)
            if target > current:
                self.scale_ups += 1
            return target
        if attainment >= cfg.attainment_high:
            target = max(cfg.min_shards, current - cfg.step)
            if target < current:
                self.scale_downs += 1
            return target
        return current
