"""Search requests and their lifecycle records.

A :class:`SearchRequest` is the unit of admission into the service:
one game position to search, with a declarative engine spec, a search
budget (virtual seconds on the request's own engine clock), an
optional completion deadline (virtual seconds on the *service* clock,
relative to arrival) and a **priority class** (``interactive`` /
``standard`` / ``batch`` -- see docs/overload.md).  A
:class:`RequestRecord` tracks the request through
`PENDING -> RUNNING -> COMPLETED` (or `QUEUED`, `REJECTED`, `MISSED`,
`SHED`) and holds the latency accounting the service reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.results import SearchResult
from repro.core.spec import EngineSpec
from repro.games.base import GameState

#: Lifecycle states of a request inside the service.
PENDING = "pending"      # submitted, not yet examined
QUEUED = "queued"        # admitted into the bounded wait queue
RUNNING = "running"      # holds an active slot, search in progress
COMPLETED = "completed"  # search finished inside its deadline
REJECTED = "rejected"    # bounded queue was full at arrival
MISSED = "missed"        # deadline passed before the search finished
SHED = "shed"            # dropped by the overload controller, with an
                         # explicit rejection instead of a silent miss

TERMINAL_STATUSES = frozenset({COMPLETED, REJECTED, MISSED, SHED})

#: Priority classes, best first.  ``interactive`` traffic is never
#: load-shed by the degradation ladder; ``batch`` is the first to go.
PRIORITY_CLASSES = ("interactive", "standard", "batch")

#: Class -> dequeue rank (lower dequeues first).
CLASS_RANK = {name: i for i, name in enumerate(PRIORITY_CLASSES)}

#: Attempt-lineage separator on request ids: a closed-loop client's
#: n-th retry of request ``X`` is submitted as ``X~a<n>`` (see
#: :mod:`repro.serve.clients`).  The suffix keeps every attempt's id
#: unique (the journal and the duplicate-submission guard both key on
#: ids) while the lineage stays recoverable from the id alone --
#: recovery, routing and reporting need no side tables.
ATTEMPT_SEP = "~a"


def lineage_root(request_id: str) -> str:
    """The first attempt's id: ``"t03-mix0042~a2"`` -> ``"t03-mix0042"``."""
    head, sep, tail = request_id.rpartition(ATTEMPT_SEP)
    if sep and tail.isdigit():
        return head
    return request_id


def attempt_of(request_id: str) -> int:
    """Zero-based attempt index carried by the id (0 = first try)."""
    head, sep, tail = request_id.rpartition(ATTEMPT_SEP)
    if sep and tail.isdigit():
        return int(tail)
    return 0


def retry_id(request_id: str, attempt: int) -> str:
    """The id of attempt ``attempt`` in ``request_id``'s lineage."""
    if attempt <= 0:
        raise ValueError(f"retry attempts start at 1: {attempt}")
    return f"{lineage_root(request_id)}{ATTEMPT_SEP}{attempt}"


def tenant_of(request_id: str) -> str | None:
    """The tenant prefix of a trace-style request id
    (``"t03-mix0042"`` -> ``"t03"``), or ``None`` when the id does
    not carry one.  Tenant identity is what the per-tenant fairness
    cap and the closed-loop client population key on."""
    root = lineage_root(request_id)
    if not root.startswith("t"):
        return None
    head = root.split("-", 1)[0]
    if len(head) > 1 and head[1:].isdigit():
        return head
    return None


@dataclass(frozen=True)
class SearchRequest:
    """One tenant's search: position + engine spec + budget + deadline.

    ``deadline_s`` is *relative to arrival* on the service clock; the
    engine's ``budget_s`` is charged on the request's private engine
    clock.  A request whose deadline elapses before its search
    completes is cancelled and reported as ``missed``.
    """

    request_id: str
    game: str
    engine: EngineSpec | str | Mapping
    budget_s: float
    seed: int
    arrival_s: float = 0.0
    deadline_s: float | None = None
    state: GameState | None = None
    #: Priority class (see :data:`PRIORITY_CLASSES`); the overload
    #: controller schedules, degrades and sheds by class.
    priority: str = "standard"

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError(
                f"budget must be positive: {self.budget_s}"
            )
        if self.priority not in CLASS_RANK:
            raise ValueError(
                f"unknown priority class {self.priority!r}; "
                f"known: {PRIORITY_CLASSES}"
            )
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival cannot be negative: {self.arrival_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"relative deadline must be positive: {self.deadline_s}"
            )
        # Fail fast on malformed specs at submission, not mid-run.
        EngineSpec.coerce(self.engine)

    @property
    def absolute_deadline_s(self) -> float | None:
        if self.deadline_s is None:
            return None
        return self.arrival_s + self.deadline_s


@dataclass
class RequestRecord:
    """One request's observed lifecycle inside a service run."""

    request: SearchRequest
    status: str = PENDING
    result: SearchResult | None = None
    start_s: float | None = None
    finish_s: float | None = None
    #: Ticks in which this request contributed merged playout lanes.
    ticks: int = 0
    #: Total playout lanes this request asked for.
    lanes: int = 0
    #: Completed, but with playout batches lost to faults (reduced
    #: effective budget) or after exhausting its launch retries.
    degraded: bool = False
    #: Playout lanes this request lost to exhausted launch chains.
    lost_lanes: int = 0
    #: Degradation-ladder rung applied at activation (0 = full spec,
    #: 1 = reduced budget, 2 = cheaper engine spec; see
    #: docs/overload.md).  Non-zero rungs also set :attr:`degraded`.
    degrade_level: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def outcome(self) -> str:
        """Coarse overload-accounting outcome: ``met`` (completed at
        full fidelity), ``degraded`` (completed under the ladder or
        with fault-lost lanes), or the terminal status verbatim
        (``shed`` / ``rejected`` / ``missed``)."""
        if self.status == COMPLETED:
            return "degraded" if self.degraded else "met"
        return self.status

    @property
    def latency_s(self) -> float | None:
        """Arrival-to-finish time on the service clock."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float | None:
        """Arrival-to-start time (admission + queueing delay)."""
        if self.start_s is None:
            return None
        return self.start_s - self.request.arrival_s
