"""Search requests and their lifecycle records.

A :class:`SearchRequest` is the unit of admission into the service:
one game position to search, with a declarative engine spec, a search
budget (virtual seconds on the request's own engine clock) and an
optional completion deadline (virtual seconds on the *service* clock,
relative to arrival).  A :class:`RequestRecord` tracks the request
through `PENDING -> RUNNING -> COMPLETED` (or `QUEUED`, `REJECTED`,
`MISSED`) and holds the latency accounting the service reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.results import SearchResult
from repro.core.spec import EngineSpec
from repro.games.base import GameState

#: Lifecycle states of a request inside the service.
PENDING = "pending"      # submitted, not yet examined
QUEUED = "queued"        # admitted into the bounded wait queue
RUNNING = "running"      # holds an active slot, search in progress
COMPLETED = "completed"  # search finished inside its deadline
REJECTED = "rejected"    # bounded queue was full at arrival
MISSED = "missed"        # deadline passed before the search finished

TERMINAL_STATUSES = frozenset({COMPLETED, REJECTED, MISSED})


@dataclass(frozen=True)
class SearchRequest:
    """One tenant's search: position + engine spec + budget + deadline.

    ``deadline_s`` is *relative to arrival* on the service clock; the
    engine's ``budget_s`` is charged on the request's private engine
    clock.  A request whose deadline elapses before its search
    completes is cancelled and reported as ``missed``.
    """

    request_id: str
    game: str
    engine: EngineSpec | str | Mapping
    budget_s: float
    seed: int
    arrival_s: float = 0.0
    deadline_s: float | None = None
    state: GameState | None = None

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError(
                f"budget must be positive: {self.budget_s}"
            )
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival cannot be negative: {self.arrival_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"relative deadline must be positive: {self.deadline_s}"
            )
        # Fail fast on malformed specs at submission, not mid-run.
        EngineSpec.coerce(self.engine)

    @property
    def absolute_deadline_s(self) -> float | None:
        if self.deadline_s is None:
            return None
        return self.arrival_s + self.deadline_s


@dataclass
class RequestRecord:
    """One request's observed lifecycle inside a service run."""

    request: SearchRequest
    status: str = PENDING
    result: SearchResult | None = None
    start_s: float | None = None
    finish_s: float | None = None
    #: Ticks in which this request contributed merged playout lanes.
    ticks: int = 0
    #: Total playout lanes this request asked for.
    lanes: int = 0
    #: Completed, but with playout batches lost to faults (reduced
    #: effective budget) or after exhausting its launch retries.
    degraded: bool = False
    #: Playout lanes this request lost to exhausted launch chains.
    lost_lanes: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def latency_s(self) -> float | None:
        """Arrival-to-finish time on the service clock."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float | None:
        """Arrival-to-start time (admission + queueing delay)."""
        if self.start_s is None:
            return None
        return self.start_s - self.request.arrival_s
