"""Open-loop trace-driven load and the overload-control policy.

Two halves of the overload-survival layer (docs/overload.md) live
here; the storm harness that combines them with fault plans is in
:mod:`repro.serve.storm`.

**Open-loop arrival traces.**  The closed-loop
:func:`~repro.serve.workload.make_workload` paces request ``i`` at
``i * arrival_period_s`` -- fine for throughput benchmarks, wrong for
overload studies, where arrivals must *not* slow down because the
service is drowning.  :func:`make_trace` generates a non-homogeneous
Poisson arrival process on the virtual clock via deterministic
thinning: the intensity is a base rate modulated by composable
components (:class:`DiurnalCycle`, :class:`FlashCrowd`,
:class:`AdversarialBurst`), every uniform comes from
:func:`~repro.util.seeding.derive_seed`, and the same
:class:`TraceConfig` therefore always produces the same arrivals,
priority classes, tenants and positions -- storms replay
bit-identically.  Request *shape* (game/engine cycling, Zipf position
skew, backend rewriting) is delegated to the existing
:class:`~repro.serve.workload.WorkloadConfig` machinery, so a trace
composes with everything the cluster's result cache feeds on.

**Priority-aware admission & shedding.**  An :class:`OverloadPolicy`
plus :class:`HysteresisController` drive the graceful-degradation
ladder inside :class:`~repro.serve.service.SearchService`:

====== ==========================================================
level  behaviour
====== ==========================================================
0      full fidelity for every class
1      ``standard``/``batch`` budgets scaled by ``budget_factor``
2      ``standard``/``batch`` rewritten to the cheap engine spec
3      ``batch`` load-shed (explicit rejection, never silent)
4      ``standard`` load-shed too; only ``interactive`` runs
====== ==========================================================

``interactive`` traffic is never degraded or shed -- the ladder
exists to spend the other classes' fidelity on interactive p99.  The
controller escalates when normalised pressure (queue depth against
the high watermark, or p99 latency/deadline ratio against the
headroom bound) stays above 1.0 and de-escalates only after a longer
run of calm observations -- classic hysteresis, so the ladder does
not flap at the watermark.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.serve.request import (
    CLASS_RANK,
    PRIORITY_CLASSES,
    SearchRequest,
)
from repro.serve.workload import (
    WorkloadConfig,
    _zipf_cdf,
    shape_request,
    shape_tables,
)
from repro.util.seeding import derive_seed


def trace_uniform(seed: int, *path) -> float:
    """Deterministic uniform in (0, 1) from a seed path (the +0.5
    offset keeps it strictly inside the open interval, so logs and
    CDF inversions never see 0 or 1)."""
    return (derive_seed(seed, *path) + 0.5) / 2.0**64


# -- arrival-intensity components -------------------------------------------


@dataclass(frozen=True)
class DiurnalCycle:
    """Sinusoidal day/night swing: ``1 + amplitude*sin(...)``."""

    period_s: float = 1.0
    amplitude: float = 0.5
    #: Phase offset in cycles (0.25 starts at the peak).
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(
                f"period_s must be positive: {self.period_s}"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1): {self.amplitude}"
            )

    def factor(self, t: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t / self.period_s + self.phase)
        )

    def peak(self) -> float:
        return 1.0 + self.amplitude


@dataclass(frozen=True)
class FlashCrowd:
    """A one-off rate spike: ``multiplier`` inside the window."""

    start_s: float
    duration_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive: {self.duration_s}"
            )
        if self.multiplier <= 0:
            raise ValueError(
                f"multiplier must be positive: {self.multiplier}"
            )

    def factor(self, t: float) -> float:
        if self.start_s <= t < self.start_s + self.duration_s:
            return self.multiplier
        return 1.0

    def peak(self) -> float:
        return max(1.0, self.multiplier)


@dataclass(frozen=True)
class AdversarialBurst:
    """Periodic short bursts -- the pattern an attacker (or a retry
    storm) produces: ``multiplier`` for ``duration_s`` out of every
    ``period_s``."""

    period_s: float
    duration_s: float
    multiplier: float
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(
                f"period_s must be positive: {self.period_s}"
            )
        if not 0 < self.duration_s <= self.period_s:
            raise ValueError(
                f"duration_s must be in (0, period_s]: "
                f"{self.duration_s}"
            )
        if self.multiplier <= 0:
            raise ValueError(
                f"multiplier must be positive: {self.multiplier}"
            )

    def factor(self, t: float) -> float:
        if ((t - self.phase_s) % self.period_s) < self.duration_s:
            return self.multiplier
        return 1.0

    def peak(self) -> float:
        return max(1.0, self.multiplier)


# -- the trace --------------------------------------------------------------


@dataclass(frozen=True)
class TraceConfig:
    """Shape of one open-loop arrival trace.

    ``class_mix`` and ``class_deadline_s`` are tuples of
    ``(class, value)`` pairs (kept immutable so configs hash and
    compare); ``tenant_skew`` draws each request's tenant from a
    Zipfian over ``n_tenants`` (rank 0 hottest), encoded into the
    request id as ``t<tenant>-`` so routing and journals see it.
    Request shape comes from :attr:`workload` -- its own
    ``n_requests``/``arrival_period_s``/``deadline_s`` are ignored
    (the trace owns arrivals and deadlines).
    """

    base_rate: float = 400.0
    horizon_s: float = 1.0
    seed: int = 7001
    components: tuple = ()
    class_mix: tuple = (
        ("interactive", 0.2),
        ("standard", 0.5),
        ("batch", 0.3),
    )
    class_deadline_s: tuple = (
        ("interactive", 0.05),
        ("standard", 0.25),
        ("batch", 1.0),
    )
    tenant_skew: float = 1.1
    n_tenants: int = 16
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Hard cap on generated arrivals (a runaway-intensity guard, not
    #: a tuning knob).
    max_requests: int = 100_000

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(
                f"base_rate must be positive: {self.base_rate}"
            )
        if self.horizon_s <= 0:
            raise ValueError(
                f"horizon_s must be positive: {self.horizon_s}"
            )
        if self.n_tenants <= 0:
            raise ValueError(
                f"n_tenants must be positive: {self.n_tenants}"
            )
        if self.tenant_skew < 0:
            raise ValueError(
                f"tenant_skew cannot be negative: {self.tenant_skew}"
            )
        mix = dict(self.class_mix)
        for name in mix:
            if name not in CLASS_RANK:
                raise ValueError(
                    f"unknown priority class {name!r}; "
                    f"known: {PRIORITY_CLASSES}"
                )
        if not mix or any(w < 0 for w in mix.values()):
            raise ValueError(
                f"class_mix weights must be non-negative and "
                f"non-empty: {self.class_mix}"
            )
        if sum(mix.values()) <= 0:
            raise ValueError(
                f"class_mix must have positive total weight: "
                f"{self.class_mix}"
            )
        for name, deadline in self.class_deadline_s:
            if name not in CLASS_RANK:
                raise ValueError(
                    f"unknown priority class {name!r}; "
                    f"known: {PRIORITY_CLASSES}"
                )
            if deadline is not None and deadline <= 0:
                raise ValueError(
                    f"class deadline must be positive: "
                    f"{name}={deadline}"
                )

    def intensity(self, t: float) -> float:
        """Arrival rate lambda(t): base rate times every component's
        factor (components compose multiplicatively)."""
        rate = self.base_rate
        for component in self.components:
            rate *= component.factor(t)
        return rate

    def peak_rate(self) -> float:
        """An upper bound on lambda(t) -- the thinning envelope."""
        rate = self.base_rate
        for component in self.components:
            rate *= component.peak()
        return rate

    def deadline_for(self, priority: str) -> float | None:
        return dict(self.class_deadline_s).get(priority)


def _mix_cdf(class_mix: tuple) -> tuple[list[str], list[float]]:
    names = [name for name, _ in class_mix]
    total = sum(w for _, w in class_mix)
    cdf, acc = [], 0.0
    for _, w in class_mix:
        acc += w / total
        cdf.append(acc)
    return names, cdf


def _zipf_draw(u: float, cdf: list[float]) -> int:
    return min(bisect.bisect_left(cdf, u), len(cdf) - 1)


def make_trace(config: TraceConfig) -> list[SearchRequest]:
    """The open-loop trace: arrivals by thinning a Poisson process at
    the peak rate, fully determined by ``config`` (and therefore by
    its seed).  Arrival times never depend on service behaviour --
    the defining property of open-loop load."""
    lam_max = config.peak_rate()
    arrivals: list[float] = []
    t = 0.0
    i = 0
    while len(arrivals) < config.max_requests:
        u = trace_uniform(config.seed, "gap", i)
        t += -math.log(u) / lam_max
        if t >= config.horizon_s:
            break
        accept = trace_uniform(config.seed, "thin", i)
        if accept * lam_max <= config.intensity(t):
            arrivals.append(t)
        i += 1

    wl = config.workload
    positions, pos_cdf = shape_tables(wl)
    names, mix_cdf = _mix_cdf(config.class_mix)
    tenant_cdf = _zipf_cdf(config.n_tenants, config.tenant_skew)
    requests = []
    for j, arrival in enumerate(arrivals):
        game, engine, budget, state = shape_request(
            wl, j, positions, pos_cdf
        )
        priority = names[
            _zipf_draw(
                trace_uniform(config.seed, "class", j), mix_cdf
            )
        ]
        tenant = _zipf_draw(
            trace_uniform(config.seed, "tenant", j), tenant_cdf
        )
        requests.append(
            SearchRequest(
                request_id=(
                    f"t{tenant:02d}-{wl.id_prefix}{j:04d}"
                ),
                game=game,
                engine=engine,
                budget_s=budget,
                seed=derive_seed(config.seed, "request", j),
                arrival_s=arrival,
                deadline_s=config.deadline_for(priority),
                state=state,
                priority=priority,
            )
        )
    return requests


# -- the overload policy ----------------------------------------------------


@dataclass(frozen=True)
class OverloadPolicy:
    """Knobs of the graceful-degradation ladder (module docstring).

    Normalised *pressure* is ``max(queue_frac / queue_high,
    ratio_p99 / headroom_high)`` where ``ratio_p99`` is the p99 of
    completed requests' latency/deadline ratios over the last
    ``window`` completions (a miss contributes ``miss_penalty``).
    The controller escalates after ``escalate_after`` consecutive
    observations at or above 1.0 and de-escalates after
    ``deescalate_after`` consecutive observations at or below
    ``release``.
    """

    #: Queue-depth fraction of ``max_queue`` treated as pressure 1.0.
    queue_high: float = 0.5
    #: Latency/deadline p99 ratio treated as pressure 1.0 (0.9 means
    #: "p99 is eating 90% of its deadline budget").
    headroom_high: float = 0.9
    #: Pressure at or below which an observation counts as calm.
    release: float = 0.4
    escalate_after: int = 2
    deescalate_after: int = 8
    max_level: int = 4
    #: Level-1 budget multiplier for ``standard``/``batch``.
    budget_factor: float = 0.5
    #: Level-2 engine spec for ``standard``/``batch``.
    cheap_engine: str = "sequential"
    #: Sliding-window size (completions) for the headroom p99.
    window: int = 64
    #: Ratio a deadline miss contributes to the headroom window.
    miss_penalty: float = 2.0
    #: Per-tenant in-class fairness cap: no tenant may occupy more
    #: than this fraction of one class's wait queue (``max_queue``
    #: scaled).  When a tenant is over its cap, its worst-deadline
    #: queued request is shed (explicitly, with
    #: ``extras["fairness_evicted"]``) to make room -- one hot tenant
    #: cannot monopolise a class and starve its neighbours.  ``None``
    #: disables the cap.
    tenant_queue_frac: float | None = None

    def __post_init__(self) -> None:
        if self.queue_high <= 0 or self.headroom_high <= 0:
            raise ValueError(
                "queue_high and headroom_high must be positive"
            )
        if not 0 <= self.release < 1.0:
            raise ValueError(
                f"release must be in [0, 1): {self.release}"
            )
        if self.escalate_after <= 0 or self.deescalate_after <= 0:
            raise ValueError(
                "escalation streak lengths must be positive"
            )
        if not 1 <= self.max_level <= 4:
            raise ValueError(
                f"max_level must be in [1, 4]: {self.max_level}"
            )
        if not 0 < self.budget_factor <= 1.0:
            raise ValueError(
                f"budget_factor must be in (0, 1]: "
                f"{self.budget_factor}"
            )
        if self.window <= 0:
            raise ValueError(
                f"window must be positive: {self.window}"
            )
        if self.tenant_queue_frac is not None and not (
            0.0 < self.tenant_queue_frac <= 1.0
        ):
            raise ValueError(
                f"tenant_queue_frac must be in (0, 1]: "
                f"{self.tenant_queue_frac}"
            )
        from repro.core.spec import EngineSpec

        EngineSpec.coerce(self.cheap_engine)

    @classmethod
    def coerce(
        cls, value: "OverloadPolicy | dict | bool | None"
    ) -> "OverloadPolicy | None":
        """``None``/``False`` -> no policy; ``True`` -> defaults; a
        dict -> kwargs; a policy -> itself."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into an OverloadPolicy"
        )

    # -- ladder semantics --------------------------------------------------

    def budget_scale_for(self, level: int, priority: str) -> float:
        """Budget multiplier at activation: interactive is never
        squeezed; other classes take ``budget_factor`` from rung 1."""
        if priority == "interactive" or level < 1:
            return 1.0
        return self.budget_factor

    def spec_for(self, level: int, priority: str, engine):
        """Engine spec at activation: rung 2 rewrites non-interactive
        requests onto the cheap spec."""
        if priority == "interactive" or level < 2:
            return engine
        return self.cheap_engine

    def degrade_level_for(self, level: int, priority: str) -> int:
        """The ladder rung actually applied to one activation."""
        if priority == "interactive":
            return 0
        return min(level, 2)

    def shed_rank(self, level: int) -> int | None:
        """Lowest class rank shed at ``level`` (``None`` -> nothing
        is shed).  Level 3 sheds ``batch`` (rank 2); level 4 sheds
        ``standard`` too (rank 1); ``interactive`` (rank 0) never."""
        if level >= 4:
            return CLASS_RANK["standard"]
        if level >= 3:
            return CLASS_RANK["batch"]
        return None

    def sheds(self, level: int, priority: str) -> bool:
        rank = self.shed_rank(level)
        return rank is not None and CLASS_RANK[priority] >= rank


class HysteresisController:
    """Escalates/de-escalates the ladder on streaks of pressure
    observations (one observation per service scheduling round).
    Asymmetric streak lengths give the classic hysteresis loop:
    quick to protect, slow to relax."""

    def __init__(self, policy: OverloadPolicy) -> None:
        self.policy = policy
        self.level = 0
        self.peak_level = 0
        self.observations = 0
        self.escalations = 0
        self.deescalations = 0
        self._high_streak = 0
        self._calm_streak = 0

    def observe(self, pressure: float) -> int:
        """Fold one pressure sample; returns the (possibly new)
        ladder level."""
        self.observations += 1
        if pressure >= 1.0:
            self._high_streak += 1
            self._calm_streak = 0
        elif pressure <= self.policy.release:
            self._calm_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._calm_streak = 0
        if (
            self._high_streak >= self.policy.escalate_after
            and self.level < self.policy.max_level
        ):
            self.level += 1
            self.escalations += 1
            self._high_streak = 0
        elif (
            self._calm_streak >= self.policy.deescalate_after
            and self.level > 0
        ):
            self.level -= 1
            self.deescalations += 1
            self._calm_streak = 0
        self.peak_level = max(self.peak_level, self.level)
        return self.level
