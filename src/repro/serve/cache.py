"""Cluster-wide Zobrist-keyed transposition/result cache.

Skewed traffic from millions of users asks for the *same positions*
over and over (the Zipfian tail of openings and famous middlegames).
The :class:`ResultCache` answers a duplicate request without running a
search: entries are keyed by the request's **canonical position key**
(the game's Zobrist hash, :meth:`repro.games.base.Game.zobrist_key`)
together with the engine spec and budget that produced the result, so
a hit is exactly "the same search of the same position".

Semantics (all deterministic, on the cluster's virtual arrival
timeline -- see docs/cluster.md):

* **Bounded LRU.**  At most ``capacity`` entries; inserting past the
  bound evicts the least-recently *used* key (hits refresh recency).
* **TTL.**  An entry older than ``ttl_s`` virtual seconds at lookup
  time is expired and removed -- replicas re-search stale positions
  instead of serving them forever.
* **Integrity screening on insert.**  A result only enters the cache
  if it passes the position-aware screen in :func:`screen_result`
  (chosen move legal in the position, statistics well-formed).  A
  Byzantine shard can corrupt one tenant's answer; the screen keeps
  it from *amplifying* through the cache to every duplicate request.

The request's *seed* is deliberately not part of the key: two users
asking for the same search of the same position differ only in their
RNG stream, and the cache's whole point is to answer the second user
with the first user's search.  Runs that must be bit-identical to a
cache-less service simply run with the cache off (the cluster
differential pin does exactly that).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.results import SearchResult
from repro.core.spec import EngineSpec
from repro.games import make_game
from repro.games.base import Game, GameState

#: Virtual cost of answering a request from the result cache (lookup
#: + response serialisation; no search, no device time).  Shared by
#: the cluster router and the single-service cache path so a hit
#: costs the same wherever it is served.
CACHE_HIT_COST_S = 2e-5


class CacheKey(NamedTuple):
    """Canonical identity of one search: position + spec + budget."""

    game: str
    zobrist: int
    spec: str
    budget_s: float


def cache_key_for(
    game: Game, state: GameState, engine, budget_s: float
) -> CacheKey:
    """The cache/routing key of one request against ``game``."""
    spec = EngineSpec.coerce(engine).canonical()
    return CacheKey(
        game=game.name,
        zobrist=game.zobrist_key(state),
        spec=spec,
        budget_s=float(budget_s),
    )


def screen_result(
    game: Game, state: GameState, result: SearchResult
) -> bool:
    """Position-aware integrity screen for a result entering the cache.

    Checks the *contract* a legitimate search of ``state`` must
    satisfy: the chosen move and every root-statistics move are legal
    in the position, visit/win masses are finite and non-negative,
    and wins never exceed visits.  Cheap (one legal-move computation)
    and state-free; corrupt results are refused, never raised.
    """
    if result is None:
        return False
    legal = set(game.legal_moves(state))
    if result.move not in legal:
        return False
    for move, (visits, wins) in result.stats.items():
        if move not in legal:
            return False
        if not (math.isfinite(visits) and math.isfinite(wins)):
            return False
        if visits < 0 or wins < 0 or wins > visits + 1e-9:
            return False
    if result.simulations < 0 or result.iterations < 0:
        return False
    return True


@dataclass
class CacheEntry:
    """One cached search outcome."""

    result: SearchResult
    #: Virtual time the producing search completed (TTL anchor).
    inserted_s: float
    hits: int = 0


@dataclass
class ResultCache:
    """Bounded-LRU, TTL'd, screened result cache.

    ``capacity <= 0`` means unbounded; ``ttl_s = None`` disables
    expiry.  All counters are cumulative over the cache's lifetime so
    a cluster run can report hit rates and screening refusals.
    """

    capacity: int = 4096
    ttl_s: float | None = None
    #: Freshness horizon for *non-stationary* traffic: a hit on an
    #: entry older than this is still served (it has not expired) but
    #: counted in :attr:`stale_hits`, so diurnal-trace cache numbers
    #: stay honest -- a "56% hit rate" where half the hits are
    #: half-a-day old is a different claim than one of fresh hits.
    #: ``None`` disables stale accounting.
    stale_after_s: float | None = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    #: Hits served past :attr:`stale_after_s` (subset of ``hits``).
    stale_hits: int = 0
    #: Results refused by the integrity screen at insert.
    screened_out: int = 0
    _entries: "OrderedDict[CacheKey, CacheEntry]" = field(
        default_factory=OrderedDict, repr=False
    )
    _games: dict[str, Game] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive: {self.ttl_s}")
        if self.stale_after_s is not None and self.stale_after_s <= 0:
            raise ValueError(
                f"stale_after_s must be positive: {self.stale_after_s}"
            )

    def __len__(self) -> int:
        return len(self._entries)

    def _game(self, name: str) -> Game:
        game = self._games.get(name)
        if game is None:
            game = make_game(name)
            self._games[name] = game
        return game

    def key_for(self, request) -> CacheKey:
        """The cache key of a :class:`~repro.serve.request.SearchRequest`
        (``state=None`` means the game's initial position)."""
        game = self._game(request.game)
        state = (
            request.state
            if request.state is not None
            else game.initial_state()
        )
        return cache_key_for(
            game, state, request.engine, request.budget_s
        )

    def lookup(self, key: CacheKey, now_s: float) -> CacheEntry | None:
        """The live entry under ``key`` at virtual time ``now_s``.

        A hit refreshes LRU recency and counts; an entry past its TTL
        is removed, counted as an expiration *and* a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if (
            self.ttl_s is not None
            and now_s - entry.inserted_s > self.ttl_s
        ):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        entry.hits += 1
        if (
            self.stale_after_s is not None
            and now_s - entry.inserted_s > self.stale_after_s
        ):
            self.stale_hits += 1
        return entry

    def sweep(self, now_s: float) -> int:
        """Proactively age out every entry past its TTL at virtual
        time ``now_s`` (no lookup needed -- the cluster sweeps at
        wave/epoch boundaries so a diurnal lull actually empties the
        cache instead of leaving corpses to expire lazily).  Returns
        how many entries were removed; each counts as an expiration
        but -- unlike a lazy expiry at lookup -- not as a miss."""
        if self.ttl_s is None:
            return 0
        dead = [
            key
            for key, entry in self._entries.items()
            if now_s - entry.inserted_s > self.ttl_s
        ]
        for key in dead:
            del self._entries[key]
        self.expirations += len(dead)
        return len(dead)

    def insert(
        self,
        key: CacheKey,
        state: GameState,
        result: SearchResult,
        now_s: float,
    ) -> bool:
        """Screen ``result`` and (if clean) cache it under ``key``.

        Returns whether the result was admitted.  Inserting over an
        existing key replaces it (freshest search wins) and refreshes
        recency; growing past ``capacity`` evicts LRU keys.
        """
        if not screen_result(self._game(key.game), state, result):
            self.screened_out += 1
            return False
        self._entries[key] = CacheEntry(
            result=result, inserted_s=now_s
        )
        self._entries.move_to_end(key)
        if self.capacity > 0:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    @classmethod
    def coerce(
        cls, value: "ResultCache | dict | bool | None"
    ) -> "ResultCache | None":
        """``None``/``False`` -> no cache; ``True`` -> defaults; a
        dict -> kwargs; a cache -> itself."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a ResultCache"
        )
