"""Batched multi-tenant search serving.

The ROADMAP's "serve heavy traffic" layer: many concurrent search
requests (mixed games, engines, budgets, deadlines) multiplexed over a
shared pool of virtual GPUs.  CPU-engine requests run as
``search_steps`` generators whose playout demand is merged each tick
into wide vectorised kernel launches -- the serving-scale
generalisation of the paper's block-parallel idea that one wide SIMT
device should be fed from many independent trees.

Entry points::

    from repro.serve import SearchRequest, SearchService

    service = SearchService(n_devices=4, max_active=64)
    service.submit(SearchRequest(
        request_id="r0", game="reversi", engine="root:8",
        budget_s=0.004, seed=1, deadline_s=1.0,
    ))
    records = service.run()
    print(service.report().render())

See docs/serving.md for the scheduler design, deadline semantics and
metric definitions.
"""

from repro.serve.autoscale import (
    Autoscaler,
    AutoscalerConfig,
    ShardAutoscaler,
    ShardAutoscalerConfig,
)
from repro.serve.cache import (
    CacheEntry,
    CacheKey,
    ResultCache,
    cache_key_for,
    screen_result,
)
from repro.serve.clients import (
    AdaptiveThrottle,
    BreakerConfig,
    CircuitBreaker,
    ClientConfig,
    ClientPopulation,
    ClientRetryPolicy,
    MetastabilityDetector,
    MetastabilityVerdict,
    RetryBudget,
    ThrottleConfig,
    post_crowd_attainment,
)
from repro.serve.cluster import (
    ClusterReport,
    ClusterRouter,
    HashRing,
    HedgePolicy,
    ShardHandle,
)
from repro.serve.journal import (
    JOURNAL_FORMAT_VERSION,
    JournalCheckpoint,
    JournalCompletion,
    JournalError,
    JournalState,
    JournalWriter,
    read_journal,
)
from repro.serve.metrics import (
    ClassStats,
    ServiceReport,
    class_summary,
    percentile,
    summarize,
)
from repro.serve.overload import (
    AdversarialBurst,
    DiurnalCycle,
    FlashCrowd,
    HysteresisController,
    OverloadPolicy,
    TraceConfig,
    make_trace,
)
from repro.serve.resilience import (
    Attempt,
    LaunchOutcome,
    ResilientLauncher,
    RetryPolicy,
)
from repro.serve.request import (
    CLASS_RANK,
    COMPLETED,
    MISSED,
    PENDING,
    PRIORITY_CLASSES,
    QUEUED,
    REJECTED,
    RUNNING,
    SHED,
    TERMINAL_STATUSES,
    RequestRecord,
    SearchRequest,
    attempt_of,
    lineage_root,
    retry_id,
    tenant_of,
)
from repro.serve.scheduler import (
    FusedBatcher,
    GeneratorPool,
    LaneBatcher,
    drive_generators,
    fused_kernel_spec,
    launch_config_for,
)
from repro.serve.service import (
    SearchService,
    ServiceCrash,
    ServiceError,
    serve,
    supports_search_steps,
)
from repro.serve.storm import (
    ClusterStormConfig,
    ClusterStormOutcome,
    SilentOutcomeError,
    StormConfig,
    StormOutcome,
    assert_explicit_outcomes,
    run_cluster_storm,
    run_storm,
)
from repro.serve.workload import (
    MIXED_ENGINES,
    MIXED_GAMES,
    WorkloadConfig,
    make_workload,
)

__all__ = [
    "SearchRequest",
    "RequestRecord",
    "SearchService",
    "ClusterRouter",
    "ClusterReport",
    "HashRing",
    "ShardHandle",
    "ResultCache",
    "CacheEntry",
    "CacheKey",
    "cache_key_for",
    "screen_result",
    "ServiceCrash",
    "ServiceError",
    "ServiceReport",
    "JournalWriter",
    "JournalState",
    "JournalCheckpoint",
    "JournalCompletion",
    "JournalError",
    "JOURNAL_FORMAT_VERSION",
    "read_journal",
    "serve",
    "summarize",
    "percentile",
    "supports_search_steps",
    "Attempt",
    "LaunchOutcome",
    "ResilientLauncher",
    "RetryPolicy",
    "GeneratorPool",
    "LaneBatcher",
    "FusedBatcher",
    "drive_generators",
    "fused_kernel_spec",
    "launch_config_for",
    "WorkloadConfig",
    "make_workload",
    "MIXED_ENGINES",
    "MIXED_GAMES",
    "PENDING",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "REJECTED",
    "MISSED",
    "SHED",
    "TERMINAL_STATUSES",
    "PRIORITY_CLASSES",
    "CLASS_RANK",
    "ClassStats",
    "class_summary",
    "TraceConfig",
    "make_trace",
    "DiurnalCycle",
    "FlashCrowd",
    "AdversarialBurst",
    "OverloadPolicy",
    "HysteresisController",
    "Autoscaler",
    "AutoscalerConfig",
    "ShardAutoscaler",
    "ShardAutoscalerConfig",
    "StormConfig",
    "StormOutcome",
    "ClusterStormConfig",
    "ClusterStormOutcome",
    "run_storm",
    "run_cluster_storm",
    "assert_explicit_outcomes",
    "SilentOutcomeError",
    "ClientRetryPolicy",
    "ClientConfig",
    "ClientPopulation",
    "BreakerConfig",
    "CircuitBreaker",
    "ThrottleConfig",
    "AdaptiveThrottle",
    "RetryBudget",
    "MetastabilityDetector",
    "MetastabilityVerdict",
    "post_crowd_attainment",
    "HedgePolicy",
    "attempt_of",
    "lineage_root",
    "retry_id",
    "tenant_of",
]
