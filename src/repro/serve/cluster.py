"""Sharded serving cluster: consistent-hash routing, replica voting,
crash-recovering shards, and a Zobrist-keyed result cache.

One :class:`~repro.serve.service.SearchService` is one node: one
virtual-GPU pool, one scheduler, one journal.  This module scales the
same serving model *out*: a :class:`ClusterRouter` places every
request onto one of ``n_shards`` simulated nodes by consistent
hashing on the request's **canonical position key** (the game's
Zobrist hash -- :meth:`repro.games.base.Game.zobrist_key` -- so
transpositions of the same position route to the same shard), fans
each placed request out to ``replicas`` distinct shards, and
aggregates the replicas' root statistics through the Byzantine
-tolerant trimmed vote (:func:`repro.core.trimmed_vote_stat_dicts`) so
a corrupted shard's answer lands in the trimmed tail instead of in
the response.

Everything stays deterministic on virtual time.  Each shard is an
independent node with its own :class:`~repro.util.clock.Clock`; all
shards replay the same arrival timeline (exactly what physically
distinct machines do), so the cluster's elapsed time is the *maximum*
over shards, not the sum -- which is what makes throughput scale
nearly linearly on independent traffic.

Contract (pinned by ``tests/serve/test_cluster.py``): a cluster of
**one shard, one replica, cache off** is *bit-identical* to a bare
``SearchService`` -- same records, same results, same timings -- for
every engine kind on both tree backends.  The cluster is a routing
layer, never a semantics layer.

Cache coherence (see docs/cluster.md): the optional
:class:`~repro.serve.cache.ResultCache` is consulted at arrival, in
submission order.  The first request with a given key in a run is the
**leader** and is dispatched; concurrent duplicates become
**followers** and are served from the leader's completed result at
``max(arrival, leader finish) + hit cost`` (in-flight coalescing).
Followers whose leader failed (missed, rejected, or screened out by
the cache's integrity check) are re-dispatched as leaders in a
subsequent wave, so every request still terminates.

Crash recovery: with a ``journal_dir``, every shard journals its own
requests (rid-scoped via ``SearchService.recover(rid_filter=...)``).
A shard whose fault plan kills it mid-run is recovered from its own
journal exactly once -- journalled completions are adopted, never
re-run -- and the recovered incarnation's elapsed time is reported as
that shard's MTTR.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core import (
    MAX_VISITS,
    register_extra_keys,
    select_move,
    trimmed_vote_stat_dicts,
)
from repro.core.results import SearchResult
from repro.faults import FaultPlan
from repro.games import make_game
from repro.games.base import Game
from repro.serve.cache import (
    CACHE_HIT_COST_S,
    CacheKey,
    ResultCache,
    cache_key_for,
)
from repro.serve.metrics import (
    ClassStats,
    ServiceReport,
    class_rows,
    class_summary,
    latency_summary,
    outcome_rows,
    percentile,
    render_metric_rows,
)
from repro.serve.request import (
    COMPLETED,
    MISSED,
    REJECTED,
    SHED,
    RequestRecord,
    SearchRequest,
)
from repro.serve.service import (
    SearchService,
    ServiceCrash,
    ServiceError,
)
from repro.util.seeding import derive_seed
from repro.util.tables import format_series

register_extra_keys(
    "cluster",
    {
        # Replica results that reached the vote.
        "cluster.replicas": int,
        # Replicas whose own move differed from the voted move.
        "cluster.dissent": int,
        # Replica placements that could not get a distinct failure
        # domain (0 whenever domains outnumber replicas).
        "cluster.replica_collisions": int,
    },
)


class HashRing:
    """Consistent-hash ring over ``n_shards`` with virtual nodes.

    Each shard owns ``vnodes`` deterministic points
    (``derive_seed(seed, "ring", shard, vnode)``) on the 64-bit ring;
    a key is placed on the first point at or after it.  Replicas are
    the next *distinct* shards walking clockwise -- the classic
    successor-list placement, so adding a shard only moves the keys
    that land in its new arcs.

    ``domains`` optionally maps each shard to a **failure domain**
    (rack / zone): ``domains[shard]`` is the shard's domain id.
    Replica placement then skips shards whose domain is already used,
    so the R replicas of one request never co-locate on a domain that
    can fail as a unit -- unless there are fewer live domains than
    replicas, in which case placement falls back to distinct shards
    and counts each violation in :attr:`replica_collisions`.  With no
    ``domains`` every shard is its own domain, which reduces exactly
    to the classic distinct-shard walk.

    Keys are used verbatim, so they must already be uniform 64-bit
    values (the router derives them with
    ``derive_seed(zobrist_key, game)``); low-entropy raw keys would
    cluster on one arc.
    """

    def __init__(
        self,
        n_shards: int,
        vnodes: int = 64,
        seed: int = 0,
        domains: "tuple[int, ...] | list[int] | None" = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(
                f"n_shards must be positive: {n_shards}"
            )
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive: {vnodes}")
        if domains is None:
            domains = tuple(range(n_shards))
        else:
            domains = tuple(domains)
            if len(domains) != n_shards:
                raise ValueError(
                    f"domains must map every shard: "
                    f"{len(domains)} != {n_shards}"
                )
        self.n_shards = n_shards
        self.domains = domains
        #: Replica placements that violated domain-distinctness
        #: because fewer domains than replicas exist.
        self.replica_collisions = 0
        points = sorted(
            (derive_seed(seed, "ring", shard, v), shard)
            for shard in range(n_shards)
            for v in range(vnodes)
        )
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shards_for(self, key: int, count: int = 1) -> list[int]:
        """The ``count`` shards owning ``key`` (primary first, then
        clockwise successors), in distinct failure domains whenever
        enough domains exist."""
        count = min(count, self.n_shards)
        i = bisect.bisect_right(self._hashes, key & (2**64 - 1))
        order: list[int] = []
        seen: set[int] = set()
        n = len(self._owners)
        while len(order) < self.n_shards:
            shard = self._owners[i % n]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
            i += 1
        owners: list[int] = []
        used_domains: set[int] = set()
        for shard in order:
            if len(owners) == count:
                break
            domain = self.domains[shard]
            if domain in used_domains:
                continue
            used_domains.add(domain)
            owners.append(shard)
        if len(owners) < count:
            # Fewer live domains than replicas: fall back to distinct
            # shards (never fewer replicas) and count the violations.
            for shard in order:
                if len(owners) == count:
                    break
                if shard in owners:
                    continue
                owners.append(shard)
                self.replica_collisions += 1
        return owners

    def shard_for(self, key: int) -> int:
        return self.shards_for(key, 1)[0]


@dataclass(frozen=True)
class HedgePolicy:
    """Cluster-level hedged requests (tail-latency defense).

    After the dispatch waves settle, requests whose primary answer
    was *slow* -- completed past the run's ``trigger_percentile`` of
    completed latencies -- or missed outright get a **backup** clone
    fired at ``arrival + trigger`` onto the next distinct shard on
    the ring (a replica-placement successor, so the backup never
    lands on the shard that was slow).  The faster side wins; the
    loser is cancelled and its discarded work accounted as
    ``hedge_wasted_s``.  The backup's relative deadline shrinks by
    the trigger delay, preserving the request's absolute deadline --
    a hedge can rescue a tail request, never extend its SLO.

    Requests whose deadline is inside the trigger are not hedged (the
    backup would be born dead), and cache-served answers never hedge
    (there is no search to race).
    """

    #: Latency percentile of completed requests that arms the hedge.
    trigger_percentile: float = 95.0
    #: Floor on the trigger delay (guards degenerate tiny runs).
    min_delay_s: float = 0.0
    #: Also hedge requests whose primary missed its deadline.
    include_missed: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.trigger_percentile <= 100.0:
            raise ValueError(
                f"trigger_percentile must be in (0, 100]: "
                f"{self.trigger_percentile}"
            )
        if self.min_delay_s < 0:
            raise ValueError(
                f"min_delay_s cannot be negative: {self.min_delay_s}"
            )

    @classmethod
    def coerce(
        cls, value: "HedgePolicy | dict | bool | None"
    ) -> "HedgePolicy | None":
        """``None``/``False`` -> no hedging; ``True`` -> defaults; a
        dict -> kwargs; a policy -> itself."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a HedgePolicy"
        )


class ShardHandle:
    """One simulated cluster node: a service factory + its journal.

    The handle owns the shard's construction kwargs and (optionally)
    its write-ahead journal path, runs each wave of requests on a
    fresh :class:`SearchService` incarnation, and absorbs a planned
    :class:`ServiceCrash` by recovering from its own journal --
    scoped to its own request ids via ``rid_filter`` so a journal
    polluted with another shard's records recovers cleanly.

    ``elapsed_s`` accumulates the shard's wall time on its own virtual
    clock across incarnations (waves run back to back on one node);
    ``mttr_s`` records, per recovery, the recovered incarnation's
    elapsed time -- the time from restart until the backlog drained.
    """

    def __init__(
        self,
        shard_id: int,
        service_kwargs: dict,
        journal_path: "str | Path | None" = None,
    ) -> None:
        self.shard_id = shard_id
        self.service_kwargs = dict(service_kwargs)
        self.journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self.crashes = 0
        self.recoveries = 0
        self.mttr_s: list[float] = []
        self.foreign_records = 0
        self.elapsed_s = 0.0
        self.reports: list[ServiceReport] = []
        self._waves = 0

    def run(
        self, requests: "list[SearchRequest]"
    ) -> "dict[str, RequestRecord]":
        """Serve one wave of requests, recovering a planned crash."""
        if not requests:
            return {}
        self._waves += 1
        kwargs = dict(self.service_kwargs)
        journal = (
            self.journal_path if self._waves == 1 else None
        )
        if self._waves > 1:
            # The scheduled crash belongs to the first incarnation;
            # later waves on the same node must not re-fire it (and
            # have no journal to recover from).
            plan = FaultPlan.coerce(kwargs.get("faults"))
            if plan is not None:
                kwargs["faults"] = plan.without_crash()
        service = SearchService(journal=journal, **kwargs)
        service.submit_all(requests)
        try:
            records = service.run()
        except ServiceCrash:
            if journal is None:
                raise
            self.crashes += 1
            first_arrival = min(r.arrival_s for r in requests)
            self.elapsed_s += max(
                0.0, service.clock.now - first_arrival
            )
            rids = {r.request_id for r in requests}
            service = SearchService.recover(
                journal, rid_filter=rids.__contains__, **kwargs
            )
            records = service.run()
            self.recoveries += 1
            self.foreign_records += service.foreign_records
            report = service.report()
            self.mttr_s.append(report.elapsed_s)
        else:
            report = service.report()
        self.reports.append(report)
        self.elapsed_s += max(0.0, report.elapsed_s)
        return {r.request.request_id: r for r in records}


@dataclass
class ClusterReport:
    """Aggregated outcome of one cluster run."""

    n_shards: int
    replicas: int
    offered: int
    completed: int
    rejected: int
    missed: int
    #: Max over shards of per-shard virtual elapsed time (shards are
    #: independent nodes replaying one arrival timeline).
    elapsed_s: float
    p50_latency_s: float
    p95_latency_s: float
    mean_latency_s: float
    #: Dispatch waves the run needed (1 unless followers had to be
    #: re-dispatched after a failed cache leader).
    waves: int = 1
    #: Requests the overload controller shed (explicit rejections).
    shed: int = 0
    #: Per-priority-class outcome stats (docs/overload.md).
    per_class: "dict[str, ClassStats]" = field(default_factory=dict)
    #: Replica placements that violated failure-domain distinctness
    #: (0 whenever domains outnumber replicas).
    replica_collisions: int = 0
    #: Cache hits served past the cache's freshness horizon.
    cache_stale_hits: int = 0
    #: Result-cache accounting (zeros when the cache is off).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_expirations: int = 0
    cache_screened_out: int = 0
    cache_hit_rate: float = 0.0
    #: Followers that waited on an in-flight leader (arrival before
    #: the leader's search finished) rather than on a stored entry.
    coalesced: int = 0
    #: Replica results whose own move differed from the trimmed vote.
    replica_dissent: int = 0
    #: Hedged-request accounting (zeros when hedging is off).
    hedges_fired: int = 0
    hedge_wins: int = 0
    hedges_cancelled: int = 0
    hedge_wasted_s: float = 0.0
    hedge_trigger_s: float = 0.0
    #: Crash-recovery accounting across shards.
    shard_crashes: int = 0
    shard_recoveries: int = 0
    mean_mttr_s: float = 0.0
    foreign_records: int = 0
    #: Final per-shard incarnation reports, indexed by shard id.
    shard_reports: "list[ServiceReport]" = field(
        default_factory=list
    )
    #: Per-shard elapsed seconds (across incarnations).
    shard_elapsed_s: "list[float]" = field(default_factory=list)

    @property
    def requests_per_s(self) -> float:
        """Completed searches per cluster virtual second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def completion_rate(self) -> float:
        if self.offered <= 0:
            return 0.0
        return self.completed / self.offered

    def render(self, title: str = "cluster run") -> str:
        rows = outcome_rows(
            self.offered,
            self.completed,
            self.rejected,
            self.missed,
            self.elapsed_s,
            self.requests_per_s,
            self.p50_latency_s,
            self.p95_latency_s,
            self.mean_latency_s,
            shed=self.shed,
        )
        rows["shards"] = str(self.n_shards)
        rows["replicas"] = str(self.replicas)
        rows["dispatch waves"] = str(self.waves)
        if self.shed or set(self.per_class) - {"standard"}:
            rows.update(class_rows(self.per_class))
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            rows["cache hits"] = str(self.cache_hits)
            rows["cache misses"] = str(self.cache_misses)
            rows["cache hit rate"] = (
                f"{self.cache_hit_rate * 100:.0f}%"
            )
            rows["cache coalesced"] = str(self.coalesced)
            rows["cache evictions"] = str(self.cache_evictions)
            rows["cache expirations"] = str(self.cache_expirations)
            rows["cache screened out"] = str(
                self.cache_screened_out
            )
            if self.cache_stale_hits:
                rows["cache stale hits"] = str(
                    self.cache_stale_hits
                )
        if self.replicas > 1:
            rows["replica dissent"] = str(self.replica_dissent)
            rows["replica domain collisions"] = str(
                self.replica_collisions
            )
        if self.hedges_fired:
            rows["hedges fired"] = str(self.hedges_fired)
            rows["hedge wins"] = str(self.hedge_wins)
            rows["hedges cancelled"] = str(self.hedges_cancelled)
            rows["hedge trigger (ms)"] = (
                f"{self.hedge_trigger_s * 1e3:.2f}"
            )
            rows["hedge wasted (ms)"] = (
                f"{self.hedge_wasted_s * 1e3:.2f}"
            )
        if self.shard_crashes or self.foreign_records:
            rows["shard crashes"] = str(self.shard_crashes)
            rows["shard recoveries"] = str(self.shard_recoveries)
            rows["mean MTTR (s)"] = f"{self.mean_mttr_s:.4f}"
            rows["foreign journal records"] = str(
                self.foreign_records
            )
        table = render_metric_rows(title, rows)
        if not self.shard_reports:
            return table
        metrics = [
            "offered",
            "completed",
            "missed",
            "elapsed (s)",
            "requests/s",
            "recovered",
        ]
        series = {}
        for i, rep in enumerate(self.shard_reports):
            elapsed = self.shard_elapsed_s[i]
            per_s = rep.completed / elapsed if elapsed > 0 else 0.0
            series[f"shard {i}"] = [
                str(rep.offered),
                str(rep.completed),
                str(rep.missed),
                f"{elapsed:.4f}",
                f"{per_s:.1f}",
                str(rep.recovered),
            ]
        shard_table = format_series(
            "metric", metrics, series, title="per-shard"
        )
        return f"{table}\n\n{shard_table}"


class ClusterRouter:
    """Consistent-hash request router over ``n_shards`` simulated
    :class:`SearchService` nodes, with optional replication and a
    cluster-wide result cache.

    ``**service_kwargs`` are passed to every shard's service
    (``n_devices``, ``backend``, ``faults``, ...); ``shard_overrides``
    maps a shard id to kwargs overriding them for that shard only
    (e.g. a Byzantine fault plan on shard 2).  With ``journal_dir``
    each shard journals to ``shard-<id>.journal`` inside it and
    recovers its own planned crashes.
    """

    def __init__(
        self,
        n_shards: int = 4,
        replicas: int = 1,
        seed: int = 0,
        cache: "ResultCache | dict | bool | None" = None,
        cache_hit_cost_s: float = CACHE_HIT_COST_S,
        journal_dir: "str | Path | None" = None,
        vote_trim: float = 0.34,
        vnodes: int = 64,
        shard_overrides: "dict[int, dict] | None" = None,
        failure_domains: "tuple[int, ...] | list[int] | None" = None,
        hedge: "HedgePolicy | dict | bool | None" = None,
        **service_kwargs,
    ) -> None:
        if replicas <= 0:
            raise ValueError(
                f"replicas must be positive: {replicas}"
            )
        if not 0.0 <= vote_trim < 0.5:
            raise ValueError(
                f"vote_trim must be in [0, 0.5): {vote_trim}"
            )
        self.n_shards = n_shards
        self.replicas = replicas
        self.seed = seed
        self.vote_trim = vote_trim
        self.cache = ResultCache.coerce(cache)
        self.cache_hit_cost_s = cache_hit_cost_s
        self.ring = HashRing(
            n_shards,
            vnodes=vnodes,
            seed=derive_seed(seed, "ring"),
            domains=failure_domains,
        )
        overrides = shard_overrides or {}
        journal_dir = (
            Path(journal_dir) if journal_dir is not None else None
        )
        if journal_dir is not None:
            journal_dir.mkdir(parents=True, exist_ok=True)
        self.shards = [
            ShardHandle(
                i,
                {"seed": seed, **service_kwargs, **overrides.get(i, {})},
                journal_path=(
                    journal_dir / f"shard-{i}.journal"
                    if journal_dir is not None
                    else None
                ),
            )
            for i in range(n_shards)
        ]
        self.hedge = HedgePolicy.coerce(hedge)
        self.waves = 0
        self.coalesced = 0
        self.replica_dissent = 0
        #: Hedging accounting: backups fired, backups that beat their
        #: primary, completed loser answers cancelled, virtual seconds
        #: of loser work discarded, and the armed trigger delay.
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.hedges_cancelled = 0
        self.hedge_wasted_s = 0.0
        self.hedge_trigger_s = 0.0
        #: Per-request domain-collision counts from ring placement.
        self._collisions: "dict[str, int]" = {}
        self._requests: "list[SearchRequest]" = []
        self._final: "dict[str, RequestRecord]" = {}
        self._games: "dict[str, Game]" = {}
        self._ran = False

    # -- submission --------------------------------------------------------

    def submit(self, request: SearchRequest) -> None:
        """Register a request for the next :meth:`run`."""
        if self._ran:
            raise ServiceError("cluster already ran; build a new one")
        if any(
            r.request_id == request.request_id
            for r in self._requests
        ):
            raise ServiceError(
                f"duplicate request id {request.request_id!r}"
            )
        self._requests.append(request)

    def submit_all(self, requests: "list[SearchRequest]") -> None:
        for request in requests:
            self.submit(request)

    # -- helpers -----------------------------------------------------------

    def _game(self, name: str) -> Game:
        game = self._games.get(name)
        if game is None:
            game = make_game(name)
            self._games[name] = game
        return game

    def _state_of(self, request: SearchRequest):
        game = self._game(request.game)
        state = request.state
        return game, (
            state if state is not None else game.initial_state()
        )

    def _cache_key(self, request: SearchRequest) -> CacheKey:
        game, state = self._state_of(request)
        return cache_key_for(
            game, state, request.engine, request.budget_s
        )

    def _route_key(self, request: SearchRequest) -> int:
        """Ring position of a request: its canonical position key
        (Zobrist hash of the searched position), salted by game so
        distinct games spread independently."""
        game, state = self._state_of(request)
        return derive_seed(game.zobrist_key(state), request.game)

    def _hit_record(
        self, request: SearchRequest, entry, t_eff: float
    ) -> RequestRecord:
        """A record served from the cache at virtual time ``t_eff``."""
        finish = t_eff + self.cache_hit_cost_s
        deadline = request.absolute_deadline_s
        if deadline is not None and finish > deadline:
            # The leader's answer came too late for this follower.
            return RequestRecord(
                request=request,
                status=MISSED,
                finish_s=deadline,
                extras={"cache_hit": True},
            )
        return RequestRecord(
            request=request,
            status=COMPLETED,
            result=entry.result,
            start_s=t_eff,
            finish_s=finish,
            extras={"cache_hit": True},
        )

    def _aggregate(
        self,
        request: SearchRequest,
        records: "list[RequestRecord]",
    ) -> RequestRecord:
        """Fold one request's replica records into its cluster record.

        With one replica the shard's record *is* the cluster record
        (the bit-identity contract).  Otherwise completed replicas
        vote via the trimmed mean over per-replica visit shares and
        the move is re-selected from the voted statistics; the
        request completes when its slowest replica does.
        """
        if len(records) == 1:
            return records[0]
        primary = records[0]
        completed = [
            r
            for r in records
            if r.status == COMPLETED and r.result is not None
        ]
        if not completed:
            return primary
        voted = trimmed_vote_stat_dicts(
            [dict(r.result.stats) for r in completed],
            trim=self.vote_trim,
        )
        if not voted:
            return primary
        move = select_move(voted, MAX_VISITS)
        dissent = sum(
            1 for r in completed if r.result.move != move
        )
        self.replica_dissent += dissent
        results = [r.result for r in completed]
        result = SearchResult(
            move=move,
            stats=voted,
            iterations=sum(r.iterations for r in results),
            simulations=sum(r.simulations for r in results),
            max_depth=max(r.max_depth for r in results),
            tree_nodes=sum(r.tree_nodes for r in results),
            elapsed_s=max(r.elapsed_s for r in results),
            trees=sum(r.trees for r in results),
            engine="cluster",
            extras={
                "cluster.replicas": len(completed),
                "cluster.dissent": dissent,
                "cluster.replica_collisions": (
                    self._collisions.get(request.request_id, 0)
                ),
            },
        )
        starts = [
            r.start_s for r in completed if r.start_s is not None
        ]
        return RequestRecord(
            request=request,
            status=COMPLETED,
            result=result,
            start_s=min(starts) if starts else None,
            finish_s=max(r.finish_s for r in completed),
            ticks=sum(r.ticks for r in records),
            lanes=sum(r.lanes for r in records),
            degraded=any(r.degraded for r in records),
            lost_lanes=sum(r.lost_lanes for r in records),
        )

    # -- execution ---------------------------------------------------------

    def run(self) -> "list[RequestRecord]":
        """Serve every submitted request; records in submission order."""
        if self._ran:
            raise ServiceError("cluster already ran; build a new one")
        self._ran = True
        pending = list(self._requests)
        while pending:
            self.waves += 1
            if self.waves > len(self._requests) + 1:
                raise ServiceError(
                    "cluster dispatch failed to converge"
                )  # pragma: no cover - defensive
            pending = self._run_wave(pending)
        if self.hedge is not None:
            self._run_hedges()
        return [
            self._final[r.request_id] for r in self._requests
        ]

    def _run_hedges(self) -> None:
        """The hedged-request pass (see :class:`HedgePolicy`): fire
        backups for tail/missed primaries onto their ring successor,
        race them against the primaries, keep the winners.  Backups
        run on fresh shard incarnations whose services drain their own
        leases, so the cluster-wide lease invariant survives hedging.
        """
        latencies = [
            self._final[r.request_id].latency_s
            for r in self._requests
            if self._final[r.request_id].status == COMPLETED
            and self._final[r.request_id].latency_s is not None
        ]
        if not latencies:
            return
        trigger = max(
            percentile(latencies, self.hedge.trigger_percentile),
            self.hedge.min_delay_s,
        )
        self.hedge_trigger_s = trigger
        by_shard: "dict[int, list[SearchRequest]]" = {}
        backup_of: "dict[str, str]" = {}
        for request in self._requests:
            record = self._final[request.request_id]
            if record.extras.get("cache_hit"):
                continue
            slow = (
                record.status == COMPLETED
                and record.latency_s is not None
                and record.latency_s > trigger
            )
            missed = (
                self.hedge.include_missed
                and record.status == MISSED
            )
            if not slow and not missed:
                continue
            deadline = request.deadline_s
            if deadline is not None and deadline <= trigger:
                # By the time the hedge fires the deadline is gone.
                continue
            # The next distinct shard clockwise from the replica set:
            # the backup never lands where the slow primary ran.
            owners = self.ring.shards_for(
                self._route_key(request), self.replicas + 1
            )
            backup_shard = owners[-1]
            clone = replace(
                request,
                request_id=f"{request.request_id}::h",
                seed=derive_seed(request.seed, "hedge"),
                arrival_s=request.arrival_s + trigger,
                deadline_s=(
                    deadline - trigger
                    if deadline is not None
                    else None
                ),
            )
            by_shard.setdefault(backup_shard, []).append(clone)
            backup_of[request.request_id] = clone.request_id
            self.hedges_fired += 1
        if not backup_of:
            return
        backup_records: "dict[str, RequestRecord]" = {}
        for shard_id in sorted(by_shard):
            backup_records.update(
                self.shards[shard_id].run(by_shard[shard_id])
            )
        for request in self._requests:
            backup_rid = backup_of.get(request.request_id)
            if backup_rid is None:
                continue
            primary = self._final[request.request_id]
            backup = backup_records[backup_rid]
            backup_won = backup.status == COMPLETED and (
                primary.status != COMPLETED
                or (
                    backup.finish_s is not None
                    and primary.finish_s is not None
                    and backup.finish_s < primary.finish_s
                )
            )
            loser = primary if backup_won else backup
            if loser.status == COMPLETED:
                # The slower side produced a full answer the race
                # threw away -- the canonical hedging cost.
                self.hedges_cancelled += 1
                if (
                    loser.start_s is not None
                    and loser.finish_s is not None
                ):
                    self.hedge_wasted_s += (
                        loser.finish_s - loser.start_s
                    )
            if not backup_won:
                primary.extras["hedged"] = True
                primary.extras["hedge_won"] = False
                continue
            self.hedge_wins += 1
            self._final[request.request_id] = RequestRecord(
                request=request,
                status=COMPLETED,
                result=backup.result,
                start_s=backup.start_s,
                finish_s=backup.finish_s,
                ticks=primary.ticks + backup.ticks,
                lanes=primary.lanes + backup.lanes,
                degraded=backup.degraded,
                lost_lanes=primary.lost_lanes + backup.lost_lanes,
                extras={
                    **primary.extras,
                    "hedged": True,
                    "hedge_won": True,
                },
            )

    def _run_wave(
        self, requests: "list[SearchRequest]"
    ) -> "list[SearchRequest]":
        """One dispatch wave; returns followers needing another."""
        # Pass A -- consult the cache (submission order): stored hits
        # are answered outright, duplicate keys coalesce behind the
        # first request (the leader), the rest dispatch.
        dispatch: "list[SearchRequest]" = []
        followers: "dict[str, list[SearchRequest]]" = {}
        keys: "dict[str, CacheKey]" = {}
        leader_of: "dict[CacheKey, str]" = {}
        for request in requests:
            if self.cache is None:
                dispatch.append(request)
                continue
            key = self._cache_key(request)
            leader = leader_of.get(key)
            if leader is not None:
                followers[leader].append(request)
                continue
            entry = self.cache.lookup(key, request.arrival_s)
            if entry is not None:
                self._final[request.request_id] = self._hit_record(
                    request, entry, request.arrival_s
                )
                continue
            leader_of[key] = request.request_id
            keys[request.request_id] = key
            followers[request.request_id] = []
            dispatch.append(request)

        # Pass B -- place on the ring, clone replicas, run shards.
        by_shard: "dict[int, list[SearchRequest]]" = {}
        replica_rids: "dict[str, list[str]]" = {}
        for request in dispatch:
            before = self.ring.replica_collisions
            owners = self.ring.shards_for(
                self._route_key(request), self.replicas
            )
            self._collisions[request.request_id] = (
                self.ring.replica_collisions - before
            )
            rids = []
            for k, shard_id in enumerate(owners):
                clone = (
                    request
                    if k == 0
                    else replace(
                        request,
                        request_id=(
                            f"{request.request_id}::r{k}"
                        ),
                        seed=derive_seed(
                            request.seed, "replica", k
                        ),
                    )
                )
                by_shard.setdefault(shard_id, []).append(clone)
                rids.append(clone.request_id)
            replica_rids[request.request_id] = rids
        shard_records: "dict[str, RequestRecord]" = {}
        for shard_id in sorted(by_shard):
            shard_records.update(
                self.shards[shard_id].run(by_shard[shard_id])
            )
        for request in dispatch:
            self._final[request.request_id] = self._aggregate(
                request,
                [
                    shard_records[rid]
                    for rid in replica_rids[request.request_id]
                ],
            )

        # Pass C -- publish leaders into the cache (at their finish
        # time, screened), then serve followers; followers whose
        # leader never produced a cacheable answer re-dispatch.
        next_wave: "list[SearchRequest]" = []
        if self.cache is None:
            return next_wave
        for request in dispatch:
            record = self._final[request.request_id]
            if record.status == COMPLETED and record.result is not None:
                _, state = self._state_of(request)
                self.cache.insert(
                    keys[request.request_id],
                    state,
                    record.result,
                    now_s=record.finish_s,
                )
        for request in dispatch:
            leader_record = self._final[request.request_id]
            key = keys[request.request_id]
            for follower in followers[request.request_id]:
                t_eff = follower.arrival_s
                if leader_record.finish_s is not None:
                    t_eff = max(t_eff, leader_record.finish_s)
                entry = self.cache.lookup(key, t_eff)
                if entry is None:
                    next_wave.append(follower)
                    continue
                if follower.arrival_s < entry.inserted_s:
                    self.coalesced += 1
                self._final[follower.request_id] = (
                    self._hit_record(follower, entry, t_eff)
                )
        # Proactive TTL sweep at the wave boundary: a diurnal lull
        # empties the cache instead of leaving dead entries to expire
        # lazily one lookup at a time.  Swept at the wave's last
        # arrival, which never postdates any entry the wave inserted.
        if self.cache is not None and requests:
            self.cache.sweep(max(r.arrival_s for r in requests))
        return next_wave

    # -- reporting ---------------------------------------------------------

    @property
    def records(self) -> "list[RequestRecord]":
        return [
            self._final[r.request_id]
            for r in self._requests
            if r.request_id in self._final
        ]

    def report(self) -> ClusterReport:
        """Aggregate metrics for the finished cluster run."""
        if not self._ran:
            raise ServiceError("run() the cluster before reporting")
        records = self.records
        latencies = [
            r.latency_s for r in records if r.status == COMPLETED
        ]
        p50, p95, mean = latency_summary(latencies)
        elapsed = max(
            (s.elapsed_s for s in self.shards), default=0.0
        )
        mttrs = [m for s in self.shards for m in s.mttr_s]
        return ClusterReport(
            n_shards=self.n_shards,
            replicas=self.replicas,
            offered=len(records),
            completed=len(latencies),
            rejected=sum(
                1 for r in records if r.status == REJECTED
            ),
            missed=sum(1 for r in records if r.status == MISSED),
            shed=sum(1 for r in records if r.status == SHED),
            per_class=class_summary(records),
            replica_collisions=self.ring.replica_collisions,
            cache_stale_hits=(
                self.cache.stale_hits if self.cache else 0
            ),
            elapsed_s=elapsed,
            p50_latency_s=p50,
            p95_latency_s=p95,
            mean_latency_s=mean,
            waves=self.waves,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            cache_evictions=(
                self.cache.evictions if self.cache else 0
            ),
            cache_expirations=(
                self.cache.expirations if self.cache else 0
            ),
            cache_screened_out=(
                self.cache.screened_out if self.cache else 0
            ),
            cache_hit_rate=(
                self.cache.hit_rate if self.cache else 0.0
            ),
            coalesced=self.coalesced,
            replica_dissent=self.replica_dissent,
            hedges_fired=self.hedges_fired,
            hedge_wins=self.hedge_wins,
            hedges_cancelled=self.hedges_cancelled,
            hedge_wasted_s=self.hedge_wasted_s,
            hedge_trigger_s=self.hedge_trigger_s,
            shard_crashes=sum(s.crashes for s in self.shards),
            shard_recoveries=sum(
                s.recoveries for s in self.shards
            ),
            mean_mttr_s=(
                sum(mttrs) / len(mttrs) if mttrs else 0.0
            ),
            foreign_records=sum(
                s.foreign_records for s in self.shards
            ),
            shard_reports=[
                s.reports[-1]
                if s.reports
                else ServiceReport(
                    offered=0,
                    completed=0,
                    rejected=0,
                    missed=0,
                    elapsed_s=0.0,
                    p50_latency_s=0.0,
                    p95_latency_s=0.0,
                    mean_latency_s=0.0,
                    p95_queue_wait_s=0.0,
                    kernel_launches=0,
                    mean_lanes_per_launch=0.0,
                )
                for s in self.shards
            ],
            shard_elapsed_s=[s.elapsed_s for s in self.shards],
        )
