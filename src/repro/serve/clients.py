"""Closed-loop clients: retry storms and the defenses that tame them.

PR 9's overload layer is strictly *open-loop*: a shed or rejected
request simply vanishes from the offered load.  Real clients do the
opposite -- they retry -- and that feedback loop is exactly what turns
a transient flash crowd into a sustained **metastable** outage: the
crowd ends, but the retry backlog keeps offered load above capacity,
failures keep minting new retries, and goodput never recovers.

This module closes the loop and then defends it, all on the virtual
clock and all seeded (a retry storm replays bit-identically):

* :class:`ClientRetryPolicy` -- how a failed request comes back:
  ``none`` / ``immediate`` / ``fixed`` / ``exponential`` backoff with
  deterministic seeded jitter, an attempt cap, and per-class give-up
  deadlines (an interactive user will not wait two seconds for a
  move).
* :class:`ClientPopulation` -- one client per tenant (the ``t<n>-``
  prefix of trace request ids).  Every SHED / REJECTED / MISSED
  outcome is offered back as a retry with attempt lineage on the id
  (``X``, ``X~a1``, ``X~a2`` -- :func:`repro.serve.request.retry_id`);
  every outcome also feeds the client's defenses:

  - a per-client :class:`CircuitBreaker` (closed -> open -> half-open
    on the virtual clock) that fails retries fast while the server is
    drowning, and
  - an :class:`AdaptiveThrottle` that rejects retries client-side
    with probability driven by the observed accept ratio (the classic
    max(0, (requests - k*accepts)/(requests+1)) rule).

* :class:`RetryBudget` -- the *server-side* defense: token-bucket
  admission that distinguishes first-tries from retries by attempt
  lineage.  First-tries never spend a token (interactive first-tries
  in particular are never starved by someone else's retry flood);
  each admitted first-try refills the bucket a little, and a retry is
  only admitted while a whole token is available -- so retry traffic
  is capped at a fraction of first-try traffic, which is what breaks
  the storm's feedback loop.
* :class:`MetastabilityDetector` -- the instrument: flags sustained
  goodput-below-offered *after* the triggering crowd has cleared,
  which is the defining signature of a metastable failure state (the
  trigger is gone; the bad equilibrium remains).

Cluster-level hedged requests (fire a backup replica at a latency
percentile, cancel the loser) live in :mod:`repro.serve.cluster`;
the storm harness that drives all of this is
:mod:`repro.serve.storm`, and the measured defended-vs-undefended
differential is ``benchmarks/REPORT_retrystorm.md``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace

from repro.serve.request import (
    COMPLETED,
    MISSED,
    REJECTED,
    SHED,
    RequestRecord,
    SearchRequest,
    attempt_of,
    lineage_root,
    retry_id,
    tenant_of,
)
from repro.util.seeding import derive_seed


def client_uniform(seed: int, *path) -> float:
    """Deterministic uniform in (0, 1) from a seed path -- the client
    layer's analogue of :func:`repro.serve.overload.trace_uniform`
    (kept separate so the two streams cannot collide)."""
    return (derive_seed(seed, "clients", *path) + 0.5) / 2.0**64


#: Retry kinds a :class:`ClientRetryPolicy` understands.
RETRY_KINDS = ("none", "immediate", "fixed", "exponential")

#: Outcomes a client retries (completions never come back).
RETRIABLE_STATUSES = frozenset({SHED, REJECTED, MISSED})


@dataclass(frozen=True)
class ClientRetryPolicy:
    """How a failed request re-offers itself.

    ``max_attempts`` counts *total* tries including the first;
    ``give_up_s`` is per-class patience measured from the lineage's
    first arrival -- a retry that would fire past it is abandoned.
    Jitter is a deterministic seeded multiplier in
    ``[1 - jitter, 1 + jitter]``, so two replays of the same storm
    draw identical backoffs.
    """

    kind: str = "exponential"
    #: Base delay for ``fixed`` / ``exponential``.
    base_s: float = 0.01
    #: Exponential growth per retry (``exponential`` only).
    factor: float = 2.0
    #: Backoff ceiling.
    cap_s: float = 0.16
    #: Jitter half-width as a fraction of the delay, in [0, 1).
    jitter: float = 0.25
    #: Total attempts (first try included).
    max_attempts: int = 4
    #: Per-class give-up deadlines from first arrival, as
    #: ``(class, seconds)`` pairs; a class absent here never gives up.
    give_up_s: tuple = (
        ("interactive", 0.5),
        ("standard", 1.0),
        ("batch", 2.0),
    )

    def __post_init__(self) -> None:
        if self.kind not in RETRY_KINDS:
            raise ValueError(
                f"unknown retry kind {self.kind!r}; "
                f"known: {RETRY_KINDS}"
            )
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError("backoff times cannot be negative")
        if self.factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1: {self.factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1): {self.jitter}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        for name, patience in self.give_up_s:
            if patience is not None and patience <= 0:
                raise ValueError(
                    f"give-up deadline must be positive: "
                    f"{name}={patience}"
                )

    @classmethod
    def coerce(
        cls, value: "ClientRetryPolicy | dict | str | None"
    ) -> "ClientRetryPolicy | None":
        """``None`` -> no retries; a kind string or dict -> kwargs; a
        policy -> itself."""
        if value is None:
            return None
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a ClientRetryPolicy"
        )

    def give_up_for(self, priority: str) -> float | None:
        return dict(self.give_up_s).get(priority)

    def backoff_s(self, seed: int, root: str, attempt: int) -> float:
        """Delay before attempt ``attempt`` (1-based retry index) of
        lineage ``root`` -- a pure function of the seed path, so
        replays draw identical jitter."""
        if attempt < 1:
            raise ValueError(f"retry attempts start at 1: {attempt}")
        if self.kind in ("none", "immediate"):
            return 0.0
        if self.kind == "fixed":
            delay = self.base_s
        else:
            delay = min(
                self.cap_s,
                self.base_s * self.factor ** (attempt - 1),
            )
        if self.jitter:
            u = client_uniform(seed, "jitter", root, attempt)
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return delay


# -- client-side defenses ---------------------------------------------------


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one per-client circuit breaker."""

    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: Open dwell before the breaker half-opens.
    reset_timeout_s: float = 0.1
    #: Probes admitted while half-open (success closes, failure
    #: re-opens).
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: "
                f"{self.failure_threshold}"
            )
        if self.reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be positive: "
                f"{self.reset_timeout_s}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1: "
                f"{self.half_open_probes}"
            )

    @classmethod
    def coerce(
        cls, value: "BreakerConfig | dict | bool | None"
    ) -> "BreakerConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a BreakerConfig"
        )


#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed -> open -> half-open on the virtual clock.

    The breaker *observes* every outcome of its client (first-tries
    and retries alike -- consecutive failures are consecutive
    failures) but only *gates* retries: first-tries are the trace's
    open-loop arrivals and always reach the server.  While open, a
    retry fails fast client-side; after ``reset_timeout_s`` the
    breaker half-opens and admits ``half_open_probes`` probes -- one
    success closes it, one failure re-opens it.
    """

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BREAKER_CLOSED
        self.opens = 0
        self.closes = 0
        self._consecutive_failures = 0
        self._opened_s = 0.0
        self._probes = 0

    def allow(self, t: float) -> bool:
        """May a retry fire at virtual time ``t``?  (Mutating: an
        open breaker past its dwell transitions to half-open, and a
        half-open admission consumes a probe.)"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if t < self._opened_s + self.config.reset_timeout_s:
                return False
            self.state = BREAKER_HALF_OPEN
            self._probes = 0
        if self._probes < self.config.half_open_probes:
            self._probes += 1
            return True
        return False

    def on_success(self, t: float) -> None:
        self._consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self._probes = 0
            self.closes += 1

    def on_failure(self, t: float) -> None:
        self._consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self._trip(t)
        elif (
            self.state == BREAKER_CLOSED
            and self._consecutive_failures
            >= self.config.failure_threshold
        ):
            self._trip(t)

    def _trip(self, t: float) -> None:
        self.state = BREAKER_OPEN
        self._opened_s = t
        self._probes = 0
        self._consecutive_failures = 0
        self.opens += 1


@dataclass(frozen=True)
class ThrottleConfig:
    """Knobs of the adaptive client throttle."""

    #: Accept multiplier ``k``: retries start being dropped once the
    #: client's requests exceed ``k`` times its accepts.
    k: float = 2.0
    #: Outcomes remembered per client.
    window: int = 64

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive: {self.k}")
        if self.window < 1:
            raise ValueError(
                f"window must be >= 1: {self.window}"
            )

    @classmethod
    def coerce(
        cls, value: "ThrottleConfig | dict | bool | None"
    ) -> "ThrottleConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a ThrottleConfig"
        )


class AdaptiveThrottle:
    """Client-side probabilistic retry rejection from the observed
    accept ratio: ``p = max(0, (requests - k*accepts) / (requests+1))``
    over the last ``window`` outcomes.  A healthy server (accepts
    tracking requests) gives p = 0; a server rejecting most traffic
    pushes p toward 1 and the client stops offering retries it would
    only burn."""

    def __init__(self, config: ThrottleConfig) -> None:
        self.config = config
        self._outcomes: "deque[bool]" = deque(maxlen=config.window)

    def observe(self, accepted: bool) -> None:
        self._outcomes.append(accepted)

    def reject_probability(self) -> float:
        n = len(self._outcomes)
        if n == 0:
            return 0.0
        accepts = sum(self._outcomes)
        return max(
            0.0, (n - self.config.k * accepts) / (n + 1.0)
        )


# -- the server-side retry budget -------------------------------------------


@dataclass
class RetryBudget:
    """Token-bucket retry admission on the server.

    First-tries are never charged (and interactive first-tries in
    particular can never be starved by the budget); each admitted
    first-try refills ``fill_per_first_try`` tokens up to ``cap``.  A
    retry -- recognised by attempt lineage on its request id -- is
    admitted only while a whole token is available and spends it, so
    sustained retry traffic is capped at roughly
    ``fill_per_first_try`` of first-try traffic.  A budget-rejected
    retry terminates REJECTED with ``extras["budget_rejected"]``
    before it costs any queue space or device time -- the cheap early
    rejection that keeps a retry flood from eating the capacity the
    first-tries need to actually succeed.
    """

    fill_per_first_try: float = 0.2
    cap: float = 20.0
    initial: float = 5.0
    granted: int = 0
    rejected: int = 0
    tokens: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.fill_per_first_try < 0:
            raise ValueError(
                f"fill_per_first_try cannot be negative: "
                f"{self.fill_per_first_try}"
            )
        if self.cap <= 0:
            raise ValueError(f"cap must be positive: {self.cap}")
        if self.initial < 0:
            raise ValueError(
                f"initial cannot be negative: {self.initial}"
            )
        self.tokens = min(self.initial, self.cap)

    @classmethod
    def coerce(
        cls, value: "RetryBudget | dict | bool | None"
    ) -> "RetryBudget | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a RetryBudget"
        )

    def on_first_try(self) -> None:
        self.tokens = min(
            self.cap, self.tokens + self.fill_per_first_try
        )

    def spend(self) -> bool:
        """Admit one retry if a whole token is available."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.rejected += 1
        return False


# -- the population ---------------------------------------------------------


@dataclass(frozen=True)
class ClientConfig:
    """One closed-loop client population: retry behaviour plus the
    optional client-side defenses.  ``coerce`` accepts nested dicts /
    bools for every field, so a storm config can carry the whole
    client model as plain data."""

    retry: ClientRetryPolicy = field(
        default_factory=ClientRetryPolicy
    )
    breaker: BreakerConfig | None = None
    throttle: ThrottleConfig | None = None
    seed: int = 0

    @classmethod
    def coerce(
        cls, value: "ClientConfig | dict | bool | None"
    ) -> "ClientConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            value = dict(value)
            retry = ClientRetryPolicy.coerce(
                value.pop("retry", ClientRetryPolicy())
            )
            if retry is None:
                retry = ClientRetryPolicy(kind="none")
            return cls(
                retry=retry,
                breaker=BreakerConfig.coerce(
                    value.pop("breaker", None)
                ),
                throttle=ThrottleConfig.coerce(
                    value.pop("throttle", None)
                ),
                **value,
            )
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a ClientConfig"
        )


class _Client:
    """Per-tenant state: the breaker and the throttle."""

    def __init__(self, config: ClientConfig) -> None:
        self.breaker = (
            CircuitBreaker(config.breaker)
            if config.breaker is not None
            else None
        )
        self.throttle = (
            AdaptiveThrottle(config.throttle)
            if config.throttle is not None
            else None
        )


class ClientPopulation:
    """The seeded closed-loop client population.

    :meth:`on_outcome` is the feedback seam: the service calls it
    with every terminal record, and a SHED / REJECTED / MISSED
    outcome may come back as the next attempt of its lineage -- a
    fresh :class:`SearchRequest` with the retry id, a backoff'd
    arrival and a derived seed -- unless the attempt cap, the
    give-up deadline, the client's breaker or its throttle suppresses
    it.  Everything is a pure function of (config seed, lineage,
    attempt), so a storm replays bit-identically.
    """

    def __init__(self, config: ClientConfig) -> None:
        self.config = config
        self.retry = config.retry
        self._clients: "dict[str | None, _Client]" = {}
        self._first_arrival: "dict[str, float]" = {}
        #: Feedback accounting.
        self.successes = 0
        self.failures = 0
        self.retries_scheduled = 0
        self.suppressed_breaker = 0
        self.suppressed_throttle = 0
        self.exhausted_attempts = 0
        self.gave_up = 0

    @classmethod
    def coerce(
        cls,
        value: (
            "ClientPopulation | ClientConfig | dict | bool | None"
        ),
    ) -> "ClientPopulation | None":
        if isinstance(value, cls):
            return value
        config = ClientConfig.coerce(value)
        if config is None:
            return None
        return cls(config)

    # -- aggregate breaker accounting -----------------------------------

    @property
    def breaker_opens(self) -> int:
        return sum(
            c.breaker.opens
            for c in self._clients.values()
            if c.breaker is not None
        )

    @property
    def breaker_closes(self) -> int:
        return sum(
            c.breaker.closes
            for c in self._clients.values()
            if c.breaker is not None
        )

    def open_breakers(self) -> int:
        return sum(
            1
            for c in self._clients.values()
            if c.breaker is not None
            and c.breaker.state == BREAKER_OPEN
        )

    # -- the feedback seam ----------------------------------------------

    def _client(self, tenant: str | None) -> _Client:
        client = self._clients.get(tenant)
        if client is None:
            client = _Client(self.config)
            self._clients[tenant] = client
        return client

    def on_outcome(
        self, record: RequestRecord, now: float
    ) -> SearchRequest | None:
        """Fold one terminal outcome; maybe return the next attempt."""
        request = record.request
        rid = request.request_id
        client = self._client(tenant_of(rid))
        if record.status == COMPLETED:
            self.successes += 1
            if client.breaker is not None:
                client.breaker.on_success(now)
            if client.throttle is not None:
                client.throttle.observe(True)
            return None
        if record.status not in RETRIABLE_STATUSES:
            return None
        self.failures += 1
        if client.breaker is not None:
            client.breaker.on_failure(now)
        if client.throttle is not None:
            # MISSED means the server accepted (and burned capacity
            # on) the request; SHED/REJECTED are server pushback.
            client.throttle.observe(record.status == MISSED)
        policy = self.retry
        if policy is None or policy.kind == "none":
            return None
        attempt = attempt_of(rid) + 1
        if attempt >= policy.max_attempts:
            self.exhausted_attempts += 1
            return None
        root = lineage_root(rid)
        first_arrival = self._first_arrival.setdefault(
            root, request.arrival_s
        )
        retry_at = now + policy.backoff_s(
            self.config.seed, root, attempt
        )
        patience = policy.give_up_for(request.priority)
        if (
            patience is not None
            and retry_at > first_arrival + patience
        ):
            self.gave_up += 1
            return None
        if client.breaker is not None and not client.breaker.allow(
            retry_at
        ):
            self.suppressed_breaker += 1
            return None
        if client.throttle is not None:
            p = client.throttle.reject_probability()
            if p > 0.0 and (
                client_uniform(
                    self.config.seed, "throttle", root, attempt
                )
                < p
            ):
                self.suppressed_throttle += 1
                return None
        self.retries_scheduled += 1
        return replace(
            request,
            request_id=retry_id(root, attempt),
            arrival_s=retry_at,
            seed=derive_seed(request.seed, "client-retry", attempt),
        )


# -- the metastability instrument -------------------------------------------


@dataclass(frozen=True)
class MetastabilityVerdict:
    """What the detector saw after the trigger cleared."""

    #: Sustained goodput-below-offered after the crowd ended.
    trapped: bool
    #: Start of the post-trigger observation window.
    window_start_s: float
    window_end_s: float
    #: Arrivals (first-tries + retries) in the window.
    offered: int
    #: Completions-within-deadline finishing in the window.
    goodput: int
    #: Per-bin ``(offered, goodput)`` counts.
    bins: tuple = ()
    #: Longest run of consecutive trapped bins.
    trapped_bins: int = 0

    @property
    def goodput_ratio(self) -> float:
        if self.offered <= 0:
            return 1.0
        return self.goodput / self.offered


@dataclass(frozen=True)
class MetastabilityDetector:
    """Flags the metastable signature: the triggering crowd is gone,
    offered load is still there (the retry backlog), and goodput
    stays pinned below it.

    The window ``[clear_s + settle_s, horizon_s]`` is binned; a bin is
    *trapped* when its offered arrivals exceed ``min_offered_rate``
    while completions-within-deadline stay below ``goodput_frac`` of
    them.  ``sustain_bins`` consecutive trapped bins is a trap -- one
    bad bin is a draining backlog, a sustained run is the bad
    equilibrium.
    """

    bin_s: float = 0.05
    #: Grace after the trigger clears (the in-flight crowd drains).
    settle_s: float = 0.05
    #: A trapped bin completes less than this fraction of arrivals.
    goodput_frac: float = 0.5
    #: Offered arrivals/s below which a bin is idle, not trapped.
    min_offered_rate: float = 40.0
    sustain_bins: int = 3

    def __post_init__(self) -> None:
        if self.bin_s <= 0:
            raise ValueError(
                f"bin_s must be positive: {self.bin_s}"
            )
        if self.settle_s < 0:
            raise ValueError(
                f"settle_s cannot be negative: {self.settle_s}"
            )
        if not 0.0 < self.goodput_frac <= 1.0:
            raise ValueError(
                f"goodput_frac must be in (0, 1]: "
                f"{self.goodput_frac}"
            )
        if self.sustain_bins < 1:
            raise ValueError(
                f"sustain_bins must be >= 1: {self.sustain_bins}"
            )

    @classmethod
    def coerce(
        cls, value: "MetastabilityDetector | dict | bool | None"
    ) -> "MetastabilityDetector | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, dict):
            return cls(**value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"cannot coerce {value!r} into a MetastabilityDetector"
        )

    def analyze(
        self,
        records: "list[RequestRecord]",
        clear_s: float,
        horizon_s: float,
    ) -> MetastabilityVerdict:
        """Judge one run's records against the post-trigger window
        (``clear_s`` = when the triggering crowd ended)."""
        start = clear_s + self.settle_s
        end = horizon_s
        if end <= start:
            return MetastabilityVerdict(
                trapped=False,
                window_start_s=start,
                window_end_s=end,
                offered=0,
                goodput=0,
            )
        n_bins = max(1, math.ceil((end - start) / self.bin_s))
        offered = [0] * n_bins
        goodput = [0] * n_bins

        def bin_of(t: float) -> int | None:
            if not start <= t < end:
                return None
            return min(n_bins - 1, int((t - start) / self.bin_s))

        for record in records:
            b = bin_of(record.request.arrival_s)
            if b is not None:
                offered[b] += 1
            if record.status != COMPLETED:
                continue
            deadline = record.request.deadline_s
            latency = record.latency_s
            if deadline is not None and (
                latency is None or latency > deadline + 1e-12
            ):
                continue
            if record.finish_s is None:
                continue
            b = bin_of(record.finish_s)
            if b is not None:
                goodput[b] += 1

        min_per_bin = self.min_offered_rate * self.bin_s
        best_run = run = 0
        for o, g in zip(offered, goodput):
            if o >= min_per_bin and g < self.goodput_frac * o:
                run += 1
                best_run = max(best_run, run)
            else:
                run = 0
        return MetastabilityVerdict(
            trapped=best_run >= self.sustain_bins,
            window_start_s=start,
            window_end_s=end,
            offered=sum(offered),
            goodput=sum(goodput),
            bins=tuple(zip(offered, goodput)),
            trapped_bins=best_run,
        )


def post_crowd_attainment(
    records: "list[RequestRecord]",
    clear_s: float,
    priority: str = "interactive",
) -> float:
    """SLO attainment restricted to requests *arriving* after
    ``clear_s`` (crowd end + settle) -- the recovery gate.  A system
    that escaped the trap meets deadlines for fresh post-crowd work
    even if crowd-era work was sacrificed; a metastable one keeps
    failing it.  Returns 1.0 when no such request exists."""
    met = total = 0
    for record in records:
        request = record.request
        if request.priority != priority:
            continue
        if request.arrival_s < clear_s:
            continue
        total += 1
        if record.status != COMPLETED or record.degraded:
            continue
        deadline = request.deadline_s
        if deadline is None or (
            record.latency_s is not None
            and record.latency_s <= deadline + 1e-12
        ):
            met += 1
    return met / total if total else 1.0
