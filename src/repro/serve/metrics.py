"""Service-level metrics: latency percentiles, throughput, utilisation.

Latencies are virtual seconds on the service clock, from request
arrival to completion (queue wait included).  Percentiles use the
nearest-rank method so reports are deterministic and exactly
reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.serve.request import (
    COMPLETED,
    MISSED,
    PRIORITY_CLASSES,
    REJECTED,
    SHED,
    RequestRecord,
    attempt_of,
)
from repro.util.tables import format_series


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    ordered = sorted(values)
    rank = max(1, -(-int(q * len(ordered)) // 100))
    return ordered[min(rank, len(ordered)) - 1]


def latency_summary(
    values: Sequence[float],
) -> tuple[float, float, float]:
    """``(p50, p95, mean)`` of a latency sample (zeros when empty).

    The one latency-statistics fold shared by the single-service
    :func:`summarize` and the cluster aggregation in
    :mod:`repro.serve.cluster` -- percentile conventions must never
    drift between the per-shard and aggregate rows.
    """
    if not values:
        return 0.0, 0.0, 0.0
    return (
        percentile(values, 50),
        percentile(values, 95),
        sum(values) / len(values),
    )


def outcome_rows(
    offered: int,
    completed: int,
    rejected: int,
    missed: int,
    elapsed_s: float,
    requests_per_s: float,
    p50_latency_s: float,
    p95_latency_s: float,
    mean_latency_s: float,
    shed: int = 0,
) -> "dict[str, str]":
    """The offered/completed/latency report rows shared verbatim by
    :class:`ServiceReport` and the cluster's ``ClusterReport`` -- one
    definition so labels and number formats cannot drift between the
    single-service and aggregate tables (docs/cluster.md)."""
    rows = {
        "offered requests": str(offered),
        "completed": str(completed),
        "rejected (queue full)": str(rejected),
        "deadline missed": str(missed),
    }
    if shed:
        rows["shed (overload)"] = str(shed)
    rows.update(
        {
            "virtual elapsed (s)": f"{elapsed_s:.4f}",
            "requests/s": f"{requests_per_s:.1f}",
            "latency p50 (ms)": f"{p50_latency_s * 1e3:.2f}",
            "latency p95 (ms)": f"{p95_latency_s * 1e3:.2f}",
            "latency mean (ms)": f"{mean_latency_s * 1e3:.2f}",
        }
    )
    return rows


@dataclass(frozen=True)
class ClassStats:
    """Per-priority-class outcome of one run (docs/overload.md).

    *Attainment* is the SLO headline: the fraction of offered
    requests of the class that completed within their deadline (a
    request without a deadline counts as within).  Degraded
    completions inside the deadline attain the SLO -- that is the
    whole point of the degradation ladder -- but are reported
    separately so goodput under overload decomposes into
    ``met | degraded | shed | rejected | missed``.
    """

    offered: int = 0
    met: int = 0
    degraded: int = 0
    shed: int = 0
    rejected: int = 0
    missed: int = 0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0

    @property
    def attained(self) -> int:
        return self.met + self.degraded

    @property
    def attainment(self) -> float:
        """Completed-within-deadline over offered (0.0 when empty)."""
        if self.offered <= 0:
            return 0.0
        return self.attained / self.offered


def _within_deadline(record: RequestRecord) -> bool:
    deadline = record.request.deadline_s
    if deadline is None:
        return True
    latency = record.latency_s
    return latency is not None and latency <= deadline + 1e-12


def class_summary(
    records: Sequence[RequestRecord],
) -> "dict[str, ClassStats]":
    """Fold records into per-priority-class :class:`ClassStats`.

    Classes with no offered traffic are omitted; a run without
    priorities therefore reports one ``standard`` row.
    """
    out: dict[str, ClassStats] = {}
    for name in PRIORITY_CLASSES:
        subset = [
            r for r in records if r.request.priority == name
        ]
        if not subset:
            continue
        latencies = sorted(
            r.latency_s
            for r in subset
            if r.status == COMPLETED and r.latency_s is not None
        )
        attained = [
            r
            for r in subset
            if r.status == COMPLETED and _within_deadline(r)
        ]
        out[name] = ClassStats(
            offered=len(subset),
            met=sum(1 for r in attained if not r.degraded),
            degraded=sum(1 for r in attained if r.degraded),
            shed=sum(1 for r in subset if r.status == SHED),
            rejected=sum(
                1 for r in subset if r.status == REJECTED
            ),
            missed=sum(
                1 for r in subset if r.status == MISSED
            )
            + sum(
                1
                for r in subset
                if r.status == COMPLETED
                and not _within_deadline(r)
            ),
            p50_latency_s=(
                percentile(latencies, 50) if latencies else 0.0
            ),
            p99_latency_s=(
                percentile(latencies, 99) if latencies else 0.0
            ),
        )
    return out


def class_rows(per_class: "dict[str, ClassStats]") -> "dict[str, str]":
    """Per-class report rows shared by the service and cluster tables
    (one formatter, docs/overload.md)."""
    rows: dict[str, str] = {}
    for name, stats in per_class.items():
        rows[f"{name}: attainment"] = (
            f"{stats.attainment * 100:.1f}% "
            f"({stats.attained}/{stats.offered})"
        )
        rows[f"{name}: met/degr/shed/rej/miss"] = (
            f"{stats.met}/{stats.degraded}/{stats.shed}/"
            f"{stats.rejected}/{stats.missed}"
        )
        rows[f"{name}: p99 latency (ms)"] = (
            f"{stats.p99_latency_s * 1e3:.2f}"
        )
    return rows


def render_metric_rows(title: str, rows: "dict[str, str]") -> str:
    """Render a ``metric -> value`` mapping as the standard two-column
    report table.  :class:`ServiceReport` and the cluster's
    :class:`~repro.serve.cluster.ClusterReport` both format through
    this helper so per-shard and aggregate rows look identical."""
    return format_series(
        "metric",
        list(rows),
        {"value": list(rows.values())},
        title=title,
    )


@dataclass
class ServiceReport:
    """Aggregated outcome of one service run."""

    offered: int
    completed: int
    rejected: int
    missed: int
    elapsed_s: float
    p50_latency_s: float
    p95_latency_s: float
    mean_latency_s: float
    p95_queue_wait_s: float
    kernel_launches: int
    mean_lanes_per_launch: float
    #: Overload-survival accounting (docs/overload.md): requests the
    #: controller load-shed with an explicit rejection, per-class
    #: outcome stats, and the highest degradation-ladder rung the
    #: hysteresis controller reached during the run.
    shed: int = 0
    per_class: "dict[str, ClassStats]" = field(default_factory=dict)
    peak_overload_level: int = 0
    #: Autoscaler accounting: scale-up / scale-down decisions taken
    #: and the largest fleet the run reached.
    scale_ups: int = 0
    scale_downs: int = 0
    peak_devices: int = 0
    #: Cross-tenant fusion accounting (``serve.fusion.*``): padded
    #: megakernel launches issued, power-of-two pad lanes wasted on
    #: them, and the mean number of tenant slices sharing one.
    fused_launches: int = 0
    fusion_pad_lanes: int = 0
    mean_tenants_per_launch: float = 0.0
    #: Track name ("gpu0", ...) -> busy fraction over the run.
    device_utilization: dict[str, float] = field(default_factory=dict)
    #: Completed-but-degraded requests (lost playout batches).
    degraded: int = 0
    #: Resilience accounting: launch retries issued, chains lost after
    #: exhausting retries, lanes dropped, host wait wasted on failed
    #: attempts, and injected fault counts by kind.
    retries: int = 0
    lost_launches: int = 0
    lost_lanes: int = 0
    retry_overhead_s: float = 0.0
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: Crash-recovery accounting: requests adopted as already complete
    #: from the journal, requests resumed from a checkpoint, requests
    #: restarted from scratch, and engine iterations salvaged from
    #: checkpoints (work the recovered run did not have to redo).
    recovered: int = 0
    resumed: int = 0
    restarted: int = 0
    recovered_iterations: int = 0
    #: Integrity accounting: corrupt results detected (and rejected)
    #: at the host boundary, corruptions that escaped validation,
    #: launcher deliveries rejected by screening, batches degraded to
    #: neutral after the reject-retry budget, trees quarantined by the
    #: live audit, and persistence corruption caught by checksums
    #: (journal records skipped, checkpoints refused at recovery).
    corrupt_detected: int = 0
    corrupt_escaped: int = 0
    rejected_results: int = 0
    dropped_batches: int = 0
    quarantined_trees: int = 0
    journal_corrupt: int = 0
    checkpoint_corrupt: int = 0
    #: Closed-loop traffic decomposition (repro.serve.clients):
    #: offered splits into first-tries and retries by attempt lineage
    #: on request ids; ``retries_completed`` is the subset of retries
    #: that completed.
    first_tries: int = 0
    retries_offered: int = 0
    retries_completed: int = 0
    #: Client-side defense accounting: retries the population chose
    #: not to offer (open breakers / adaptive throttle), lineages
    #: whose attempt cap or give-up deadline fired, and per-client
    #: breaker transitions.
    client_suppressed_breaker: int = 0
    client_suppressed_throttle: int = 0
    retry_exhausted: int = 0
    retry_give_ups: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    #: Server-side retry-budget accounting: retries admitted on a
    #: token vs refused at the front door.
    budget_granted: int = 0
    budget_rejected: int = 0
    #: Per-tenant in-class fairness-cap evictions.
    fairness_evictions: int = 0
    #: Single-service result-cache accounting (the cluster's cache
    #: reports through ClusterReport instead).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_expirations: int = 0
    cache_stale_hits: int = 0
    cache_sweeps: int = 0

    @property
    def requests_per_s(self) -> float:
        """Completed searches per virtual second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def completion_rate(self) -> float:
        """Completed over offered (degraded completions count)."""
        if self.offered <= 0:
            return 0.0
        return self.completed / self.offered

    def outcome_rows(self) -> "dict[str, str]":
        """The offered/completed/latency rows shared verbatim with the
        cluster report (docs/cluster.md)."""
        return outcome_rows(
            self.offered,
            self.completed,
            self.rejected,
            self.missed,
            self.elapsed_s,
            self.requests_per_s,
            self.p50_latency_s,
            self.p95_latency_s,
            self.mean_latency_s,
            shed=self.shed,
        )

    def render(self, title: str = "service run") -> str:
        rows = self.outcome_rows()
        if self.shed or self.peak_overload_level:
            rows["peak overload level"] = str(
                self.peak_overload_level
            )
        if self.shed or set(self.per_class) - {"standard"}:
            rows.update(class_rows(self.per_class))
        if self.scale_ups or self.scale_downs:
            rows["autoscaler scale-ups"] = str(self.scale_ups)
            rows["autoscaler scale-downs"] = str(self.scale_downs)
            rows["peak devices"] = str(self.peak_devices)
        rows["queue wait p95 (ms)"] = (
            f"{self.p95_queue_wait_s * 1e3:.2f}"
        )
        rows["kernel launches"] = str(self.kernel_launches)
        rows["mean lanes/launch"] = (
            f"{self.mean_lanes_per_launch:.1f}"
        )
        if self.fused_launches:
            waste = self.fusion_pad_lanes / max(
                1,
                self.fusion_pad_lanes
                + round(
                    self.mean_lanes_per_launch * self.kernel_launches
                ),
            )
            rows["fused launches"] = str(self.fused_launches)
            rows["fusion pad lanes"] = (
                f"{self.fusion_pad_lanes} ({waste * 100:.0f}% waste)"
            )
            rows["mean tenants/launch"] = (
                f"{self.mean_tenants_per_launch:.1f}"
            )
        if (
            self.degraded
            or self.retries
            or self.lost_launches
            or self.faults_injected
        ):
            rows["degraded"] = str(self.degraded)
            rows["launch retries"] = str(self.retries)
            rows["lost launches"] = str(self.lost_launches)
            rows["lost lanes"] = str(self.lost_lanes)
            rows["retry overhead (ms)"] = (
                f"{self.retry_overhead_s * 1e3:.2f}"
            )
            for kind in sorted(self.faults_injected):
                rows[f"faults: {kind}"] = str(
                    self.faults_injected[kind]
                )
        if (
            self.corrupt_detected
            or self.corrupt_escaped
            or self.rejected_results
            or self.dropped_batches
            or self.quarantined_trees
            or self.journal_corrupt
            or self.checkpoint_corrupt
        ):
            rows["corrupt detected"] = str(self.corrupt_detected)
            rows["corrupt escaped"] = str(self.corrupt_escaped)
            rows["results rejected"] = str(self.rejected_results)
            rows["batches dropped"] = str(self.dropped_batches)
            rows["trees quarantined"] = str(self.quarantined_trees)
            rows["journal records corrupt"] = str(
                self.journal_corrupt
            )
            rows["checkpoints corrupt"] = str(
                self.checkpoint_corrupt
            )
        if self.retries_offered or self.client_suppressed_breaker:
            rows["first tries"] = str(self.first_tries)
            rows["retries offered"] = str(self.retries_offered)
            rows["retries completed"] = str(self.retries_completed)
            rows["retries exhausted"] = str(self.retry_exhausted)
            rows["retries gave up"] = str(self.retry_give_ups)
            if self.client_suppressed_breaker or self.breaker_opens:
                rows["breaker-suppressed retries"] = str(
                    self.client_suppressed_breaker
                )
                rows["breaker opens"] = str(self.breaker_opens)
                rows["breaker closes"] = str(self.breaker_closes)
            if self.client_suppressed_throttle:
                rows["throttle-suppressed retries"] = str(
                    self.client_suppressed_throttle
                )
        if self.budget_granted or self.budget_rejected:
            rows["retry budget granted"] = str(self.budget_granted)
            rows["retry budget rejected"] = str(self.budget_rejected)
        if self.fairness_evictions:
            rows["fairness evictions"] = str(self.fairness_evictions)
        if self.cache_hits or self.cache_misses:
            lookups = self.cache_hits + self.cache_misses
            rows["cache hits"] = (
                f"{self.cache_hits} "
                f"({self.cache_hits / lookups * 100:.0f}%)"
            )
            rows["cache misses"] = str(self.cache_misses)
            rows["cache evictions"] = str(self.cache_evictions)
            rows["cache expirations"] = str(self.cache_expirations)
            if self.cache_stale_hits:
                rows["cache stale hits"] = str(self.cache_stale_hits)
            rows["cache sweeps"] = str(self.cache_sweeps)
        if self.recovered or self.resumed or self.restarted:
            rows["recovered (adopted)"] = str(self.recovered)
            rows["resumed from checkpoint"] = str(self.resumed)
            rows["restarted from scratch"] = str(self.restarted)
            rows["iterations salvaged"] = str(
                self.recovered_iterations
            )
        for track in sorted(self.device_utilization):
            rows[f"{track} utilisation"] = (
                f"{self.device_utilization[track] * 100:.0f}%"
            )
        return render_metric_rows(title, rows)


def summarize(
    records: Sequence[RequestRecord],
    elapsed_s: float,
    kernel_launches: int = 0,
    mean_lanes_per_launch: float = 0.0,
    fused_launches: int = 0,
    fusion_pad_lanes: int = 0,
    mean_tenants_per_launch: float = 0.0,
    device_utilization: dict[str, float] | None = None,
    retries: int = 0,
    lost_launches: int = 0,
    retry_overhead_s: float = 0.0,
    faults_injected: dict[str, int] | None = None,
    recovered: int = 0,
    resumed: int = 0,
    restarted: int = 0,
    recovered_iterations: int = 0,
    corrupt_detected: int = 0,
    corrupt_escaped: int = 0,
    rejected_results: int = 0,
    dropped_batches: int = 0,
    quarantined_trees: int = 0,
    journal_corrupt: int = 0,
    checkpoint_corrupt: int = 0,
    peak_overload_level: int = 0,
    scale_ups: int = 0,
    scale_downs: int = 0,
    peak_devices: int = 0,
    client_suppressed_breaker: int = 0,
    client_suppressed_throttle: int = 0,
    retry_exhausted: int = 0,
    retry_give_ups: int = 0,
    breaker_opens: int = 0,
    breaker_closes: int = 0,
    budget_granted: int = 0,
    budget_rejected: int = 0,
    fairness_evictions: int = 0,
    cache_hits: int = 0,
    cache_misses: int = 0,
    cache_evictions: int = 0,
    cache_expirations: int = 0,
    cache_stale_hits: int = 0,
    cache_sweeps: int = 0,
) -> ServiceReport:
    """Fold a run's request records into a :class:`ServiceReport`."""
    latencies = [
        r.latency_s for r in records if r.status == COMPLETED
    ]
    retry_records = [
        r for r in records if attempt_of(r.request.request_id) > 0
    ]
    waits = [
        r.queue_wait_s
        for r in records
        if r.status == COMPLETED and r.queue_wait_s is not None
    ]
    p50, p95, mean = latency_summary(latencies)
    return ServiceReport(
        degraded=sum(
            1
            for r in records
            if r.status == COMPLETED and r.degraded
        ),
        lost_lanes=sum(r.lost_lanes for r in records),
        retries=retries,
        lost_launches=lost_launches,
        retry_overhead_s=retry_overhead_s,
        faults_injected=dict(faults_injected or {}),
        recovered=recovered,
        resumed=resumed,
        restarted=restarted,
        recovered_iterations=recovered_iterations,
        corrupt_detected=corrupt_detected,
        corrupt_escaped=corrupt_escaped,
        rejected_results=rejected_results,
        dropped_batches=dropped_batches,
        quarantined_trees=quarantined_trees,
        journal_corrupt=journal_corrupt,
        checkpoint_corrupt=checkpoint_corrupt,
        offered=len(records),
        completed=len(latencies),
        rejected=sum(1 for r in records if r.status == REJECTED),
        missed=sum(1 for r in records if r.status == MISSED),
        shed=sum(1 for r in records if r.status == SHED),
        per_class=class_summary(records),
        peak_overload_level=peak_overload_level,
        scale_ups=scale_ups,
        scale_downs=scale_downs,
        peak_devices=peak_devices,
        first_tries=len(records) - len(retry_records),
        retries_offered=len(retry_records),
        retries_completed=sum(
            1 for r in retry_records if r.status == COMPLETED
        ),
        client_suppressed_breaker=client_suppressed_breaker,
        client_suppressed_throttle=client_suppressed_throttle,
        retry_exhausted=retry_exhausted,
        retry_give_ups=retry_give_ups,
        breaker_opens=breaker_opens,
        breaker_closes=breaker_closes,
        budget_granted=budget_granted,
        budget_rejected=budget_rejected,
        fairness_evictions=fairness_evictions,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_evictions=cache_evictions,
        cache_expirations=cache_expirations,
        cache_stale_hits=cache_stale_hits,
        cache_sweeps=cache_sweeps,
        elapsed_s=elapsed_s,
        p50_latency_s=p50,
        p95_latency_s=p95,
        mean_latency_s=mean,
        p95_queue_wait_s=percentile(waits, 95) if waits else 0.0,
        kernel_launches=kernel_launches,
        mean_lanes_per_launch=mean_lanes_per_launch,
        fused_launches=fused_launches,
        fusion_pad_lanes=fusion_pad_lanes,
        mean_tenants_per_launch=mean_tenants_per_launch,
        device_utilization=dict(device_utilization or {}),
    )
