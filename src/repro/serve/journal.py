"""Write-ahead request journal for crash-recoverable serving.

The journal is a JSONL file the service appends to *before* acting:

* ``header`` -- file magic + format version (first line).
* ``submit`` -- a request was accepted for execution (the full
  request rides along, base64-pickled, so recovery can rebuild it).
* ``checkpoint`` -- a periodic engine snapshot for a running request
  (the latest one per request wins).
* ``complete`` -- the request reached a terminal status; its result
  (if any) is embedded.

Every record is flushed to the OS on write, so a service killed
mid-run leaves a prefix-consistent journal: every journalled
submission is either marked complete or recoverable from its last
checkpoint (or from scratch).  :func:`read_journal` folds a journal
file into a :class:`JournalState`; :meth:`SearchService.recover
<repro.serve.service.SearchService.recover>` turns that into a new
service that finishes the interrupted work exactly once.

Since format version 2 every record carries a CRC of its own payload,
so :func:`read_journal` detects corruption *anywhere* in the file --
not just a torn final line.  Corrupt or torn records are skipped and
counted (:attr:`JournalState.corrupt_records`), never raised: a
request whose checkpoint record rotted simply recovers from an earlier
checkpoint or restarts from scratch, with the damage visible in the
recovery accounting.  Only the header line stays strict -- a file
whose first line is not a valid journal header is foreign, not
corrupt.

Results and snapshots are pickled (they contain game states and numpy
arrays); the journal is therefore a trusted-local-file format, same as
the checkpoint files in :mod:`repro.core.checkpoint`.
"""

from __future__ import annotations

import base64
import json
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.checkpoint import EngineSnapshot, snapshot_from_bytes
from repro.core.results import SearchResult
from repro.serve.request import SearchRequest

#: Bump on any incompatible change to the journal record layout.
#: Version 2 adds a per-record CRC; version-1 files still read.
JOURNAL_FORMAT_VERSION = 2

#: Format versions :func:`read_journal` accepts.
_READABLE_VERSIONS = (1, 2)

_MAGIC = "repro-mcts-journal"


class JournalError(RuntimeError):
    """Raised on malformed or foreign journal files."""


def _encode(obj) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _record_crc(record: dict) -> int:
    """CRC of a record's canonical JSON, sans its own ``crc`` field."""
    return zlib.crc32(
        json.dumps(record, sort_keys=True).encode("utf-8")
    )


class JournalWriter:
    """Append-only, per-record-flushed journal emitter.

    With a :class:`~repro.faults.FaultInjector` attached, record
    writes are subject to the plan's ``disk=`` corruption rate: one
    byte of the serialised line may land on disk flipped (the header
    line is exempt -- a rotten header is a foreign file, a different
    failure class than a rotten record).
    """

    def __init__(
        self,
        path: str | Path,
        append: bool = False,
        injector=None,
    ) -> None:
        self.path = Path(path)
        self.injector = injector
        fresh = not (append and self.path.exists())
        self._fh = open(self.path, "a" if append else "w")
        if fresh or self.path.stat().st_size == 0:
            self._write(
                {
                    "type": "header",
                    "magic": _MAGIC,
                    "format_version": JOURNAL_FORMAT_VERSION,
                }
            )

    def _write(self, record: dict) -> None:
        record["crc"] = _record_crc(record)
        line = json.dumps(record, sort_keys=True)
        if self.injector is not None and record["type"] != "header":
            flip = self.injector.disk_corruption(len(line))
            if flip is not None:
                offset, mask = flip
                raw = bytearray(line.encode("utf-8"))
                raw[offset % len(raw)] ^= mask
                line = raw.decode("utf-8", errors="replace")
        self._fh.write(line + "\n")
        # A crash can land between any two records; flushing per line
        # keeps the journal prefix-consistent.
        self._fh.flush()

    def submit(self, request: SearchRequest) -> None:
        self._write(
            {
                "type": "submit",
                "rid": request.request_id,
                "request": _encode(request),
            }
        )

    def checkpoint(
        self, rid: str, iterations: int, snapshot_blob: bytes
    ) -> None:
        self._write(
            {
                "type": "checkpoint",
                "rid": rid,
                "iterations": int(iterations),
                "snapshot": base64.b64encode(snapshot_blob).decode(
                    "ascii"
                ),
            }
        )

    def complete(
        self,
        rid: str,
        status: str,
        result: SearchResult | None,
        finish_s: float | None,
    ) -> None:
        self._write(
            {
                "type": "complete",
                "rid": rid,
                "status": status,
                "result": _encode(result),
                "finish_s": finish_s,
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


@dataclass(frozen=True)
class JournalCheckpoint:
    """The latest journalled snapshot of one running request."""

    iterations: int
    snapshot_blob: bytes

    def snapshot(self) -> EngineSnapshot:
        return snapshot_from_bytes(self.snapshot_blob)


@dataclass(frozen=True)
class JournalCompletion:
    """A journalled terminal outcome."""

    status: str
    result: SearchResult | None
    finish_s: float | None


@dataclass
class JournalState:
    """A journal file folded into per-request recovery state."""

    #: Every journalled submission, in first-submission order.
    requests: dict[str, SearchRequest] = field(default_factory=dict)
    #: Latest checkpoint per request (only while incomplete).
    checkpoints: dict[str, JournalCheckpoint] = field(
        default_factory=dict
    )
    #: Terminal outcomes (exactly-once: these never re-run).
    completions: dict[str, JournalCompletion] = field(
        default_factory=dict
    )
    #: Torn or corrupt records skipped while reading (CRC mismatches,
    #: unparsable lines, unknown record types).
    corrupt_records: int = 0

    @property
    def incomplete(self) -> list[str]:
        """Journalled request ids with no completion record."""
        return [r for r in self.requests if r not in self.completions]


def read_journal(path: str | Path) -> JournalState:
    """Fold a journal file into its recovery state.

    Torn or corrupt records *anywhere* in the file (unparsable JSON,
    CRC mismatch, unknown type) are skipped and counted in
    :attr:`JournalState.corrupt_records` -- the readable records are
    authoritative.  Only the header line is strict: a file that does
    not start with a valid header of a readable format version raises
    :class:`JournalError` (it is foreign, not corrupt).
    """
    path = Path(path)
    state = JournalState()
    # Corruption on disk can leave bytes that are not valid UTF-8;
    # replacement characters make the damaged record fail its JSON
    # parse or CRC check instead of crashing the read.
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise JournalError(f"{path}: empty journal")
    version = JOURNAL_FORMAT_VERSION
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == 1:
                raise JournalError(
                    f"{path} is not a request journal"
                ) from None
            state.corrupt_records += 1
            continue
        if not isinstance(record, dict):
            if lineno == 1:
                raise JournalError(f"{path} is not a request journal")
            state.corrupt_records += 1
            continue
        stored_crc = record.pop("crc", None)
        kind = record.get("type")
        if lineno == 1:
            if kind != "header" or record.get("magic") != _MAGIC:
                raise JournalError(
                    f"{path} is not a request journal"
                )
            version = record.get("format_version")
            if version not in _READABLE_VERSIONS:
                raise JournalError(
                    f"journal format {version!r} unsupported (this "
                    f"build reads versions {_READABLE_VERSIONS})"
                )
            if version >= 2 and stored_crc != _record_crc(record):
                raise JournalError(
                    f"{path}: corrupt journal header"
                )
            continue
        if version >= 2 and stored_crc != _record_crc(record):
            state.corrupt_records += 1
            continue
        if kind == "header":
            continue  # appended re-open; already validated shape
        rid = record.get("rid")
        if kind == "submit":
            if rid not in state.requests:
                state.requests[rid] = _decode(record["request"])
        elif kind == "checkpoint":
            state.checkpoints[rid] = JournalCheckpoint(
                iterations=int(record["iterations"]),
                snapshot_blob=base64.b64decode(
                    record["snapshot"].encode("ascii")
                ),
            )
        elif kind == "complete":
            state.completions[rid] = JournalCompletion(
                status=record["status"],
                result=_decode(record["result"]),
                finish_s=record["finish_s"],
            )
            state.checkpoints.pop(rid, None)
        else:
            state.corrupt_records += 1
    return state
