"""Write-ahead request journal for crash-recoverable serving.

The journal is a JSONL file the service appends to *before* acting:

* ``header`` -- file magic + format version (first line).
* ``submit`` -- a request was accepted for execution (the full
  request rides along, base64-pickled, so recovery can rebuild it).
* ``checkpoint`` -- a periodic engine snapshot for a running request
  (the latest one per request wins).
* ``complete`` -- the request reached a terminal status; its result
  (if any) is embedded.

Every record is flushed to the OS on write, so a service killed
mid-run leaves a prefix-consistent journal: every journalled
submission is either marked complete or recoverable from its last
checkpoint (or from scratch).  :func:`read_journal` folds a journal
file into a :class:`JournalState`; :meth:`SearchService.recover
<repro.serve.service.SearchService.recover>` turns that into a new
service that finishes the interrupted work exactly once.

Results and snapshots are pickled (they contain game states and numpy
arrays); the journal is therefore a trusted-local-file format, same as
the checkpoint files in :mod:`repro.core.checkpoint`.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.checkpoint import EngineSnapshot, snapshot_from_bytes
from repro.core.results import SearchResult
from repro.serve.request import SearchRequest

#: Bump on any incompatible change to the journal record layout.
JOURNAL_FORMAT_VERSION = 1

_MAGIC = "repro-mcts-journal"


class JournalError(RuntimeError):
    """Raised on malformed or foreign journal files."""


def _encode(obj) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class JournalWriter:
    """Append-only, per-record-flushed journal emitter."""

    def __init__(self, path: str | Path, append: bool = False) -> None:
        self.path = Path(path)
        fresh = not (append and self.path.exists())
        self._fh = open(self.path, "a" if append else "w")
        if fresh or self.path.stat().st_size == 0:
            self._write(
                {
                    "type": "header",
                    "magic": _MAGIC,
                    "format_version": JOURNAL_FORMAT_VERSION,
                }
            )

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        # A crash can land between any two records; flushing per line
        # keeps the journal prefix-consistent.
        self._fh.flush()

    def submit(self, request: SearchRequest) -> None:
        self._write(
            {
                "type": "submit",
                "rid": request.request_id,
                "request": _encode(request),
            }
        )

    def checkpoint(
        self, rid: str, iterations: int, snapshot_blob: bytes
    ) -> None:
        self._write(
            {
                "type": "checkpoint",
                "rid": rid,
                "iterations": int(iterations),
                "snapshot": base64.b64encode(snapshot_blob).decode(
                    "ascii"
                ),
            }
        )

    def complete(
        self,
        rid: str,
        status: str,
        result: SearchResult | None,
        finish_s: float | None,
    ) -> None:
        self._write(
            {
                "type": "complete",
                "rid": rid,
                "status": status,
                "result": _encode(result),
                "finish_s": finish_s,
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


@dataclass(frozen=True)
class JournalCheckpoint:
    """The latest journalled snapshot of one running request."""

    iterations: int
    snapshot_blob: bytes

    def snapshot(self) -> EngineSnapshot:
        return snapshot_from_bytes(self.snapshot_blob)


@dataclass(frozen=True)
class JournalCompletion:
    """A journalled terminal outcome."""

    status: str
    result: SearchResult | None
    finish_s: float | None


@dataclass
class JournalState:
    """A journal file folded into per-request recovery state."""

    #: Every journalled submission, in first-submission order.
    requests: dict[str, SearchRequest] = field(default_factory=dict)
    #: Latest checkpoint per request (only while incomplete).
    checkpoints: dict[str, JournalCheckpoint] = field(
        default_factory=dict
    )
    #: Terminal outcomes (exactly-once: these never re-run).
    completions: dict[str, JournalCompletion] = field(
        default_factory=dict
    )

    @property
    def incomplete(self) -> list[str]:
        """Journalled request ids with no completion record."""
        return [r for r in self.requests if r not in self.completions]


def read_journal(path: str | Path) -> JournalState:
    """Fold a journal file into its recovery state.

    A truncated trailing line (the crash landed mid-write) is
    tolerated and ignored; anything else malformed raises.
    """
    path = Path(path)
    state = JournalState()
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise JournalError(f"{path}: empty journal")
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # torn final write; the prefix is authoritative
            raise JournalError(
                f"{path}:{lineno}: malformed journal record"
            ) from None
        kind = record.get("type")
        if lineno == 1:
            if kind != "header" or record.get("magic") != _MAGIC:
                raise JournalError(
                    f"{path} is not a request journal"
                )
            version = record.get("format_version")
            if version != JOURNAL_FORMAT_VERSION:
                raise JournalError(
                    f"journal format {version!r} unsupported (this "
                    f"build reads version {JOURNAL_FORMAT_VERSION})"
                )
            continue
        if kind == "header":
            continue  # appended re-open; already validated shape
        rid = record.get("rid")
        if kind == "submit":
            if rid not in state.requests:
                state.requests[rid] = _decode(record["request"])
        elif kind == "checkpoint":
            state.checkpoints[rid] = JournalCheckpoint(
                iterations=int(record["iterations"]),
                snapshot_blob=base64.b64decode(
                    record["snapshot"].encode("ascii")
                ),
            )
        elif kind == "complete":
            state.completions[rid] = JournalCompletion(
                status=record["status"],
                result=_decode(record["result"]),
                finish_s=record["finish_s"],
            )
            state.checkpoints.pop(rid, None)
        else:
            raise JournalError(
                f"{path}:{lineno}: unknown record type {kind!r}"
            )
    return state
