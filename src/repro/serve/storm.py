"""Storm harness: open-loop overload plus mid-storm faults.

Ties the overload-survival layer together (docs/overload.md): an
open-loop trace (:func:`~repro.serve.overload.make_trace`, typically
with a :class:`~repro.serve.overload.FlashCrowd` several times above
sustainable throughput) is fired at a defended service -- overload
policy, autoscaler -- while an existing
:class:`~repro.faults.FaultPlan` (crashes, corruption, device
outages) strikes mid-storm.  The harness recovers planned crashes
from the write-ahead journal exactly once and reports per-class SLO
attainment, goodput decomposition (met | degraded | shed | rejected |
missed) and MTTR.

Everything is a pure function of the configs' seeds on the virtual
clock: the same storm replays bit-identically, which is how the
tests pin it.

:func:`run_storm` drives one :class:`~repro.serve.service.SearchService`
node; :func:`run_cluster_storm` drives a
:class:`~repro.serve.cluster.ClusterRouter` across *epochs*, resizing
the shard count between epochs with the
:class:`~repro.serve.autoscale.ShardAutoscaler` (consistent hashing
keeps most keys in place across a resize) and optionally crashing a
shard mid-storm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.faults import FaultPlan
from repro.serve.autoscale import (
    AutoscalerConfig,
    ShardAutoscaler,
    ShardAutoscalerConfig,
)
from repro.serve.clients import (
    ClientPopulation,
    MetastabilityDetector,
    MetastabilityVerdict,
    RetryBudget,
)
from repro.serve.cluster import (
    ClusterReport,
    ClusterRouter,
    HedgePolicy,
)
from repro.serve.metrics import (
    ClassStats,
    ServiceReport,
    class_summary,
)
from repro.serve.overload import (
    FlashCrowd,
    OverloadPolicy,
    TraceConfig,
    make_trace,
)
from repro.serve.request import (
    RequestRecord,
    SearchRequest,
    TERMINAL_STATUSES,
)
from repro.serve.service import SearchService, ServiceCrash


class SilentOutcomeError(AssertionError):
    """A request ended the storm without an explicit terminal
    outcome -- exactly the silent deadline miss the overload layer
    exists to rule out."""


def assert_explicit_outcomes(
    records: "list[RequestRecord]",
) -> None:
    """Every request must end in a terminal status (met / degraded /
    shed / rejected / missed) -- zero silent outcomes."""
    silent = [
        r.request.request_id
        for r in records
        if r.status not in TERMINAL_STATUSES
    ]
    if silent:
        raise SilentOutcomeError(
            f"{len(silent)} request(s) ended without an explicit "
            f"outcome: {silent[:5]}"
        )


@dataclass(frozen=True)
class StormConfig:
    """One single-node storm: trace + defenses + faults."""

    trace: TraceConfig = field(default_factory=TraceConfig)
    n_devices: int = 2
    max_active: int = 32
    max_queue: int = 128
    seed: int = 0
    #: Overload policy (``True`` -> defaults, ``None`` -> undefended).
    overload: "OverloadPolicy | dict | bool | None" = True
    #: Device-fleet autoscaler (``None`` -> fixed fleet).
    autoscale: "AutoscalerConfig | dict | bool | None" = None
    #: Fault plan string striking mid-storm (``crash=...`` needs a
    #: ``journal`` to recover from).
    faults: "str | FaultPlan | None" = None
    journal: "str | Path | None" = None
    #: Closed-loop client population (repro.serve.clients): retries
    #: feed back into offered load (``None`` -> open-loop, the
    #: legacy storm).
    clients: "ClientPopulation | dict | bool | None" = None
    #: Server-side retry budget (``None`` -> retries admitted like
    #: first-tries).
    retry_budget: "RetryBudget | dict | bool | None" = None
    #: Post-crowd metastability analysis (``None`` -> no verdict).
    detector: "MetastabilityDetector | dict | bool | None" = None
    #: Extra ``SearchService`` kwargs as ``(key, value)`` pairs.
    service_kwargs: tuple = ()

    def crowd_clear_s(self) -> float:
        """When the trace's last flash crowd ends (0.0 with none) --
        the metastability detector's observation window opens after
        this point."""
        return max(
            (
                c.start_s + c.duration_s
                for c in self.trace.components
                if isinstance(c, FlashCrowd)
            ),
            default=0.0,
        )


@dataclass
class StormOutcome:
    """What one storm did, per class and in aggregate."""

    requests: "list[SearchRequest]"
    records: "list[RequestRecord]"
    report: ServiceReport
    crashes: int = 0
    recoveries: int = 0
    #: Recovered incarnation's elapsed time (restart -> drained).
    mttr_s: float = 0.0
    #: Post-crowd metastability verdict (``None`` when the storm ran
    #: without a detector).
    metastability: "MetastabilityVerdict | None" = None

    @property
    def per_class(self) -> "dict[str, ClassStats]":
        return self.report.per_class

    def attainment(self, priority: str) -> float:
        stats = self.report.per_class.get(priority)
        return stats.attainment if stats is not None else 0.0


def run_storm(config: StormConfig) -> StormOutcome:
    """Fire one storm at a single service node, recovering a planned
    mid-storm crash from the journal exactly once."""
    requests = make_trace(config.trace)
    kwargs = dict(
        n_devices=config.n_devices,
        max_active=config.max_active,
        max_queue=config.max_queue,
        seed=config.seed,
        overload=config.overload,
        autoscale=config.autoscale,
        faults=config.faults,
        clients=config.clients,
        retry_budget=config.retry_budget,
    )
    kwargs.update(dict(config.service_kwargs))
    service = SearchService(journal=config.journal, **kwargs)
    service.submit_all(requests)
    crashes = recoveries = 0
    mttr_s = 0.0
    try:
        records = service.run()
    except ServiceCrash:
        if config.journal is None:
            raise
        crashes += 1
        # Journalled completions are adopted verbatim (exactly-once);
        # incomplete requests resume from their checkpoints.  recover
        # strips the plan's crash so the storm cannot crash-loop.
        service = SearchService.recover(config.journal, **kwargs)
        records = service.run()
        recoveries += 1
        mttr_s = service.report().elapsed_s
    report = service.report()
    assert_explicit_outcomes(records)
    detector = MetastabilityDetector.coerce(config.detector)
    verdict = None
    if detector is not None:
        # The observation window runs from the end of the triggering
        # crowd to the end of the run (arrivals stop at the trace
        # horizon, but retries and backlogged work finish later).
        verdict = detector.analyze(
            records,
            clear_s=config.crowd_clear_s(),
            horizon_s=max(
                config.trace.horizon_s,
                max(
                    (
                        r.finish_s
                        for r in records
                        if r.finish_s is not None
                    ),
                    default=0.0,
                ),
            ),
        )
    return StormOutcome(
        requests=requests,
        records=records,
        report=report,
        crashes=crashes,
        recoveries=recoveries,
        mttr_s=mttr_s,
        metastability=verdict,
    )


@dataclass(frozen=True)
class ClusterStormConfig:
    """One cluster storm: trace + epoch-wise shard scaling + an
    optional mid-storm shard crash."""

    trace: TraceConfig = field(default_factory=TraceConfig)
    epochs: int = 2
    initial_shards: int = 2
    replicas: int = 1
    seed: int = 0
    #: Epoch-granularity shard-count loop (``None`` -> fixed count).
    shard_autoscale: "ShardAutoscalerConfig | None" = None
    #: Spread shards over this many failure domains (0 -> one domain
    #: per shard, the legacy layout).
    n_domains: int = 0
    cache: "dict | bool | None" = None
    #: Cluster-level hedged requests (``None`` -> no hedging).
    hedge: "HedgePolicy | dict | bool | None" = None
    journal_dir: "str | Path | None" = None
    #: Epoch in which shard 0's fault plan fires (``None`` -> no
    #: crash); needs ``journal_dir`` to recover.
    crash_epoch: "int | None" = None
    crash_faults: str = "crash=tick:3"
    #: Extra per-shard ``SearchService`` kwargs as pairs.
    service_kwargs: tuple = ()

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(
                f"epochs must be positive: {self.epochs}"
            )
        if self.initial_shards <= 0:
            raise ValueError(
                f"initial_shards must be positive: "
                f"{self.initial_shards}"
            )
        if self.crash_epoch is not None and self.journal_dir is None:
            raise ValueError(
                "a crash_epoch needs a journal_dir to recover from"
            )


@dataclass
class ClusterStormOutcome:
    """What one cluster storm did across its epochs."""

    requests: "list[SearchRequest]"
    records: "list[RequestRecord]"
    reports: "list[ClusterReport]"
    #: Shard count each epoch ran with.
    shard_counts: "list[int]"
    per_class: "dict[str, ClassStats]"
    crashes: int = 0
    recoveries: int = 0
    mean_mttr_s: float = 0.0

    def attainment(self, priority: str) -> float:
        stats = self.per_class.get(priority)
        return stats.attainment if stats is not None else 0.0


def run_cluster_storm(
    config: ClusterStormConfig,
) -> ClusterStormOutcome:
    """Fire one storm at a sharded cluster, epoch by epoch.

    Requests are partitioned into equal virtual-time epochs by
    arrival.  Each epoch runs a fresh :class:`ClusterRouter` at the
    shard count the :class:`ShardAutoscaler` chose from the previous
    epoch's interactive attainment (the ring seed is fixed, so a
    resize only moves the keys consistent hashing says must move).
    In ``crash_epoch``, shard 0 runs under ``crash_faults`` and
    recovers from its own journal -- requests of a crashed shard are
    still served exactly once.
    """
    requests = make_trace(config.trace)
    epoch_len = config.trace.horizon_s / config.epochs
    scaler = (
        ShardAutoscaler(config.shard_autoscale)
        if config.shard_autoscale is not None
        else None
    )
    journal_dir = (
        Path(config.journal_dir)
        if config.journal_dir is not None
        else None
    )
    n_shards = config.initial_shards
    shard_counts: "list[int]" = []
    reports: "list[ClusterReport]" = []
    all_records: "list[RequestRecord]" = []
    crashes = recoveries = 0
    mttrs: "list[float]" = []
    for epoch in range(config.epochs):
        lo = epoch * epoch_len
        hi = (epoch + 1) * epoch_len
        batch = [
            r
            for r in requests
            if lo <= r.arrival_s < hi
            or (epoch == config.epochs - 1 and r.arrival_s >= hi)
        ]
        shard_counts.append(n_shards)
        if not batch:
            continue
        overrides = (
            {0: {"faults": config.crash_faults}}
            if epoch == config.crash_epoch
            else None
        )
        domains = (
            tuple(i % config.n_domains for i in range(n_shards))
            if config.n_domains
            else None
        )
        router = ClusterRouter(
            n_shards=n_shards,
            replicas=config.replicas,
            seed=config.seed,
            cache=config.cache,
            journal_dir=(
                journal_dir / f"epoch{epoch}"
                if journal_dir is not None
                else None
            ),
            shard_overrides=overrides,
            failure_domains=domains,
            hedge=config.hedge,
            **dict(config.service_kwargs),
        )
        router.submit_all(batch)
        records = router.run()
        report = router.report()
        reports.append(report)
        all_records.extend(records)
        crashes += report.shard_crashes
        recoveries += report.shard_recoveries
        if report.shard_recoveries:
            mttrs.append(report.mean_mttr_s)
        if scaler is not None:
            stats = report.per_class.get("interactive")
            attainment = (
                stats.attainment if stats is not None else 1.0
            )
            n_shards = scaler.next_count(n_shards, attainment)
    assert_explicit_outcomes(all_records)
    return ClusterStormOutcome(
        requests=requests,
        records=all_records,
        reports=reports,
        shard_counts=shard_counts,
        per_class=class_summary(all_records),
        crashes=crashes,
        recoveries=recoveries,
        mean_mttr_s=sum(mttrs) / len(mttrs) if mttrs else 0.0,
    )
