"""The batched multi-tenant search service.

:class:`SearchService` accepts many simultaneous
:class:`~repro.serve.request.SearchRequest`\\ s -- mixed games, engine
specs, budgets and deadlines -- and multiplexes them over a shared
:class:`~repro.gpu.lease.DevicePool` of virtual GPUs.

Execution model (all times virtual; see docs/serving.md):

* **Admission.**  A request arriving when an active slot is free
  starts immediately; otherwise it waits in a bounded FIFO queue; if
  the queue is full it is rejected on the spot.  Each admitted request
  gets its own engine, built from its spec by
  :func:`repro.core.make_engine` with a private engine clock (its own
  virtual CPU core).
* **Merged ticks.**  Engines that expose the ``search_steps``
  generator protocol are advanced in lockstep rounds: every tick, all
  outstanding playout requests are concatenated per game and executed
  as wide vectorised kernel launches (one SIMT lane per leaf) placed
  on the least-busy pooled device.  The tick costs the slowest
  kernel's modelled time plus the *maximum* per-request CPU charge --
  tenants' tree work overlaps, the shared accelerators are the
  contended resource.
* **Direct engines.**  GPU engines without ``search_steps`` (block /
  leaf / hybrid / multigpu) run whole searches pinned to one pooled
  device: the search executes against the request's private clock and
  occupies the device's in-order stream for its full elapsed time.
* **Deadlines.**  A request's relative deadline converts to an
  absolute service time at arrival.  At every tick boundary, active
  requests past their deadline are cancelled (``missed``, no result);
  queued requests whose deadline passed before they could start are
  likewise missed without running.

The per-request latency and per-device busy spans are recorded on a
:class:`~repro.gpu.trace.Tracer`, so a service run can be dumped to
the Chrome trace viewer and utilisation is derived from track busy
time.
"""

from __future__ import annotations

import heapq

from collections import deque
from dataclasses import dataclass

from pathlib import Path

from repro.core.backend import validate_backend
from repro.core.base import Engine
from repro.core.executors import validate_playout
from repro.core.checkpoint import (
    CheckpointError,
    EngineSnapshot,
    snapshot_bytes,
)
from repro.core.results import SearchResult
from repro.core.spec import EngineSpec, make_engine
from repro.faults import FaultInjector, FaultPlan
from repro.games import make_game
from repro.games.base import Game
from repro.gpu.device import TESLA_C2050, DeviceSpec
from repro.gpu.lease import DevicePool
from repro.gpu.trace import Tracer
from repro.integrity import IntegrityPolicy, IntegrityState
from repro.serve.autoscale import Autoscaler, AutoscalerConfig
from repro.serve.cache import CACHE_HIT_COST_S, ResultCache
from repro.serve.clients import ClientPopulation, RetryBudget
from repro.serve.journal import JournalWriter, read_journal
from repro.serve.metrics import ServiceReport, percentile, summarize
from repro.serve.overload import (
    HysteresisController,
    OverloadPolicy,
)
from repro.serve.resilience import (
    LaunchOutcome,
    ResilientLauncher,
    RetryPolicy,
)
from repro.serve.request import (
    CLASS_RANK,
    COMPLETED,
    MISSED,
    PENDING,
    PRIORITY_CLASSES,
    QUEUED,
    REJECTED,
    RUNNING,
    SHED,
    RequestRecord,
    SearchRequest,
    attempt_of,
    tenant_of,
)
from repro.serve.scheduler import (
    FusedBatcher,
    GeneratorPool,
    LaneBatcher,
)
from repro.util.clock import Clock
from repro.util.seeding import derive_seed


def supports_search_steps(engine: Engine) -> bool:
    """Can this engine be driven through the merged generator seam?"""
    return type(engine).search_steps is not Engine.search_steps


@dataclass
class _Active:
    """Bookkeeping for one request holding an active slot."""

    record: RequestRecord
    engine: Engine
    game: Game
    #: CPU time charged by the engine but not yet billed to a tick
    #: (priming the generator happens at activation).
    pending_cpu_s: float = 0.0
    #: Direct-path (non-generator) engines: the finished result and
    #: the launch-chain outcome its modelled execution occupies.
    result: SearchResult | None = None
    outcome: LaunchOutcome | None = None


class ServiceError(RuntimeError):
    """Raised on invalid service use (submit after run, ...)."""


class ServiceCrash(RuntimeError):
    """The fault plan's scheduled crash fired: the service process is
    modelled as killed at this point.  The write-ahead journal (if
    enabled) holds everything needed to :meth:`SearchService.recover`."""


class SearchService:
    """Concurrent multi-tenant search over a shared virtual-GPU pool."""

    def __init__(
        self,
        devices: tuple[DeviceSpec, ...] | None = None,
        n_devices: int = 4,
        max_active: int = 64,
        max_queue: int = 256,
        seed: int = 0,
        tracer: Tracer | None = None,
        tick_overhead_s: float = 2e-6,
        enforce_deadlines: bool = True,
        faults: FaultPlan | str | None = None,
        retry: RetryPolicy | None = None,
        backend: str = "node",
        playout: str = "numpy",
        fusion: bool = True,
        fusion_admission: bool = False,
        max_fused_lanes: int = 1 << 16,
        journal: "str | Path | JournalWriter | None" = None,
        checkpoint_every: int = 50,
        integrity: "IntegrityPolicy | dict | None" = None,
        overload: "OverloadPolicy | dict | bool | None" = None,
        autoscale: "AutoscalerConfig | dict | bool | None" = None,
        clients: "ClientPopulation | dict | bool | None" = None,
        retry_budget: "RetryBudget | dict | bool | None" = None,
        cache: "ResultCache | dict | bool | None" = None,
        cache_sweep_every_s: float | None = None,
    ) -> None:
        if max_active <= 0:
            raise ValueError(f"max_active must be positive: {max_active}")
        if max_queue < 0:
            raise ValueError(f"max_queue cannot be negative: {max_queue}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every cannot be negative: {checkpoint_every}"
            )
        validate_backend(backend)
        validate_playout(playout)
        if devices is None:
            devices = (TESLA_C2050,) * n_devices
        self.clock = Clock()
        self.tracer = tracer if tracer is not None else Tracer()
        self.pool = DevicePool(devices, self.clock, self.tracer)
        #: Overload-survival controls (docs/overload.md).  With no
        #: policy and no autoscaler, every code path below is
        #: bit-identical to the legacy FIFO service -- the overload
        #: layer is strictly opt-in.
        self.overload = OverloadPolicy.coerce(overload)
        self.controller = (
            HysteresisController(self.overload)
            if self.overload is not None
            else None
        )
        autoscale_cfg = AutoscalerConfig.coerce(autoscale)
        self.autoscaler = (
            Autoscaler(self.pool, autoscale_cfg, devices[0])
            if autoscale_cfg is not None
            else None
        )
        #: Closed-loop client population (repro.serve.clients): every
        #: terminal outcome is offered back to the clients, and a
        #: failed request may return as its next attempt -- injected
        #: into the arrival stream mid-run.  ``None`` keeps the
        #: service strictly open-loop (the legacy behaviour).
        self.clients = ClientPopulation.coerce(clients)
        #: Server-side retry budget: token-bucket admission over
        #: retries (recognised by attempt lineage on request ids);
        #: first-tries are never charged.
        self.retry_budget = RetryBudget.coerce(retry_budget)
        #: Single-service result cache (the cluster has its own at the
        #: router): duplicate positions answered at admission for
        #: ``CACHE_HIT_COST_S``, completions inserted, entries aged
        #: out by periodic sweeps on the virtual clock.
        self.cache = ResultCache.coerce(cache)
        if cache_sweep_every_s is not None and cache_sweep_every_s <= 0:
            raise ValueError(
                f"cache_sweep_every_s must be positive: "
                f"{cache_sweep_every_s}"
            )
        self.cache_sweep_every_s = cache_sweep_every_s
        #: Cache sweeps actually performed during the run.
        self.cache_sweeps = 0
        #: Requests answered straight from the result cache.
        self.cache_served = 0
        #: Queued requests shed by the per-tenant in-class fairness
        #: cap (``OverloadPolicy.tenant_queue_frac``).
        self.fairness_evictions = 0
        #: Mid-run arrival heap of ``(arrival_s, record_index)``; live
        #: only while :meth:`run` executes (retry injection target).
        self._arrivals: "list[tuple[float, int]] | None" = None
        #: Sliding window of completed latency/deadline ratios (and
        #: miss penalties) feeding controller and autoscaler.
        self._ratio_window: "deque[float] | None" = (
            deque(
                maxlen=(
                    self.overload.window
                    if self.overload is not None
                    else 64
                )
            )
            if self.overload is not None or self.autoscaler is not None
            else None
        )
        self.fault_plan = FaultPlan.coerce(faults)
        self.injector = (
            FaultInjector(self.fault_plan)
            if self.fault_plan is not None
            else None
        )
        self.launcher = ResilientLauncher(
            self.pool, policy=retry, injector=self.injector
        )
        #: Integrity-defense policy (validation / audit / quarantine
        #: knobs); the state is created only under fault injection so
        #: fault-free runs take zero integrity code paths.
        self.integrity = IntegrityPolicy.coerce(integrity)
        self.integrity_state = (
            IntegrityState(self.integrity, self.injector, 0)
            if self.injector is not None
            else None
        )
        #: Cross-tenant kernel fusion: with ``fusion`` every tick's
        #: merged demand rides one padded launch (bit-identical
        #: per-request results either way); without it, one launch per
        #: game per tick.
        self.fusion = fusion
        if fusion:
            self.batcher: LaneBatcher = FusedBatcher(
                self.pool,
                derive_seed(seed, "serve"),
                launcher=self.launcher,
                integrity=self.integrity_state,
                playout=playout,
                max_fused_lanes=max_fused_lanes,
            )
        else:
            self.batcher = LaneBatcher(
                self.pool,
                derive_seed(seed, "serve"),
                launcher=self.launcher,
                integrity=self.integrity_state,
                playout=playout,
            )
        #: Fusion-aware admission (opt-in because it changes outcomes):
        #: at each tick boundary, requests whose deadline cannot even
        #: cover the pool's minimum launch+readback floor are missed
        #: before they are packed into the fused launch, so doomed
        #: tenants never widen (or delay) the batch.
        self.fusion_admission = fusion_admission
        #: Default tree backend for requests whose spec does not pick
        #: one explicitly (an ``@backend`` suffix always wins).
        self.backend = backend
        #: Default playout executor for requests whose spec does not
        #: pick one (an ``@compiled`` suffix always wins); also the
        #: executor the merged-tick batcher runs.
        self.playout = playout
        self.max_active = max_active
        self.max_queue = max_queue
        self.seed = seed
        self.tick_overhead_s = tick_overhead_s
        self.enforce_deadlines = enforce_deadlines
        self.ticks = 0
        self._records: list[RequestRecord] = []
        #: Ids of every record (submissions + injected retries) --
        #: duplicate-submission guard and crash-recovery dedup for
        #: client retries.
        self._record_ids: set[str] = set()
        self._ran = False
        self._games: dict[str, Game] = {}
        #: Write-ahead journal: every submission, periodic engine
        #: checkpoints and every terminal outcome are persisted before
        #: the service acts on them (see repro.serve.journal).
        if isinstance(journal, (str, Path)):
            journal = JournalWriter(journal, injector=self.injector)
        self.journal: JournalWriter | None = journal
        self.checkpoint_every = checkpoint_every
        #: Request ids already present in the journal file (recovery
        #: must not re-journal adopted submissions).
        self._journal_known: set[str] = set()
        #: Checkpoints to resume from instead of starting fresh.
        self._resume_snapshots: dict[str, EngineSnapshot] = {}
        #: Recovery accounting (populated by :meth:`recover`).
        self.recovered_requests = 0
        self.resumed_requests = 0
        self.restarted_requests = 0
        self.recovered_iterations = 0
        #: Persistence-corruption accounting (populated by
        #: :meth:`recover`): journal records skipped by the reader and
        #: journalled checkpoints the CRC envelope refused to adopt.
        self.journal_corrupt_records = 0
        self.corrupt_checkpoints = 0
        #: Journalled requests belonging to *another* shard that
        #: recovery skipped (``rid_filter`` mismatches; see
        #: :meth:`recover` and docs/cluster.md).
        self.foreign_records = 0

    # -- submission --------------------------------------------------------

    def submit(self, request: SearchRequest) -> RequestRecord:
        """Register a request for the next :meth:`run`."""
        if self._ran:
            raise ServiceError("service already ran; build a new one")
        if request.request_id in self._record_ids:
            raise ServiceError(
                f"duplicate request id {request.request_id!r}"
            )
        record = RequestRecord(request=request, status=PENDING)
        self._records.append(record)
        self._record_ids.add(request.request_id)
        if (
            self.journal is not None
            and request.request_id not in self._journal_known
        ):
            self.journal.submit(request)
            self._journal_known.add(request.request_id)
        return record

    def submit_all(
        self, requests: list[SearchRequest]
    ) -> list[RequestRecord]:
        return [self.submit(r) for r in requests]

    # -- execution ---------------------------------------------------------

    def _game(self, name: str) -> Game:
        game = self._games.get(name)
        if game is None:
            game = make_game(name)
            self._games[name] = game
        return game

    def _activate(
        self,
        record: RequestRecord,
        active: dict[str, _Active],
        gen_pool: GeneratorPool,
    ) -> None:
        """Give ``record`` an active slot and start its search."""
        req = record.request
        record.status = RUNNING
        record.start_s = self.clock.now
        game = self._game(req.game)
        # Degradation ladder (docs/overload.md): the controller's
        # current rung decides, per class, whether this activation
        # runs at full fidelity, with a squeezed budget, or on the
        # cheap engine spec.  Interactive traffic always runs whole.
        budget_s = req.budget_s
        engine_source = req.engine
        rung = 0
        if self.overload is not None and self.controller is not None:
            level = self.controller.level
            rung = self.overload.degrade_level_for(
                level, req.priority
            )
            budget_s *= self.overload.budget_scale_for(
                level, req.priority
            )
            engine_source = self.overload.spec_for(
                level, req.priority, req.engine
            )
        if rung:
            record.degrade_level = rung
            record.degraded = True
        spec = EngineSpec.coerce(engine_source)
        overrides = {}
        if self.backend != "node" and "backend" not in spec.params:
            overrides["backend"] = self.backend
        if self.playout != "numpy" and "playout" not in spec.params:
            overrides["playout"] = self.playout
        if self.injector is not None and spec.kind in (
            "block",
            "root",
            "multigpu",
            "tree",
            "pipeline",
        ):
            # Ensemble engines share the service's fault stream: rank
            # contributions may be dropped, kernel results corrupted,
            # trees poisoned -- and the engines' integrity defenses
            # (screening, audit, quarantine) run under this policy.
            overrides["injector"] = self.injector
            overrides["integrity"] = self.integrity
        engine = make_engine(
            spec, game, req.seed, clock=Clock(), **overrides
        )
        self._install_iteration_hook(req.request_id, engine)
        state = req.state if req.state is not None else game.initial_state()
        slot = _Active(record=record, engine=engine, game=game)
        active[req.request_id] = slot
        resume_from = self._resume_snapshots.pop(req.request_id, None)
        if resume_from is not None:
            engine.restore(resume_from)
        if supports_search_steps(engine):
            before = engine.clock.now
            gen = (
                engine.resume_steps()
                if resume_from is not None
                else engine.search_steps(state, budget_s)
            )
            still_running = gen_pool.add(req.request_id, gen)
            slot.pending_cpu_s = engine.clock.now - before
            if not still_running:
                # Degenerate zero-playout search: done at activation.
                self._finish(
                    record,
                    active,
                    result=gen_pool.results.pop(req.request_id),
                )
        else:
            # Direct path: the whole search runs pinned to one pooled
            # device, occupying its stream for the modelled duration
            # (re-placed onto another healthy device if faults strike).
            result = (
                engine.resume()
                if resume_from is not None
                else engine.search(state, budget_s)
            )
            slot.result = result
            slot.outcome = self.launcher.launch(
                req.request_id,
                lambda _spec: result.elapsed_s,
                label=f"{engine.name}_search",
                lanes=getattr(
                    getattr(engine, "config", None), "total_threads", 0
                ),
                game=req.game,
            )
            if not slot.outcome.delivered:
                # Retry budget exhausted: salvage the computed result,
                # report the request degraded instead of failing it.
                record.degraded = True

    def _install_iteration_hook(self, rid: str, engine: Engine) -> None:
        """Journal periodic checkpoints and fire the planned crash,
        both at clean engine iteration boundaries."""
        checkpointing = (
            self.journal is not None and self.checkpoint_every > 0
        )
        crashing = (
            self.injector is not None
            and self.fault_plan.crash is not None
            and self.fault_plan.crash.site == "iteration"
        )
        if not checkpointing and not crashing:
            return

        def hook(eng: Engine, iterations: int) -> None:
            if checkpointing and iterations % self.checkpoint_every == 0:
                self.journal.checkpoint(
                    rid, iterations, snapshot_bytes(eng.snapshot())
                )
            if crashing and self.injector.crash_due(
                "iteration", iterations
            ):
                raise ServiceCrash(
                    f"planned crash at iteration {iterations} "
                    f"of request {rid!r}"
                )

        engine.iteration_hook = hook

    def _journal_terminal(self, record: RequestRecord) -> None:
        if self.journal is not None:
            self.journal.complete(
                record.request.request_id,
                record.status,
                record.result,
                record.finish_s,
            )

    def _finish(
        self,
        record: RequestRecord,
        active: dict[str, _Active],
        result: SearchResult | None,
        status: str = COMPLETED,
    ) -> None:
        record.status = status
        record.result = result
        record.finish_s = self.clock.now
        active.pop(record.request.request_id, None)
        if (
            status == COMPLETED
            and result is not None
            and self.cache is not None
            and not record.extras.get("cache_hit")
        ):
            req = record.request
            game = self._game(req.game)
            state = (
                req.state
                if req.state is not None
                else game.initial_state()
            )
            self.cache.insert(
                self.cache.key_for(req), state, result, self.clock.now
            )
        self._observe_outcome(record)
        self._journal_terminal(record)
        self._client_outcome(record)

    def _serve_cache_hit(self, record: RequestRecord, entry) -> None:
        """Answer a request straight from the result cache at
        admission: no slot, no queue, no device time -- just the
        modelled lookup/serialisation cost.  A hit whose deadline
        cannot even cover that cost is still a miss (stale deadlines
        do not resurrect)."""
        req = record.request
        now = self.clock.now
        finish = now + CACHE_HIT_COST_S
        record.extras["cache_hit"] = True
        deadline = req.absolute_deadline_s
        if (
            self.enforce_deadlines
            and deadline is not None
            and finish > deadline
        ):
            record.status = MISSED
            record.finish_s = finish
        else:
            record.status = COMPLETED
            record.result = entry.result
            record.start_s = now
            record.finish_s = finish
        self.cache_served += 1
        self._observe_outcome(record)
        self._journal_terminal(record)
        self._client_outcome(record)

    def _client_outcome(self, record: RequestRecord) -> None:
        """Offer one terminal outcome to the closed-loop clients; a
        returned retry joins the arrival stream mid-run.  Retry ids
        already present (a crash-recovered run resubmits journalled
        pre-crash retries) are never injected twice -- the client
        population still observes the outcome, the arrival already
        exists."""
        if self.clients is None or self._arrivals is None:
            return
        retry = self.clients.on_outcome(record, self.clock.now)
        if retry is None or retry.request_id in self._record_ids:
            return
        new_record = RequestRecord(request=retry, status=PENDING)
        idx = len(self._records)
        self._records.append(new_record)
        self._record_ids.add(retry.request_id)
        if (
            self.journal is not None
            and retry.request_id not in self._journal_known
        ):
            self.journal.submit(retry)
            self._journal_known.add(retry.request_id)
        heapq.heappush(self._arrivals, (retry.arrival_s, idx))

    def _observe_outcome(self, record: RequestRecord) -> None:
        """Feed one terminal outcome into the pressure window the
        controller and autoscaler watch."""
        if self._ratio_window is None:
            return
        deadline = record.request.deadline_s
        if record.status == COMPLETED and deadline:
            latency = record.latency_s
            if latency is not None:
                self._ratio_window.append(latency / deadline)
        elif record.status == MISSED:
            penalty = (
                self.overload.miss_penalty
                if self.overload is not None
                else 2.0
            )
            self._ratio_window.append(penalty)

    def _cancel(
        self,
        record: RequestRecord,
        active: dict[str, _Active],
        gen_pool: GeneratorPool,
        status: str,
    ) -> None:
        """Terminate an admitted request without a result (deadline
        miss or load shed), resolving everything it holds: its
        generator leaves the pool and any in-flight direct-path lease
        is abandoned, so :meth:`DevicePool.assert_drained` holds even
        for requests cancelled after admission but before (or between)
        launches."""
        rid = record.request.request_id
        if rid in gen_pool.pending:
            gen_pool.cancel(rid)
        slot = active.get(rid)
        if (
            slot is not None
            and slot.outcome is not None
            and slot.outcome.lease is not None
        ):
            # The host will never wait on a cancelled request's device
            # work; resolve the lease so busy-time accounting drains.
            self.pool.abandon(slot.outcome.lease)
        self._finish(record, active, result=None, status=status)

    def _miss(
        self,
        record: RequestRecord,
        active: dict[str, _Active],
        gen_pool: GeneratorPool,
    ) -> None:
        self._cancel(record, active, gen_pool, MISSED)

    def _shed(
        self,
        record: RequestRecord,
        active: dict[str, _Active],
        gen_pool: GeneratorPool,
    ) -> None:
        self._cancel(record, active, gen_pool, SHED)

    def _reject(self, record: RequestRecord, status: str) -> None:
        """Terminate a request that never got a slot (queue-full
        rejection, shed at admission, or missed while queued)."""
        record.status = status
        record.finish_s = self.clock.now
        self._observe_outcome(record)
        self._journal_terminal(record)
        self._client_outcome(record)

    def run(self) -> list[RequestRecord]:
        """Serve every submitted request to a terminal status."""
        if self._ran:
            raise ServiceError("service already ran; build a new one")
        self._ran = True
        try:
            return self._run_loop()
        except BaseException:
            # A crash -- planned (ServiceCrash) or otherwise -- must
            # not leave device leases dangling: the host will never
            # wait on that work again, so resolve every outstanding
            # lease before propagating.  assert_drained() then holds
            # for crashed runs too.
            for lease in self.pool.unresolved_leases:
                self.pool.abandon(lease)
            raise

    def _run_loop(self) -> list[RequestRecord]:
        # Adopted (already-complete) records from a recovered journal
        # are terminal before the run starts; only pending ones arrive.
        # A heap (keyed exactly like the old sorted deque, so the
        # open-loop pop order is bit-identical) because closed-loop
        # clients inject retries into the arrival stream mid-run.
        arrivals: "list[tuple[float, int]]" = [
            (self._records[i].request.arrival_s, i)
            for i in range(len(self._records))
            if self._records[i].status == PENDING
        ]
        heapq.heapify(arrivals)
        self._arrivals = arrivals
        # Per-priority-class wait queues.  With every request in the
        # default ``standard`` class this is exactly the legacy
        # single FIFO; with classes, dequeue order is strict priority
        # (interactive first), FIFO within class -- or earliest
        # deadline first within class when an overload policy is on.
        queues: "dict[str, deque[RequestRecord]]" = {
            name: deque() for name in PRIORITY_CLASSES
        }
        active: dict[str, _Active] = {}
        gen_pool = GeneratorPool()
        policy = self.overload

        def queued_total() -> int:
            return sum(len(q) for q in queues.values())

        def enqueue(record: RequestRecord) -> None:
            """Admit ``record`` into its class queue, enforcing the
            per-tenant in-class fairness cap: a tenant already holding
            its configured fraction of the queue sheds its worst
            (latest-deadline) member -- possibly the arrival itself --
            to stay under the cap."""
            q = queues[record.request.priority]
            frac = (
                policy.tenant_queue_frac
                if policy is not None
                else None
            )
            tenant = (
                tenant_of(record.request.request_id)
                if frac is not None
                else None
            )
            if tenant is not None:
                cap = max(1, int(frac * self.max_queue))
                members = [
                    r
                    for r in q
                    if tenant_of(r.request.request_id) == tenant
                ]
                if len(members) >= cap:
                    victim = max(
                        members + [record],
                        key=lambda r: (
                            r.request.absolute_deadline_s
                            if r.request.absolute_deadline_s
                            is not None
                            else float("inf"),
                            r.request.arrival_s,
                        ),
                    )
                    victim.extras["fairness_evicted"] = True
                    self.fairness_evictions += 1
                    if victim is record:
                        self._reject(record, SHED)
                        return
                    # Identity scan: RequestRecord equality is by
                    # value, eviction must remove this exact object.
                    for k in range(len(q)):
                        if q[k] is victim:
                            del q[k]
                            break
                    self._reject(victim, SHED)
            record.status = QUEUED
            q.append(record)

        def pop_next() -> RequestRecord | None:
            for name in PRIORITY_CLASSES:
                q = queues[name]
                if not q:
                    continue
                if policy is None:
                    return q.popleft()
                best = min(
                    range(len(q)),
                    key=lambda k: (
                        q[k].request.absolute_deadline_s
                        if q[k].request.absolute_deadline_s
                        is not None
                        else float("inf"),
                        q[k].request.arrival_s,
                        k,
                    ),
                )
                record = q[best]
                del q[best]
                return record
            return None

        def evict_for(priority: str) -> RequestRecord | None:
            """The queued request a full queue sacrifices to admit a
            higher-priority arrival: the worst (latest-deadline)
            member of the lowest-priority non-empty class strictly
            below ``priority``."""
            rank = CLASS_RANK[priority]
            for name in reversed(PRIORITY_CLASSES):
                if CLASS_RANK[name] <= rank:
                    return None
                q = queues[name]
                if not q:
                    continue
                worst = max(
                    range(len(q)),
                    key=lambda k: (
                        q[k].request.absolute_deadline_s
                        if q[k].request.absolute_deadline_s
                        is not None
                        else float("inf"),
                        q[k].request.arrival_s,
                        k,
                    ),
                )
                record = q[worst]
                del q[worst]
                return record
            return None

        def drain(now: float) -> None:
            while queued_total() and len(active) < self.max_active:
                record = pop_next()
                deadline = record.request.absolute_deadline_s
                if (
                    self.enforce_deadlines
                    and deadline is not None
                    and now >= deadline
                ):
                    self._reject(record, MISSED)
                    continue
                self._activate(record, active, gen_pool)

        # Periodic cache age-out on the virtual clock (the cluster
        # sweeps at wave boundaries; a standalone service sweeps on
        # its own cadence -- default one TTL -- so idle lulls actually
        # empty the cache instead of leaving corpses to expire lazily
        # at lookup).
        sweep_every = None
        if self.cache is not None:
            sweep_every = (
                self.cache_sweep_every_s
                if self.cache_sweep_every_s is not None
                else self.cache.ttl_s
            )
        next_sweep = (
            sweep_every if sweep_every is not None else float("inf")
        )

        while arrivals or queued_total() or active:
            now = self.clock.now
            # Idle service: jump to the next arrival.
            if not active and not queued_total() and arrivals:
                next_arrival = arrivals[0][0]
                if next_arrival > now:
                    self.clock.advance_to(next_arrival)
                    now = self.clock.now
            if now >= next_sweep:
                self.cache.sweep(now)
                self.cache_sweeps += 1
                next_sweep = now + sweep_every

            # Admission: activate, queue, shed, or reject in arrival
            # order.  Under a policy every arrival goes through the
            # class queues (no queue-jumping past waiting tenants);
            # without one, arrivals grab free slots directly -- the
            # legacy path, bit-for-bit.
            while arrivals and arrivals[0][0] <= now:
                record = self._records[heapq.heappop(arrivals)[1]]
                priority = record.request.priority
                rid = record.request.request_id
                # Result cache consult: a duplicate position is
                # answered on the spot -- no slot, no queue, no
                # device time.
                if self.cache is not None:
                    entry = self.cache.lookup(
                        self.cache.key_for(record.request), now
                    )
                    if entry is not None:
                        self._serve_cache_hit(record, entry)
                        continue
                # Server-side retry budget: a retry (attempt lineage
                # on the id) must win a token at the front door;
                # first-tries are never charged and refill the bucket.
                if self.retry_budget is not None:
                    if attempt_of(rid) > 0:
                        if not self.retry_budget.spend():
                            record.extras["budget_rejected"] = True
                            self._reject(record, REJECTED)
                            continue
                    else:
                        self.retry_budget.on_first_try()
                level = (
                    self.controller.level
                    if self.controller is not None
                    else 0
                )
                if policy is not None and policy.sheds(
                    level, priority
                ):
                    self._reject(record, SHED)
                elif policy is None and len(active) < self.max_active:
                    self._activate(record, active, gen_pool)
                elif queued_total() < self.max_queue:
                    enqueue(record)
                elif policy is not None:
                    victim = evict_for(priority)
                    if victim is not None:
                        # A full queue sheds its worst lower-class
                        # member to admit the better arrival.
                        self._reject(victim, SHED)
                        enqueue(record)
                    else:
                        self._reject(record, SHED)
                else:
                    self._reject(record, REJECTED)
            drain(now)

            # Deadline enforcement at the tick boundary.
            if self.enforce_deadlines:
                for slot in list(active.values()):
                    deadline = slot.record.request.absolute_deadline_s
                    if deadline is not None and now >= deadline:
                        self._miss(slot.record, active, gen_pool)

            # Direct-path completions: delivered work finishes with its
            # lease; a lost launch chain finishes (degraded) once the
            # host has given up waiting on it.
            for slot in list(active.values()):
                if slot.outcome is None:
                    continue
                lease = slot.outcome.lease
                if lease is not None:
                    if self.pool.complete(lease):
                        self._finish(
                            slot.record, active, result=slot.result
                        )
                elif now >= slot.outcome.ready_s:
                    self._finish(slot.record, active, result=slot.result)

            # Overload control: one pressure observation per
            # scheduling round drives the hysteresis ladder; at the
            # shedding rungs, waiting and not-yet-launched work of
            # sheddable classes is dropped with an explicit SHED (a
            # cancelled generator leaves the pool, an in-flight lease
            # is abandoned -- lease accounting always drains).  The
            # autoscaler watches the same signals on its own cadence.
            if self._ratio_window is not None:
                ratio_p99 = (
                    percentile(list(self._ratio_window), 99)
                    if self._ratio_window
                    else 0.0
                )
                queue_frac = (
                    queued_total() / self.max_queue
                    if self.max_queue > 0
                    else (1.0 if queued_total() else 0.0)
                )
                if self.controller is not None:
                    pressure = max(
                        queue_frac / policy.queue_high,
                        ratio_p99 / policy.headroom_high,
                    )
                    level = self.controller.observe(pressure)
                    shed_rank = policy.shed_rank(level)
                    if shed_rank is not None:
                        for name in PRIORITY_CLASSES:
                            if CLASS_RANK[name] < shed_rank:
                                continue
                            q = queues[name]
                            while q:
                                self._reject(q.popleft(), SHED)
                        for slot in list(active.values()):
                            req = slot.record.request
                            if (
                                CLASS_RANK[req.priority] >= shed_rank
                                and slot.outcome is None
                                and slot.result is None
                            ):
                                self._shed(
                                    slot.record, active, gen_pool
                                )
                        drain(now)
                if self.autoscaler is not None:
                    self.autoscaler.step(now, ratio_p99, queue_frac)

            # Fusion-aware admission (opt-in): a request whose deadline
            # is inside even the cheapest possible merged tick cannot
            # finish this tick -- miss it now instead of packing its
            # lanes into the fused launch.
            if (
                self.fusion_admission
                and self.enforce_deadlines
                and gen_pool.pending
            ):
                floor = (
                    self.batcher.tick_floor_s() + self.tick_overhead_s
                )
                for rid in gen_pool.pending:
                    record = active[rid].record
                    deadline = record.request.absolute_deadline_s
                    if deadline is not None and now + floor > deadline:
                        # Under an escalated overload policy a doomed
                        # non-interactive request is an explicit shed
                        # (the controller chose to drop it mid-tick,
                        # before its lanes hit the fused launch), not
                        # a silent miss.
                        if (
                            policy is not None
                            and self.controller.level >= 1
                            and record.request.priority
                            != "interactive"
                        ):
                            self._shed(record, active, gen_pool)
                        else:
                            self._miss(record, active, gen_pool)

            pending = gen_pool.pending
            if not pending:
                if active:
                    # Only direct-path work in flight: wait for the
                    # earliest ready time (or next arrival if sooner).
                    ready = [
                        slot.outcome.ready_s
                        for slot in active.values()
                        if slot.outcome is not None
                    ]
                    target = min(ready) if ready else None
                    if arrivals:
                        next_arrival = arrivals[0][0]
                        target = (
                            next_arrival
                            if target is None
                            else min(target, next_arrival)
                        )
                    if target is not None:
                        self.clock.advance_to(target)
                    else:  # pragma: no cover - defensive
                        self.clock.advance(self.tick_overhead_s)
                continue

            # --- one merged tick over all generator-driven requests ---
            self.ticks += 1
            if self.injector is not None and self.injector.crash_due(
                "tick", self.ticks
            ):
                raise ServiceCrash(
                    f"planned crash at service tick {self.ticks}"
                )
            per_game_states: dict[str, list] = {}
            spans: dict[str, tuple[str, int, int]] = {}
            for rid in pending:
                reqs = gen_pool.requests_for(rid)
                game_name = active[rid].record.request.game
                states = per_game_states.setdefault(game_name, [])
                lo = len(states)
                states.extend(reqs)
                spans[rid] = (game_name, lo, len(states))
                active[rid].record.ticks += 1
                active[rid].record.lanes += len(reqs)

            # Kernel phase: merged launches, one lane per leaf (one
            # fused padded launch for the whole tick under fusion);
            # the tick waits for every launch it issued.
            answers_by_game, tick_launches = self.batcher.execute_demand(
                per_game_states, spans
            )
            for launch in tick_launches:
                if launch.lease is not None:
                    self.pool.synchronize(launch.lease)
                elif launch.ready_s > self.clock.now:
                    # Lost chain: the host still waited out the retry
                    # storm before giving up on this launch's lanes.
                    self.clock.advance_to(launch.ready_s)

            # Attribute lost lanes to the requests whose leaf spans
            # overlapped the dropped launch chunks; those requests
            # complete with a reduced effective budget.
            lost_spans = [
                span
                for l in tick_launches
                if not l.delivered
                for span in l.spans()
            ]
            if lost_spans:
                for rid in pending:
                    game_name, lo, hi = spans[rid]
                    overlap = sum(
                        min(hi, shi) - max(lo, slo)
                        for sgame, slo, shi in lost_spans
                        if sgame == game_name
                        and min(hi, shi) > max(lo, slo)
                    )
                    if overlap:
                        record = active[rid].record
                        record.lost_lanes += overlap
                        record.degraded = True

            # CPU phase: deliver results; tenants' tree work runs on
            # private cores, so the tick charges the slowest one.
            cpu_s = 0.0
            for rid in pending:
                slot = active[rid]
                game_name, lo, hi = spans[rid]
                before = slot.engine.clock.now
                finished = gen_pool.step(
                    rid, answers_by_game[game_name][lo:hi]
                )
                delta = slot.engine.clock.now - before
                cpu_s = max(cpu_s, slot.pending_cpu_s + delta)
                slot.pending_cpu_s = 0.0
                if finished:
                    slot.result = gen_pool.results.pop(rid)
            self.clock.advance(cpu_s + self.tick_overhead_s)

            # Completions land at the post-tick timestamp.
            for rid in list(active):
                slot = active[rid]
                if slot.outcome is None and slot.result is not None:
                    self._finish(slot.record, active, result=slot.result)

        # Lease-resolution invariant: every launch issued during the
        # run must have been synchronized, completed, or abandoned.
        self.pool.assert_drained()
        self._arrivals = None
        if self.cache is not None and sweep_every is not None:
            self.cache.sweep(self.clock.now)
            self.cache_sweeps += 1
        return list(self._records)

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal_path: "str | Path",
        rid_filter=None,
        **service_kwargs,
    ) -> "SearchService":
        """Rebuild a service from a crashed run's write-ahead journal.

        Pass the same construction kwargs as the original service (the
        journal stores requests and engine checkpoints, not service
        configuration).  Journalled completions are adopted verbatim
        and never re-run (exactly-once); incomplete requests are
        resubmitted, resuming from their latest checkpoint when one
        was journalled.  The plan's scheduled crash is stripped so the
        recovered run cannot crash-loop on the same point.

        ``rid_filter`` -- an optional predicate over request ids --
        scopes recovery to *this node's* requests: in a sharded
        cluster a journal directory can end up holding another shard's
        (prefix-tagged) records after a misrouted append or an
        operator concatenating files.  Foreign requests (and their
        checkpoints/completions) are skipped wholesale and counted in
        :attr:`foreign_records`; they are never adopted, resumed, or
        re-journalled, so the shard that owns them recovers them
        exactly once from its own journal.

        Corruption never crashes recovery and corrupted state is never
        adopted: journal records the reader skipped are counted in
        :attr:`journal_corrupt_records`, and a journalled checkpoint
        whose CRC envelope fails to verify is refused -- its request
        restarts from scratch and :attr:`corrupt_checkpoints` records
        the refusal.
        """
        state = read_journal(journal_path)
        faults = FaultPlan.coerce(service_kwargs.pop("faults", None))
        if faults is not None:
            faults = faults.without_crash()
        service = cls(
            faults=faults,
            journal=JournalWriter(journal_path, append=True),
            **service_kwargs,
        )
        service._journal_known = set(state.requests)
        service.journal_corrupt_records = state.corrupt_records
        for rid, request in state.requests.items():
            if rid_filter is not None and not rid_filter(rid):
                service.foreign_records += 1
                continue
            completion = state.completions.get(rid)
            if completion is not None:
                service._records.append(
                    RequestRecord(
                        request=request,
                        status=completion.status,
                        result=completion.result,
                        finish_s=completion.finish_s,
                    )
                )
                service._record_ids.add(rid)
                service.recovered_requests += 1
                continue
            service.submit(request)
            checkpoint = state.checkpoints.get(rid)
            if checkpoint is not None:
                try:
                    snapshot = checkpoint.snapshot()
                except CheckpointError:
                    # The journalled snapshot rotted on disk: refuse
                    # it (never adopt poisoned state) and restart the
                    # request from scratch, with the damage counted.
                    service.corrupt_checkpoints += 1
                    service.restarted_requests += 1
                else:
                    service._resume_snapshots[rid] = snapshot
                    service.resumed_requests += 1
                    service.recovered_iterations += (
                        checkpoint.iterations
                    )
            else:
                service.restarted_requests += 1
        return service

    # -- reporting ---------------------------------------------------------

    @property
    def records(self) -> list[RequestRecord]:
        return list(self._records)

    def report(self) -> ServiceReport:
        """Aggregate metrics for the finished run."""
        if not self._ran:
            raise ServiceError("run() the service before reporting")
        first_arrival = min(
            (r.request.arrival_s for r in self._records), default=0.0
        )
        elapsed = self.clock.now - first_arrival
        # Integrity counters: merged-launch screening lives on the
        # service's own state; engine-side defenses surface in each
        # result's integrity extras.
        detected = escaped = dropped = quarantined = 0
        if self.integrity_state is not None:
            detected += self.integrity_state.detected
            escaped += self.integrity_state.escaped
            dropped += self.integrity_state.dropped_batches
        for record in self._records:
            if record.result is None:
                continue
            info = record.result.integrity
            detected += info.get("corrupt_detected", 0)
            escaped += info.get("corrupt_escaped", 0)
            dropped += info.get("dropped_batches", 0)
            quarantined += len(info.get("quarantined_trees", ()))
        return summarize(
            self._records,
            elapsed_s=elapsed,
            kernel_launches=self.batcher.launch_count,
            mean_lanes_per_launch=self.batcher.mean_lanes_per_launch,
            fused_launches=self.batcher.fused_launches,
            fusion_pad_lanes=self.batcher.pad_lanes,
            mean_tenants_per_launch=(
                self.batcher.mean_tenants_per_launch
            ),
            device_utilization=self.pool.utilization(self.clock.now),
            retries=self.launcher.retries,
            lost_launches=self.launcher.lost_launches,
            retry_overhead_s=self.launcher.wasted_wait_s,
            faults_injected=(
                self.injector.injected()
                if self.injector is not None
                else {}
            ),
            recovered=self.recovered_requests,
            resumed=self.resumed_requests,
            restarted=self.restarted_requests,
            recovered_iterations=self.recovered_iterations,
            corrupt_detected=detected,
            corrupt_escaped=escaped,
            rejected_results=self.launcher.rejected_results,
            dropped_batches=dropped,
            quarantined_trees=quarantined,
            journal_corrupt=self.journal_corrupt_records,
            checkpoint_corrupt=self.corrupt_checkpoints,
            peak_overload_level=(
                self.controller.peak_level
                if self.controller is not None
                else 0
            ),
            scale_ups=(
                self.autoscaler.scale_ups
                if self.autoscaler is not None
                else 0
            ),
            scale_downs=(
                self.autoscaler.scale_downs
                if self.autoscaler is not None
                else 0
            ),
            peak_devices=(
                self.autoscaler.peak_devices
                if self.autoscaler is not None
                else 0
            ),
            client_suppressed_breaker=(
                self.clients.suppressed_breaker
                if self.clients is not None
                else 0
            ),
            client_suppressed_throttle=(
                self.clients.suppressed_throttle
                if self.clients is not None
                else 0
            ),
            retry_exhausted=(
                self.clients.exhausted_attempts
                if self.clients is not None
                else 0
            ),
            retry_give_ups=(
                self.clients.gave_up
                if self.clients is not None
                else 0
            ),
            breaker_opens=(
                self.clients.breaker_opens
                if self.clients is not None
                else 0
            ),
            breaker_closes=(
                self.clients.breaker_closes
                if self.clients is not None
                else 0
            ),
            budget_granted=(
                self.retry_budget.granted
                if self.retry_budget is not None
                else 0
            ),
            budget_rejected=(
                self.retry_budget.rejected
                if self.retry_budget is not None
                else 0
            ),
            fairness_evictions=self.fairness_evictions,
            cache_hits=(
                self.cache.hits if self.cache is not None else 0
            ),
            cache_misses=(
                self.cache.misses if self.cache is not None else 0
            ),
            cache_evictions=(
                self.cache.evictions if self.cache is not None else 0
            ),
            cache_expirations=(
                self.cache.expirations
                if self.cache is not None
                else 0
            ),
            cache_stale_hits=(
                self.cache.stale_hits
                if self.cache is not None
                else 0
            ),
            cache_sweeps=self.cache_sweeps,
        )


def serve(
    requests: list[SearchRequest], **service_kwargs
) -> tuple[list[RequestRecord], ServiceReport]:
    """One-shot convenience: build, submit, run, report."""
    service = SearchService(**service_kwargs)
    service.submit_all(requests)
    records = service.run()
    return records, service.report()
