"""Resilient kernel launching: timeouts, bounded retry, re-placement.

:class:`ResilientLauncher` wraps a :class:`~repro.gpu.lease.DevicePool`
with the failure-handling policy the serving stack needs to survive a
:class:`~repro.faults.FaultInjector`:

* every launch attempt carries a **timeout** proportional to its
  modelled duration -- a kernel whose results have not arrived by then
  (lost result, pathological stall) is abandoned;
* failed attempts are **retried with exponential backoff**, re-placed
  onto the least-busy *healthy* device (devices that just failed the
  same launch are avoided while alternatives exist);
* launch outcomes feed the pool's health tracking, so repeatedly
  failing devices are quarantined out of placement;
* a launch whose retry budget is exhausted is reported as **lost**,
  not raised -- callers degrade (drop the playout batch, reduce the
  request's effective budget) instead of failing the request.

All of it is modelled in virtual time: failed attempts still occupy
device streams for the spans the fault implies, backed-off retries are
issued at future virtual instants via ``not_before``, and the chain's
``ready_s`` is when the host either has the answer or gives up.

With no injector the launcher is a strict no-op wrapper: one attempt,
identical placement, identical spans -- a no-fault service run is
byte-identical to one built without the resilience layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.faults import (
    KIND_CORRUPT_RESULT,
    KIND_LAUNCH_FAIL,
    KIND_LOST_RESULT,
    KIND_OUTAGE,
    KIND_STALL,
    FaultInjector,
)
from repro.gpu.device import DeviceSpec
from repro.gpu.lease import DeviceLease, DevicePool

#: ``duration_for`` callables map a device spec to the modelled kernel
#: duration on that device (re-placement may change the device).
DurationFor = Callable[[DeviceSpec], float]

#: Attempt fault marker for a stall the host abandoned at its timeout
#: (distinct from an absorbed stall, which still delivers).
KIND_TIMEOUT = "timeout"


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / retry / backoff knobs for resilient launching."""

    #: Retries after the first attempt (total attempts = 1 + retries).
    max_retries: int = 3
    #: First backoff delay; doubles (``backoff_factor``) per retry.
    backoff_base_s: float = 5e-6
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1e-3
    #: Per-launch timeout = max(min_timeout_s, duration * factor).
    timeout_factor: float = 3.0
    min_timeout_s: float = 1e-6
    #: Host-side time to observe an immediate launch failure (the
    #: failing driver call / unreachable device probe).
    fail_detect_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries cannot be negative: {self.max_retries}"
            )
        if self.timeout_factor < 1.0:
            raise ValueError(
                f"timeout factor must be >= 1: {self.timeout_factor}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1: {self.backoff_factor}"
            )

    def timeout_s(self, duration_s: float) -> float:
        return max(self.min_timeout_s, duration_s * self.timeout_factor)

    def backoff_s(self, retry_index: int) -> float:
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor**retry_index,
        )


@dataclass(frozen=True)
class Attempt:
    """One try of a launch chain: where it ran and how it ended."""

    device_id: int
    start_s: float
    #: When the host knew the attempt's fate (completion or detection).
    detect_s: float
    #: Fault kind, or None for a clean attempt.
    fault: str | None = None

    @property
    def failed(self) -> bool:
        return self.fault is not None and self.fault != KIND_STALL


@dataclass(frozen=True)
class LaunchOutcome:
    """The result of one resilient launch chain."""

    holder: str
    label: str
    #: The successful placement, or None if the chain was lost.
    lease: DeviceLease | None
    attempts: tuple[Attempt, ...] = field(default_factory=tuple)
    #: When the host has the results (delivery) or gives up (loss).
    ready_s: float = 0.0

    @property
    def delivered(self) -> bool:
        return self.lease is not None

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def wasted_wait_s(self) -> float:
        """Host time spent waiting on attempts that went nowhere."""
        return sum(
            a.detect_s - a.start_s for a in self.attempts if a.failed
        )


class ResilientLauncher:
    """Fault-aware placement of modelled kernels on a device pool."""

    def __init__(
        self,
        pool: DevicePool,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self.pool = pool
        self.policy = policy if policy is not None else RetryPolicy()
        self.injector = injector
        #: Chain-level aggregates for service metrics.
        self.retries = 0
        self.failed_attempts = 0
        self.lost_launches = 0
        self.wasted_wait_s = 0.0
        #: Deliveries rejected by host-boundary result validation (the
        #: ``screen`` callback) and routed through the retry path.
        self.rejected_results = 0

    def _pick_device(self, avoid: set[int]) -> int:
        """Least-busy healthy device, avoiding ``avoid`` (the devices
        that already failed this chain) while alternatives exist."""
        healthy = self.pool.healthy_ids()
        candidates = [d for d in healthy if d not in avoid]
        if not candidates:
            candidates = healthy or list(range(len(self.pool)))
        return self.pool.least_busy(candidates)

    def launch(
        self,
        holder: str,
        duration_for: DurationFor,
        label: str = "kernel",
        screen: Callable[[], bool] | None = None,
        **trace_args,
    ) -> LaunchOutcome:
        """Run one launch chain to delivery or retry exhaustion.

        ``screen``, when given, is the host-boundary result validator:
        it is called once per *delivered* readback (clean attempts and
        absorbed stalls) and returns True to accept the results.  A
        False return means validation rejected the readback as corrupt
        -- the attempt is treated exactly like a lost result detected
        at delivery time: the lease is abandoned, the device is marked
        failed, and the chain retries with backoff on another device.
        """
        policy = self.policy
        attempts: list[Attempt] = []
        avoid: set[int] = set()
        not_before = 0.0
        for attempt_idx in range(policy.max_retries + 1):
            device_id = self._pick_device(avoid)
            spec = self.pool.spec_of(device_id)
            duration = duration_for(spec)
            timeout = policy.timeout_s(duration)
            issue = max(self.pool.clock.now, not_before)
            fault = (
                self.injector.launch_fault(device_id, issue)
                if self.injector is not None
                else None
            )
            retry_args = (
                {"attempt": attempt_idx} if attempt_idx else {}
            )

            if fault is not None and fault.kind in (
                KIND_LAUNCH_FAIL,
                KIND_OUTAGE,
            ):
                # Immediate failure at the launch API: no device span,
                # just the host-side detection marker.
                detect = issue + policy.fail_detect_s
                self.pool.tracer.record(
                    f"{label}!{fault.kind}",
                    self.pool.track(device_id),
                    issue,
                    detect,
                    holder=holder,
                    fault=fault.kind,
                    attempt=attempt_idx,
                )
                attempts.append(
                    Attempt(device_id, issue, detect, fault.kind)
                )
            elif fault is not None and fault.kind == KIND_STALL:
                stalled = duration * fault.factor
                lease = self.pool.launch(
                    holder,
                    stalled,
                    device_id=device_id,
                    label=label,
                    not_before_s=not_before,
                    fault=KIND_STALL,
                    **retry_args,
                    **trace_args,
                )
                if stalled <= timeout:
                    if screen is None or screen():
                        # Latency spike absorbed within the timeout.
                        self.pool.mark_success(device_id)
                        attempts.append(
                            Attempt(
                                device_id,
                                lease.start_s,
                                lease.end_s,
                                KIND_STALL,
                            )
                        )
                        return self._done(
                            holder, label, lease, attempts, lease.end_s
                        )
                    # Delivered late *and* corrupt: reject at the
                    # delivery instant and retry.
                    self.pool.abandon(lease)
                    self.rejected_results += 1
                    attempts.append(
                        Attempt(
                            device_id,
                            lease.start_s,
                            lease.end_s,
                            KIND_CORRUPT_RESULT,
                        )
                    )
                else:
                    # Stalled past the timeout: abandon, re-place.  The
                    # device stays busy to the stall's end regardless.
                    detect = lease.start_s + timeout
                    self.pool.abandon(lease)
                    attempts.append(
                        Attempt(
                            device_id, lease.start_s, detect, KIND_TIMEOUT
                        )
                    )
            elif fault is not None and fault.kind == KIND_LOST_RESULT:
                # Kernel runs to completion; results never arrive.
                lease = self.pool.launch(
                    holder,
                    duration,
                    device_id=device_id,
                    label=label,
                    not_before_s=not_before,
                    fault=KIND_LOST_RESULT,
                    **retry_args,
                    **trace_args,
                )
                detect = lease.start_s + timeout
                self.pool.abandon(lease)
                attempts.append(
                    Attempt(
                        device_id, lease.start_s, detect, KIND_LOST_RESULT
                    )
                )
            else:
                lease = self.pool.launch(
                    holder,
                    duration,
                    device_id=device_id,
                    label=label,
                    not_before_s=not_before,
                    **retry_args,
                    **trace_args,
                )
                if screen is None or screen():
                    self.pool.mark_success(device_id)
                    attempts.append(
                        Attempt(device_id, lease.start_s, lease.end_s)
                    )
                    return self._done(
                        holder, label, lease, attempts, lease.end_s
                    )
                # The kernel ran and the host read its results back --
                # but validation rejected them.  Same shape as a lost
                # result detected at delivery: abandon and retry.
                self.pool.abandon(lease)
                self.rejected_results += 1
                attempts.append(
                    Attempt(
                        device_id,
                        lease.start_s,
                        lease.end_s,
                        KIND_CORRUPT_RESULT,
                    )
                )

            # Failed attempt: health, stats, backoff, re-place.
            self.pool.mark_failure(device_id)
            self.failed_attempts += 1
            avoid.add(device_id)
            not_before = attempts[-1].detect_s + policy.backoff_s(
                attempt_idx
            )
            if attempt_idx < policy.max_retries:
                self.retries += 1

        self.lost_launches += 1
        return self._done(
            holder, label, None, attempts, attempts[-1].detect_s
        )

    def _done(
        self,
        holder: str,
        label: str,
        lease: DeviceLease | None,
        attempts: list[Attempt],
        ready_s: float,
    ) -> LaunchOutcome:
        outcome = LaunchOutcome(
            holder=holder,
            label=label,
            lease=lease,
            attempts=tuple(attempts),
            ready_s=ready_s,
        )
        self.wasted_wait_s += outcome.wasted_wait_s
        return outcome
