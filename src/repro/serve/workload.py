"""Deterministic load generation for the search service.

Builds mixed workloads -- several games, several engine specs, varied
budgets -- from a single seed, so benchmark runs are exactly
reproducible.  Used by ``python -m repro serve-bench`` and
``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import EngineSpec, with_backend, with_playout
from repro.serve.request import SearchRequest
from repro.util.seeding import derive_seed

#: Engine specs a mixed workload cycles through: CPU generator engines
#: (merged into wide launches) plus a direct-path GPU engine.
MIXED_ENGINES = (
    "sequential",
    "root:4",
    "tree:2",
    "sequential",
    "root:8",
    "block:8x32",
)

#: Games a mixed workload cycles through, with per-game engine budgets
#: (virtual seconds on the request's private engine clock).
MIXED_GAMES = ("reversi", "tictactoe", "connect4")
DEFAULT_BUDGETS = {
    "reversi": 0.004,
    "tictactoe": 0.002,
    "connect4": 0.003,
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one generated workload."""

    n_requests: int = 64
    seed: int = 2011
    games: tuple[str, ...] = MIXED_GAMES
    engines: tuple[str, ...] = MIXED_ENGINES
    #: Scale factor on the per-game default budgets.
    budget_scale: float = 1.0
    #: Request ``i`` arrives at ``i * arrival_period_s`` (0 = all at
    #: once, a closed batch).
    arrival_period_s: float = 0.0
    #: Relative completion deadline on the service clock (None = no
    #: deadline).
    deadline_s: float | None = 2.0
    #: Request-id prefix; ids are ``f"{id_prefix}{i:03d}"`` so several
    #: workloads can share one service without id collisions.
    id_prefix: str = "r"
    #: Tree backend suffixed onto every engine spec (``@arena``);
    #: ``"node"`` leaves the spec strings untouched.
    backend: str = "node"
    #: Playout executor suffixed onto every engine spec
    #: (``@compiled``); ``"numpy"`` leaves the spec strings untouched.
    playout: str = "numpy"

    def __post_init__(self) -> None:
        from repro.core.backend import validate_backend
        from repro.core.executors import validate_playout

        if self.n_requests <= 0:
            raise ValueError(
                f"n_requests must be positive: {self.n_requests}"
            )
        if self.budget_scale <= 0:
            raise ValueError(
                f"budget_scale must be positive: {self.budget_scale}"
            )
        if not self.id_prefix:
            raise ValueError("id_prefix cannot be empty")
        validate_backend(self.backend)
        validate_playout(self.playout)


def make_workload(config: WorkloadConfig) -> list[SearchRequest]:
    """The workload: ``n_requests`` mixed searches, fully determined
    by ``config`` (and therefore by its seed)."""
    requests = []
    for i in range(config.n_requests):
        game = config.games[i % len(config.games)]
        engine = config.engines[i % len(config.engines)]
        if config.backend != "node" or config.playout != "numpy":
            # An explicit @node/@arena/@compiled in the spec wins --
            # and is kept verbatim so request strings stay stable.
            spec = EngineSpec.coerce(engine)
            rewritten = with_playout(
                with_backend(spec, config.backend), config.playout
            )
            if rewritten is not spec:
                engine = rewritten.canonical()
        budget = DEFAULT_BUDGETS[game] * config.budget_scale
        requests.append(
            SearchRequest(
                request_id=f"{config.id_prefix}{i:03d}",
                game=game,
                engine=engine,
                budget_s=budget,
                seed=derive_seed(config.seed, "request", i),
                arrival_s=i * config.arrival_period_s,
                deadline_s=config.deadline_s,
            )
        )
    return requests
