"""Deterministic load generation for the search service.

Builds mixed workloads -- several games, several engine specs, varied
budgets -- from a single seed, so benchmark runs are exactly
reproducible.  Used by ``python -m repro serve-bench`` and
``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.spec import EngineSpec, with_backend, with_playout
from repro.serve.request import SearchRequest
from repro.util.seeding import derive_seed

#: Engine specs a mixed workload cycles through: CPU generator engines
#: (merged into wide launches) plus a direct-path GPU engine.
MIXED_ENGINES = (
    "sequential",
    "root:4",
    "tree:2",
    "sequential",
    "root:8",
    "block:8x32",
)

#: Games a mixed workload cycles through, with per-game engine budgets
#: (virtual seconds on the request's private engine clock).
MIXED_GAMES = ("reversi", "tictactoe", "connect4")
DEFAULT_BUDGETS = {
    "reversi": 0.004,
    "tictactoe": 0.002,
    "connect4": 0.003,
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one generated workload."""

    n_requests: int = 64
    seed: int = 2011
    games: tuple[str, ...] = MIXED_GAMES
    engines: tuple[str, ...] = MIXED_ENGINES
    #: Scale factor on the per-game default budgets.
    budget_scale: float = 1.0
    #: Request ``i`` arrives at ``i * arrival_period_s`` (0 = all at
    #: once, a closed batch).
    arrival_period_s: float = 0.0
    #: Relative completion deadline on the service clock (None = no
    #: deadline).
    deadline_s: float | None = 2.0
    #: Request-id prefix; ids are ``f"{id_prefix}{i:03d}"`` so several
    #: workloads can share one service without id collisions.
    id_prefix: str = "r"
    #: Tree backend suffixed onto every engine spec (``@arena``);
    #: ``"node"`` leaves the spec strings untouched.
    backend: str = "node"
    #: Playout executor suffixed onto every engine spec
    #: (``@compiled``); ``"numpy"`` leaves the spec strings untouched.
    playout: str = "numpy"
    #: Zipf exponent for duplicate-position traffic.  ``0.0`` with no
    #: :attr:`position_pool` keeps the legacy workload (every request
    #: searches its game's initial position).  With a pool, request
    #: positions are drawn from ``position_pool`` deterministic
    #: random-walk positions per game, rank ``r`` weighted
    #: ``1/(r+1)**position_skew`` -- the higher the skew, the more the
    #: traffic concentrates on a few hot positions (what a cluster's
    #: result cache feeds on; see docs/cluster.md).
    position_skew: float = 0.0
    #: Distinct candidate positions per game (0 = legacy
    #: initial-position workload; ``position_skew > 0`` defaults it
    #: to 32).
    position_pool: int = 0

    def __post_init__(self) -> None:
        from repro.core.backend import validate_backend
        from repro.core.executors import validate_playout

        if self.n_requests <= 0:
            raise ValueError(
                f"n_requests must be positive: {self.n_requests}"
            )
        if self.budget_scale <= 0:
            raise ValueError(
                f"budget_scale must be positive: {self.budget_scale}"
            )
        if not self.id_prefix:
            raise ValueError("id_prefix cannot be empty")
        if self.position_skew < 0:
            raise ValueError(
                f"position_skew cannot be negative: "
                f"{self.position_skew}"
            )
        if self.position_pool < 0:
            raise ValueError(
                f"position_pool cannot be negative: "
                f"{self.position_pool}"
            )
        validate_backend(self.backend)
        validate_playout(self.playout)

    @property
    def effective_position_pool(self) -> int:
        if self.position_pool:
            return self.position_pool
        return 32 if self.position_skew > 0 else 0


def _walk_position(game, plies: int, seed: int):
    """The position ``plies`` random moves into one game, stopping
    early at (just before) a terminal position."""
    state = game.initial_state()
    for step in range(plies):
        if game.is_terminal(state):
            break
        moves = game.legal_moves(state)
        state = game.apply(
            state, moves[derive_seed(seed, step) % len(moves)]
        )
        if game.is_terminal(state):
            # Requests must search a live position; back off.
            return _walk_position(game, plies - 1, seed)
    return state


def _position_pool(game_name: str, pool: int, seed: int) -> list:
    """``pool`` deterministic positions of ``game_name`` at mixed
    depths (rank 0 is the initial position -- the hottest key)."""
    from repro.games import make_game

    game = make_game(game_name)
    # Rank 0 is the initial position (the canonical hot key under
    # skew); later ranks walk 2-9 plies deep with per-rank move
    # streams, so they are distinct with overwhelming probability.
    return [
        _walk_position(
            game,
            0 if rank == 0 else 2 + (rank - 1) % 8,
            derive_seed(seed, "position", game_name, rank),
        )
        for rank in range(pool)
    ]


def _zipf_cdf(pool: int, skew: float) -> list[float]:
    weights = [1.0 / (rank + 1) ** skew for rank in range(pool)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def shape_tables(config: WorkloadConfig) -> tuple[dict, list[float]]:
    """The per-game position pools and Zipf CDF one workload shape
    draws from.  Shared with the open-loop trace generator
    (:mod:`repro.serve.overload`), which reuses this machinery for
    request *shape* while supplying its own arrival process."""
    pool = config.effective_position_pool
    positions = (
        {
            name: _position_pool(name, pool, config.seed)
            for name in set(config.games)
        }
        if pool
        else {}
    )
    cdf = _zipf_cdf(pool, config.position_skew) if pool else []
    return positions, cdf


def shape_request(
    config: WorkloadConfig,
    i: int,
    positions: dict,
    cdf: list[float],
) -> tuple:
    """``(game, engine, budget_s, state)`` of request ``i`` under
    ``config``'s shape machinery (game/engine cycling, Zipf position
    skew, backend/playout rewriting)."""
    pool = config.effective_position_pool
    game = config.games[i % len(config.games)]
    engine = config.engines[i % len(config.engines)]
    state = None
    if pool:
        u = derive_seed(config.seed, "zipf", i) / 2.0**64
        rank = min(bisect.bisect_left(cdf, u), pool - 1)
        state = positions[game][rank]
    if config.backend != "node" or config.playout != "numpy":
        # An explicit @node/@arena/@compiled in the spec wins --
        # and is kept verbatim so request strings stay stable.
        spec = EngineSpec.coerce(engine)
        rewritten = with_playout(
            with_backend(spec, config.backend), config.playout
        )
        if rewritten is not spec:
            engine = rewritten.canonical()
    budget = DEFAULT_BUDGETS[game] * config.budget_scale
    return game, engine, budget, state


def make_workload(config: WorkloadConfig) -> list[SearchRequest]:
    """The workload: ``n_requests`` mixed searches, fully determined
    by ``config`` (and therefore by its seed)."""
    requests = []
    positions, cdf = shape_tables(config)
    for i in range(config.n_requests):
        game, engine, budget, state = shape_request(
            config, i, positions, cdf
        )
        requests.append(
            SearchRequest(
                request_id=f"{config.id_prefix}{i:03d}",
                game=game,
                engine=engine,
                budget_s=budget,
                seed=derive_seed(config.seed, "request", i),
                arrival_s=i * config.arrival_period_s,
                deadline_s=config.deadline_s,
                state=state,
            )
        )
    return requests
