"""Applying and detecting silent data corruption in kernel results.

Two result shapes cross the host boundary and both are covered here:

* **Block results** -- the flat ``winners`` array of one
  :class:`~repro.gpu.playout.PlayoutResult` (one int8 winner per SIMT
  lane, grouped by block).  The standalone block-parallel engine
  validates these before backprop.
* **Answers** -- the ``(winner, finish_steps)`` tuples the serving
  stack's merged launches deliver per lane.  The lane batcher screens
  these before handing them back to the generator-protocol engines.

The corruption *applicators* mangle a copy (never the original) exactly
as a :class:`~repro.faults.Corruption` decision dictates; the
*validators* implement the host-boundary result contract: every value
finite, winners in ``{-1, 0, 1}``, playout lengths in ``[0,
MAX_PLIES]``.  Four of the five modes violate that contract and are
detectable per value; ``moveswap`` exchanges two *valid* results
(misattributing playouts to the wrong block/lane) and can only be
caught by the ensemble defenses -- audits, quarantine and the trimmed
vote (see docs/integrity.md).
"""

from __future__ import annotations

import math

import numpy as np

from repro.faults.injector import Corruption

#: Upper bound on a plausible playout length in plies.  Generous (no
#: supported game approaches it) but finite, so overflowed counters are
#: rejected at the boundary.
MAX_PLIES = 1 << 20

#: Winner values the games can produce (white win, draw, black win).
WINNER_DOMAIN = (-1, 0, 1)


def _flip_mask(salt: int) -> int:
    """A single-bit XOR mask guaranteed to knock an int8 winner out of
    ``{-1, 0, 1}``: bits 2..6 turn 0/1/-1 into values of magnitude >= 3."""
    return 1 << (2 + salt % 5)


# -- block results (flat winners array) ---------------------------------------


def apply_block_corruption(
    winners: np.ndarray,
    blocks: int,
    threads_per_block: int,
    corruption: Corruption,
) -> np.ndarray:
    """A corrupted copy of a kernel's flat ``winners`` array.

    ``corruption.lane`` indexes the flat array; ``moveswap`` swaps two
    whole block rows (every winner in block A attributed to block B's
    leaf and vice versa) and is a no-op for single-block grids.
    """
    lane = corruption.lane % winners.shape[0]
    salt = corruption.salt
    mode = corruption.mode
    if mode == "bitflip":
        out = winners.astype(np.int16)
        out[lane] ^= _flip_mask(salt)
    elif mode == "nan":
        out = winners.astype(np.float64)
        out[lane] = np.nan
    elif mode == "negative":
        out = winners.astype(np.int16)
        out[lane] = -(3 + salt % 125)
    elif mode == "overflow":
        out = winners.astype(np.int16)
        out[lane] = 3 + salt % 30000
    elif mode == "moveswap":
        out = winners.copy()
        if blocks > 1:
            b1 = lane // threads_per_block
            b2 = (b1 + 1 + salt % (blocks - 1)) % blocks
            rows = out.reshape(blocks, threads_per_block)
            rows[[b1, b2]] = rows[[b2, b1]]
    else:  # pragma: no cover - plan validation rejects unknown modes
        raise ValueError(f"unknown corruption mode {mode!r}")
    return out


def validate_winners(winners: np.ndarray) -> str | None:
    """The host-boundary contract for a kernel's winners: every value
    finite and in ``{-1, 0, 1}``.  Returns a violation description, or
    None for a clean result."""
    arr = np.asarray(winners)
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        return "non-finite winner value in kernel result"
    if not np.isin(arr, WINNER_DOMAIN).all():
        bad = arr[~np.isin(arr, WINNER_DOMAIN)]
        return f"winner value {bad.flat[0]} outside {{-1, 0, 1}}"
    return None


# -- serving answers (per-lane (winner, plies) tuples) ------------------------


def apply_answer_corruption(
    answers: "list[tuple[int, int]]",
    corruption: Corruption,
) -> "list[tuple[float, float]]":
    """A corrupted copy of a merged launch's per-lane answers."""
    out = [tuple(a) for a in answers]
    lane = corruption.lane % len(out)
    salt = corruption.salt
    mode = corruption.mode
    winner, plies = out[lane]
    if mode == "bitflip":
        out[lane] = (int(winner) ^ _flip_mask(salt), plies)
    elif mode == "nan":
        out[lane] = (float("nan"), plies)
    elif mode == "negative":
        out[lane] = (winner, -1 - int(plies))
    elif mode == "overflow":
        out[lane] = (winner, int(plies) + (1 << 31))
    elif mode == "moveswap":
        if len(out) > 1:
            other = (lane + 1 + salt % (len(out) - 1)) % len(out)
            out[lane], out[other] = out[other], out[lane]
    else:  # pragma: no cover - plan validation rejects unknown modes
        raise ValueError(f"unknown corruption mode {mode!r}")
    return out


def validate_answers(answers: "list[tuple[float, float]]") -> str | None:
    """The host-boundary contract for merged-launch answers: winners
    finite and in the domain, playout lengths finite and in
    ``[0, MAX_PLIES]``."""
    for i, (winner, plies) in enumerate(answers):
        if not (math.isfinite(winner) and math.isfinite(plies)):
            return f"non-finite value in lane {i} answer"
        if winner not in WINNER_DOMAIN:
            return f"lane {i} winner {winner} outside {{-1, 0, 1}}"
        if not 0 <= plies <= MAX_PLIES:
            return f"lane {i} playout length {plies} out of range"
    return None
