"""Silent-data-corruption defense for the parallel MCTS stack.

The fail-stop fault model (launch failures, stalls, lost results,
outages, crashes) assumes a kernel either delivers correct results or
delivers nothing.  At the paper's TSUBAME scale that assumption breaks:
soft errors, bit flips and stale readbacks return *garbage* that, left
unchecked, is backpropagated into a tree and summed straight into the
root vote.  This package is the defense-in-depth layer against exactly
that:

* **Host-boundary validation** (:mod:`repro.integrity.corruption`) --
  every kernel result is checked against the result contract (finite,
  winners in ``{-1, 0, 1}``, playout lengths bounded) before it can
  touch a tree; rejects are retried like lost results.
* **Live audits + quarantine** (:mod:`repro.integrity.audit`) -- an
  amortised round-robin audit of per-tree invariants (win bounds,
  visit conservation via the backend walk) catches corruption that got
  past the boundary or bypassed it entirely (the ``poison=tree:K``
  fault); trees that fail are quarantined out of the aggregation.
* **Byzantine-tolerant voting** -- the ``vote="trimmed"`` mode (in
  :mod:`repro.core.tree`) rejects per-tree outliers before combining,
  so even an *undetected* poisoned tree cannot swing the root vote.
* **Checksummed persistence** -- CRC envelopes on checkpoints
  (:mod:`repro.core.checkpoint`) and journal records
  (:mod:`repro.serve.journal`) turn on-disk corruption into detected,
  counted restarts instead of adopted poisoned state.

See docs/integrity.md for the full design and threat model.
"""

from repro.integrity.audit import IntegrityPolicy, audit_root_stats
from repro.integrity.engine import IntegrityState
from repro.integrity.corruption import (
    MAX_PLIES,
    WINNER_DOMAIN,
    apply_answer_corruption,
    apply_block_corruption,
    validate_answers,
    validate_winners,
)

__all__ = [
    "IntegrityPolicy",
    "IntegrityState",
    "MAX_PLIES",
    "WINNER_DOMAIN",
    "apply_answer_corruption",
    "apply_block_corruption",
    "audit_root_stats",
    "validate_answers",
    "validate_winners",
]
