"""Per-search integrity bookkeeping shared by the multi-tree engines.

One :class:`IntegrityState` lives inside an engine's search session
(created only when a :class:`~repro.faults.FaultInjector` is attached
-- without one the engines skip every integrity code path, which is the
no-injector bit-identity guarantee).  It owns the three ensemble
defenses and their counters:

* **screening** -- applies the injector's corruption decision to a
  kernel result copy, then validates it against the host-boundary
  contract; the engine retries rejected results and degrades to a
  neutral batch when the retry budget runs out;
* **poison + audit + quarantine** -- applies the scheduled
  ``poison=tree:K`` fault, runs the amortised round-robin invariant
  audit (one tree per audit point, plus a final sweep before the
  vote), and tracks which trees are excluded from aggregation;
* **accounting** -- everything surfaces in the engine's result extras
  and rides checkpoints via ``getstate``/``setstate``.
"""

from __future__ import annotations

from repro.integrity.audit import IntegrityPolicy
from repro.integrity.corruption import (
    apply_answer_corruption,
    apply_block_corruption,
    validate_answers,
    validate_winners,
)


class IntegrityState:
    """Defense state for one search session under fault injection."""

    def __init__(self, policy, injector, n_trees: int) -> None:
        self.policy = IntegrityPolicy.coerce(policy)
        self.injector = injector
        self.n_trees = n_trees
        self.quarantined: set[int] = set()
        self.audits = 0
        self.violations = 0
        self.detected = 0
        self.escaped = 0
        self.dropped_batches = 0
        self.poisoned = 0
        self._audit_cursor = 0

    # -- kernel result screening ------------------------------------------

    def screen_block(self, winners, blocks: int, threads_per_block: int):
        """Corrupt (per the injector's decision) then validate one
        kernel's flat winners array.  Returns ``(winners, ok)``; on a
        reject the engine retries the kernel or gives up."""
        corruption = self.injector.result_corruption(winners.shape[0])
        if corruption is not None:
            winners = apply_block_corruption(
                winners, blocks, threads_per_block, corruption
            )
        if self.policy.validate_results:
            if validate_winners(winners) is not None:
                self.detected += 1
                return winners, False
        if corruption is not None:
            self.escaped += 1
        return winners, True

    def screen_answers(self, answers):
        """The per-lane ``(winner, plies)`` counterpart of
        :meth:`screen_block` for generator-protocol playout batches."""
        corruption = self.injector.result_corruption(len(answers))
        if corruption is not None:
            answers = apply_answer_corruption(answers, corruption)
        if self.policy.validate_results:
            if validate_answers(answers) is not None:
                self.detected += 1
                return answers, False
        if corruption is not None:
            self.escaped += 1
        return answers, True

    def give_up(self) -> None:
        """Record one batch degraded to neutral results after the
        reject-retry budget ran out."""
        self.dropped_batches += 1

    # -- poison / audit / quarantine ---------------------------------------

    def poison(self, forest, bonus: float) -> None:
        """Apply the scheduled ``poison=tree:K`` fault, if any."""
        k = self.injector.poison_tree
        if (
            k is not None
            and k < self.n_trees
            and forest.poison_root(k, bonus)
        ):
            self.injector.poison_applied()
            self.poisoned += 1

    def audit(self, forest, iterations: int) -> str | None:
        """Amortised live audit: every ``audit_every`` iterations,
        check one tree's invariants (round-robin, so a full sweep
        costs one tree per audit point)."""
        every = self.policy.audit_every
        if not every or iterations % every:
            return None
        t = self._audit_cursor % self.n_trees
        self._audit_cursor += 1
        return self._audit_one(forest, t)

    def final_sweep(self, forest) -> None:
        """Audit every not-yet-quarantined tree once before the final
        vote -- a short search must not dodge detection just because
        the round-robin never reached the corrupted tree."""
        if not self.policy.audit_every:
            return
        for t in range(self.n_trees):
            if t not in self.quarantined:
                self._audit_one(forest, t)

    def _audit_one(self, forest, t: int) -> str | None:
        self.audits += 1
        reason = forest.audit_tree(t)
        if reason is not None:
            self.violations += 1
            if self.policy.quarantine:
                self.quarantined.add(t)
        return reason

    def keep_indices(self) -> "list[int] | None":
        """Tree indices admitted to the root vote: None (= all trees,
        the untouched fast path) when nothing is quarantined -- or
        when *everything* is, because an empty vote would be worse
        than a suspect one."""
        if not self.quarantined or len(self.quarantined) >= self.n_trees:
            return None
        return [
            i for i in range(self.n_trees) if i not in self.quarantined
        ]

    # -- accounting / checkpointing ----------------------------------------

    def extras(self) -> dict:
        """Counters for the engine's result extras (flat canonical
        ``integrity.*`` keys; ``SearchResult.integrity`` re-exposes
        them under the historical names)."""
        return {
            "integrity.detected": self.detected,
            "integrity.escaped": self.escaped,
            "integrity.dropped_batches": self.dropped_batches,
            "integrity.poisoned": self.poisoned,
            "integrity.audits": self.audits,
            "integrity.violations": self.violations,
            "integrity.quarantined": sorted(self.quarantined),
        }

    def getstate(self) -> dict:
        return {
            "quarantined": sorted(self.quarantined),
            "audits": self.audits,
            "violations": self.violations,
            "detected": self.detected,
            "escaped": self.escaped,
            "dropped_batches": self.dropped_batches,
            "poisoned": self.poisoned,
            "audit_cursor": self._audit_cursor,
        }

    def setstate(self, state: dict) -> None:
        self.quarantined = set(state["quarantined"])
        self.audits = state["audits"]
        self.violations = state["violations"]
        self.detected = state["detected"]
        self.escaped = state["escaped"]
        self.dropped_batches = state["dropped_batches"]
        self.poisoned = state["poisoned"]
        self._audit_cursor = state["audit_cursor"]
