"""Integrity policy and the live tree-statistics audit.

The :class:`IntegrityPolicy` bundles the defense knobs one engine (or
the whole service) runs under: host-boundary result validation with a
bounded retry budget, the amortised per-tree audit cadence, and whether
audit violations quarantine the offending tree out of the root vote.
The default policy has every defense on; ``IntegrityPolicy.disabled()``
is the "no defenses" configuration the differential benchmark compares
against.

:func:`audit_root_stats` is the statistics half of the audit -- the
cheap invariants every clean tree satisfies regardless of backend
(wins bounded by visits, nothing negative or non-finite, root moves
drawn from the legal set).  The structural half (visit conservation,
child-span bookkeeping) lives with the backends: ``TreeArena.validate``
for the arena, a one-level walk for the pointer tree -- see
``audit_tree`` on the forests in :mod:`repro.core.backend`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

#: Slack for float statistics comparisons (draws add 0.5 per playout).
_EPS = 1e-9


@dataclass(frozen=True)
class IntegrityPolicy:
    """How hard one engine / service defends against silent corruption."""

    #: Validate every kernel result at the host boundary before it can
    #: touch a tree; rejects are retried (engines re-run the kernel, the
    #: serving launcher routes through its lost-result retry path).
    validate_results: bool = True
    #: Audit one tree's invariants every this-many iterations
    #: (round-robin over trees, so a full sweep costs one tree per
    #: audit).  0 disables the live audit.
    audit_every: int = 16
    #: Exclude trees that failed an audit from the root-vote
    #: aggregation.
    quarantine: bool = True
    #: How many times a rejected kernel result is retried before the
    #: engine degrades to a neutral (all-draws) batch.
    max_result_retries: int = 3

    def __post_init__(self) -> None:
        if self.audit_every < 0:
            raise ValueError(
                f"audit_every cannot be negative: {self.audit_every}"
            )
        if self.max_result_retries < 0:
            raise ValueError(
                f"max_result_retries cannot be negative: "
                f"{self.max_result_retries}"
            )

    @property
    def active(self) -> bool:
        """Does this policy do anything at all?"""
        return bool(self.validate_results or self.audit_every)

    @classmethod
    def disabled(cls) -> "IntegrityPolicy":
        """Every defense off -- what the differential benchmark runs to
        show the damage corruption does unchecked."""
        return cls(validate_results=False, audit_every=0, quarantine=False)

    @staticmethod
    def coerce(
        policy: "IntegrityPolicy | dict | None",
    ) -> "IntegrityPolicy":
        """Accept a policy, a kwargs dict, or None (-> defaults)."""
        if policy is None:
            return IntegrityPolicy()
        if isinstance(policy, IntegrityPolicy):
            return policy
        if isinstance(policy, dict):
            return replace(IntegrityPolicy(), **policy)
        raise TypeError(
            f"integrity policy must be an IntegrityPolicy, dict or "
            f"None, got {type(policy).__name__}: {policy!r}"
        )


def audit_root_stats(
    stats: "dict[int, tuple[float, float]]",
    legal_moves: "set[int] | frozenset[int] | None" = None,
) -> str | None:
    """Backend-neutral audit of one tree's root statistics.

    Checks, per root move: visits and wins finite, visits non-negative,
    wins within ``[0, visits]`` (the win-bound invariant -- draws count
    half, so wins can never exceed visits in a clean tree), and the
    move inside the root's legal set when one is given.  Returns a
    violation description, or None.
    """
    for move, (visits, wins) in stats.items():
        if not (math.isfinite(visits) and math.isfinite(wins)):
            return f"move {move}: non-finite statistics"
        if visits < 0:
            return f"move {move}: negative visits {visits}"
        if wins < -_EPS:
            return f"move {move}: negative wins {wins}"
        if wins > visits + _EPS:
            return (
                f"move {move}: wins {wins} exceed visits {visits}"
            )
        if legal_moves is not None and move not in legal_moves:
            return f"move {move} outside the root's legal set"
    return None
