"""repro -- reproduction of "Large-Scale Parallel Monte Carlo Tree
Search on GPU" (Rocki & Suda, IEEE IPDPS Workshops 2011).

The paper's block-parallel MCTS, its leaf/root/tree-parallel baselines,
the hybrid CPU/GPU scheme and the multi-GPU MPI version, all running on
a simulated SIMT substrate (virtual Tesla C2050 + virtual cluster) with
real vectorised Reversi playouts.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import make_engine, make_game

    game = make_game("reversi")
    engine = make_engine("block:16x32", game, seed=42)
    result = engine.search(game.initial_state(), budget_s=0.05)
    print(result.move, result.simulations)
"""

from repro.core import (
    BlockParallelMcts,
    EngineSpec,
    HybridMcts,
    LeafParallelMcts,
    MultiGpuMcts,
    RootParallelMcts,
    SearchResult,
    SequentialMcts,
    TreeParallelMcts,
    engine_kinds,
    make_engine,
)
from repro.games import make_batch_game, make_game

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "make_game",
    "make_batch_game",
    "make_engine",
    "EngineSpec",
    "engine_kinds",
    "SearchResult",
    "SequentialMcts",
    "LeafParallelMcts",
    "RootParallelMcts",
    "BlockParallelMcts",
    "HybridMcts",
    "TreeParallelMcts",
    "MultiGpuMcts",
]
