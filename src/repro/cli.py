"""Command-line interface.

::

    python -m repro experiments                 # list experiment ids
    python -m repro run fig5_speed --tier quick # run one, print table
    python -m repro play --engine block:16x32   # GPU MCTS vs greedy
    python -m repro devices                     # virtual device specs
    python -m repro serve-bench --requests 64   # batched service bench
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_experiments(_args) -> int:
    from repro.harness import EXPERIMENTS

    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_run(args) -> int:
    from repro.harness import run_experiment

    t0 = time.perf_counter()
    result = run_experiment(args.name, args.tier)
    print(result.render())
    print(f"\n[{args.name} took {time.perf_counter() - t0:.1f}s wall]")
    return 0


def _cmd_play(args) -> int:
    from repro.arena import play_game
    from repro.core import make_engine
    from repro.games import make_game
    from repro.players import GreedyPlayer, MctsPlayer, RandomPlayer

    game = make_game(args.game)
    spec = args.engine or f"block:{args.blocks}x{args.tpb}"
    if args.backend != "node" or args.playout != "numpy":
        from repro.core import EngineSpec, with_backend
        from repro.core.spec import with_playout

        parsed = EngineSpec.coerce(spec)
        if args.backend != "node" and "backend" not in parsed.params:
            parsed = with_backend(parsed, args.backend)
        if args.playout != "numpy" and "playout" not in parsed.params:
            parsed = with_playout(parsed, args.playout)
        spec = parsed.canonical()
    mcts = MctsPlayer(
        game,
        make_engine(spec, game, args.seed),
        move_budget_s=args.budget,
        name=spec,
    )
    if args.opponent_engine:
        opp_name = args.opponent_engine
        opponent = MctsPlayer(
            game,
            make_engine(args.opponent_engine, game, args.seed + 1),
            move_budget_s=args.budget,
            name=opp_name,
        )
    else:
        opp_name = args.opponent
        opp_cls = (
            GreedyPlayer if args.opponent == "greedy" else RandomPlayer
        )
        opponent = opp_cls(game, args.seed + 1)
    record = play_game(game, mcts, opponent)
    state = game.initial_state()
    for move in record.moves:
        state = game.apply(state, move.move)
    print(game.render(state))
    outcome = {1: f"{spec} wins", -1: f"{opp_name} wins", 0: "draw"}
    print(
        f"\n{outcome[record.winner]} "
        f"(score {record.final_score:+d}, {record.length} plies)"
    )
    return 0 if record.winner >= 0 else 1


def _cmd_devices(_args) -> int:
    from repro.gpu import list_devices

    for spec in list_devices():
        print(
            f"{spec.name}: {spec.sm_count} SMs x "
            f"{spec.max_threads_per_sm} "
            f"threads @ {spec.clock_hz / 1e9:.2f} GHz, "
            f"{spec.global_mem_bytes // 1024**2} MiB"
        )
    return 0


def _budget_scale(args, default: float) -> float:
    """--budget-scale with a per-mode default (the retry-storm
    operating point is calibrated at 0.25; everything else at 1.0)."""
    return default if args.budget_scale is None else args.budget_scale


def _devices(args, default: int) -> int:
    """--devices with a per-mode default (the retry-storm operating
    point is calibrated at 2 devices; everything else at 4)."""
    return default if args.devices is None else args.devices


def _max_active(args, default: int) -> int:
    """--max-active with a per-mode default (the retry-storm
    operating point is calibrated at 16; everything else at 64)."""
    return default if args.max_active is None else args.max_active


def _cmd_serve_bench_storm(args) -> int:
    from repro.serve import (
        FlashCrowd,
        StormConfig,
        TraceConfig,
        WorkloadConfig,
        run_storm,
    )

    t0 = time.perf_counter()
    horizon = (
        0.6 if args.storm_horizon is None else args.storm_horizon
    )
    rate = 450.0 if args.storm_rate is None else args.storm_rate
    crowd = 4.0 if args.storm_crowd is None else args.storm_crowd
    workload = WorkloadConfig(
        seed=args.seed,
        engines=("sequential", "root:2"),
        budget_scale=_budget_scale(args, 1.0),
        backend=args.backend,
        playout=args.playout,
        position_skew=args.skew,
        position_pool=args.position_pool,
    )
    trace = TraceConfig(
        base_rate=rate,
        horizon_s=horizon,
        seed=args.seed,
        components=(
            FlashCrowd(
                start_s=horizon * 0.15,
                duration_s=horizon * 0.5,
                multiplier=crowd,
            ),
        ),
        class_deadline_s=(
            ("interactive", 0.1),
            ("standard", 0.3),
            ("batch", 1.0),
        ),
        workload=workload,
    )
    autoscale = (
        {"max_devices": args.autoscale_max, "scaleup_lag_s": 0.03}
        if args.autoscale_max
        else None
    )
    outcome = run_storm(
        StormConfig(
            trace=trace,
            n_devices=_devices(args, 4),
            max_active=_max_active(args, 64),
            seed=args.seed,
            overload=None if args.no_overload else True,
            autoscale=autoscale,
            faults=args.faults,
            journal=args.journal,
        )
    )
    defended = "undefended" if args.no_overload else "defended"
    print(
        f"--- storm: {len(outcome.requests)} arrivals over "
        f"{horizon:.2f}s, {crowd:.0f}x flash crowd, "
        f"{defended} ---"
    )
    print(outcome.report.render(f"storm run ({defended})"))
    if outcome.crashes:
        print(
            f"crashes: {outcome.crashes}  recoveries: "
            f"{outcome.recoveries}  MTTR: {outcome.mttr_s:.4f}s"
        )
    print(
        f"[serve-bench took {time.perf_counter() - t0:.1f}s wall]"
    )
    return 0


def _cmd_serve_bench_retry_storm(args) -> int:
    from repro.serve import (
        FlashCrowd,
        StormConfig,
        TraceConfig,
        WorkloadConfig,
        post_crowd_attainment,
        run_storm,
    )

    t0 = time.perf_counter()
    # Calibrated retry-storm operating point (see
    # benchmarks/REPORT_retrystorm.md): base load sustainable, crowd
    # 10x, deadlines just above the healthy tail.
    horizon = (
        1.0 if args.storm_horizon is None else args.storm_horizon
    )
    rate = 150.0 if args.storm_rate is None else args.storm_rate
    crowd = 10.0 if args.storm_crowd is None else args.storm_crowd
    crowd_start = horizon * 0.1
    crowd_duration = horizon * 0.3
    trace = TraceConfig(
        base_rate=rate,
        horizon_s=horizon,
        seed=args.seed,
        components=(
            FlashCrowd(
                start_s=crowd_start,
                duration_s=crowd_duration,
                multiplier=crowd,
            ),
        ),
        class_deadline_s=(
            ("interactive", 0.1),
            ("standard", 0.2),
            ("batch", 0.4),
        ),
        workload=WorkloadConfig(
            seed=args.seed,
            engines=("sequential", "root:2"),
            budget_scale=_budget_scale(args, 0.25),
            backend=args.backend,
            playout=args.playout,
        ),
    )
    clients = dict(
        retry=dict(
            kind=args.retry_kind,
            base_s=args.retry_base,
            cap_s=max(args.retry_base * 8, args.retry_base),
            jitter=0.3,
            max_attempts=args.retry_attempts,
            give_up_s=(
                ("interactive", 2.0),
                ("standard", 3.0),
                ("batch", 4.0),
            ),
        ),
        seed=args.seed if args.client_seed is None else args.client_seed,
    )
    if not args.no_breaker:
        clients["breaker"] = dict(
            failure_threshold=5, reset_timeout_s=0.1
        )
    if not args.no_throttle:
        clients["throttle"] = dict(k=1.5, window=64)
    outcome = run_storm(
        StormConfig(
            trace=trace,
            n_devices=_devices(args, 2),
            max_active=_max_active(args, 16),
            max_queue=64,
            seed=args.seed,
            overload=(
                None
                if args.no_overload
                else dict(
                    max_level=3,
                    window=16,
                    release=0.6,
                    deescalate_after=3,
                )
            ),
            retry_budget=(
                None
                if args.no_budget
                else dict(
                    fill_per_first_try=0.1, cap=10.0, initial=2.0
                )
            ),
            clients=clients,
            detector=dict(
                bin_s=0.05,
                settle_s=0.1,
                goodput_frac=0.5,
                min_offered_rate=40.0,
            ),
        )
    )
    report = outcome.report
    defended = "undefended" if args.no_overload else "defended"
    print(
        f"--- retry storm: {report.first_tries} first tries + "
        f"{report.retries_offered} retries over {horizon:.2f}s, "
        f"{crowd:.0f}x flash crowd, {defended} ---"
    )
    print(report.render(f"retry storm ({defended})"))
    verdict = outcome.metastability
    clear_s = crowd_start + crowd_duration + 0.1
    attainment = post_crowd_attainment(outcome.records, clear_s)
    state = "TRAPPED" if verdict.trapped else "recovered"
    print(
        f"metastability: {state} "
        f"({verdict.trapped_bins} consecutive trapped bins, "
        f"post-crowd goodput/offered {verdict.goodput_ratio:.2f}, "
        f"post-crowd interactive SLO {attainment:.0%})"
    )
    print(
        f"[serve-bench took {time.perf_counter() - t0:.1f}s wall]"
    )
    return 0


def _cmd_serve_bench_cluster(args) -> int:
    from repro.serve import ClusterRouter, WorkloadConfig, make_workload

    t0 = time.perf_counter()
    for load in args.loads:
        workload = make_workload(
            WorkloadConfig(
                n_requests=load,
                seed=args.seed,
                budget_scale=_budget_scale(args, 1.0),
                deadline_s=args.deadline,
                backend=args.backend,
                playout=args.playout,
                position_skew=args.skew,
                position_pool=args.position_pool,
            )
        )
        cluster = ClusterRouter(
            n_shards=args.cluster,
            replicas=args.replicas,
            seed=args.seed,
            cache=not args.no_cache,
            journal_dir=args.journal,
            n_devices=_devices(args, 4),
            max_active=_max_active(args, 64),
            faults=args.faults,
            backend=args.backend,
            playout=args.playout,
            fusion=not args.no_fusion,
        )
        cluster.submit_all(workload)
        cluster.run()
        print(f"--- offered load: {load} requests ---")
        print(cluster.report().render())
        print()
    print(
        f"[serve-bench took {time.perf_counter() - t0:.1f}s wall]"
    )
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.gpu.trace import Tracer
    from repro.serve import (
        SearchService,
        ServiceCrash,
        WorkloadConfig,
        make_workload,
    )

    from repro.util.profile import NULL_PROFILER, Profiler

    if args.retry_storm:
        for flag, name in (
            (args.resume, "--resume"),
            (args.trace_out, "--trace-out"),
            (args.profile, "--profile"),
            (args.no_defenses, "--no-defenses"),
            (args.cluster, "--cluster"),
            (args.storm, "--storm"),
            (args.faults, "--faults"),
            (args.journal, "--journal"),
        ):
            if flag:
                print(
                    f"serve-bench: {name} is not supported with "
                    f"--retry-storm",
                    file=sys.stderr,
                )
                return 2
        return _cmd_serve_bench_retry_storm(args)
    if args.storm:
        for flag, name in (
            (args.resume, "--resume"),
            (args.trace_out, "--trace-out"),
            (args.profile, "--profile"),
            (args.no_defenses, "--no-defenses"),
            (args.cluster, "--cluster"),
        ):
            if flag:
                print(
                    f"serve-bench: {name} is not supported with "
                    f"--storm",
                    file=sys.stderr,
                )
                return 2
        return _cmd_serve_bench_storm(args)
    if args.cluster:
        for flag, name in (
            (args.resume, "--resume"),
            (args.trace_out, "--trace-out"),
            (args.profile, "--profile"),
            (args.no_defenses, "--no-defenses"),
        ):
            if flag:
                print(
                    f"serve-bench: {name} is not supported with "
                    f"--cluster",
                    file=sys.stderr,
                )
                return 2
        return _cmd_serve_bench_cluster(args)
    if args.resume and not args.journal:
        print("serve-bench: --resume requires --journal", file=sys.stderr)
        return 2
    if args.journal and len(args.loads) > 1:
        print(
            "serve-bench: --journal tracks one run; give a single --loads",
            file=sys.stderr,
        )
        return 2
    tracer = Tracer() if args.trace_out else None
    t0 = time.perf_counter()
    for load in args.loads:
        profiler = Profiler() if args.profile else NULL_PROFILER
        with profiler.phase("build_workload"):
            integrity = None
            if args.no_defenses:
                from repro.integrity import IntegrityPolicy

                integrity = IntegrityPolicy.disabled()
            service_kwargs = dict(
                n_devices=_devices(args, 4),
                max_active=_max_active(args, 64),
                seed=args.seed,
                tracer=tracer,
                faults=args.faults,
                backend=args.backend,
                playout=args.playout,
                fusion=not args.no_fusion,
                integrity=integrity,
            )
            if args.resume:
                # Requests (and any checkpoints) come from the journal;
                # planned crashes are stripped so recovery completes.
                service = SearchService.recover(
                    args.journal,
                    checkpoint_every=args.checkpoint_every,
                    **service_kwargs,
                )
            else:
                service = SearchService(
                    journal=args.journal,
                    checkpoint_every=args.checkpoint_every,
                    **service_kwargs,
                )
                service.submit_all(
                    make_workload(
                        WorkloadConfig(
                            n_requests=load,
                            seed=args.seed,
                            budget_scale=_budget_scale(args, 1.0),
                            deadline_s=args.deadline,
                            backend=args.backend,
                            playout=args.playout,
                            position_skew=args.skew,
                            position_pool=args.position_pool,
                        )
                    )
                )
        with profiler.phase("service_run"):
            try:
                service.run()
            except ServiceCrash as crash:
                print(f"--- offered load: {load} requests ---")
                print(f"service crashed: {crash}")
                print(
                    f"journal preserved at {args.journal}; rerun with "
                    "--resume to finish the interrupted work"
                )
                return 3
        profiler.count("requests", load)
        profiler.count("ticks", service.ticks)
        print(f"--- offered load: {load} requests ---")
        print(service.report().render())
        if profiler.enabled:
            print()
            print(profiler.render(title=f"serve-bench load={load}"))
        print()
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fp:
            tracer.dump(fp)
        print(f"trace written to {args.trace_out}")
    print(f"[serve-bench took {time.perf_counter() - t0:.1f}s wall]")
    return 0


def _fault_plan(text: str):
    """Parse ``--faults`` into a validated plan at argparse time."""
    from repro.faults import FaultPlan, FaultPlanError

    try:
        return FaultPlan.parse(text)
    except FaultPlanError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _load_list(text: str) -> tuple[int, ...]:
    """Parse ``--loads``: comma-separated positive request counts."""
    try:
        loads = tuple(int(x) for x in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not loads or any(n <= 0 for n in loads):
        raise argparse.ArgumentTypeError(
            f"loads must be positive integers, got {text!r}"
        )
    return loads


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Large-Scale Parallel MCTS on GPU' "
            "(Rocki & Suda, IPDPS 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "experiments", help="list experiment ids"
    ).set_defaults(func=_cmd_experiments)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("name")
    run.add_argument(
        "--tier", choices=("quick", "default", "full"), default=None
    )
    run.set_defaults(func=_cmd_run)

    play = sub.add_parser(
        "play", help="play one game: an engine spec vs a baseline"
    )
    play.add_argument("--game", default="reversi")
    play.add_argument(
        "--engine",
        default=None,
        help=(
            "engine spec, e.g. block:16x32, root:64, sequential "
            "(default: block:BLOCKSxTPB)"
        ),
    )
    play.add_argument(
        "--opponent-engine",
        default=None,
        help="engine spec for the opponent (overrides --opponent)",
    )
    play.add_argument(
        "--opponent", choices=("greedy", "random"), default="greedy"
    )
    play.add_argument("--blocks", type=int, default=16)
    play.add_argument("--tpb", type=int, default=32)
    play.add_argument("--budget", type=float, default=0.02)
    play.add_argument("--seed", type=int, default=2011)
    play.add_argument(
        "--backend",
        choices=("node", "arena"),
        default="node",
        help="tree backend for the engine (@suffix in a spec wins)",
    )
    play.add_argument(
        "--playout",
        choices=("numpy", "compiled"),
        default="numpy",
        help=(
            "playout executor (@compiled in a spec wins); 'compiled' "
            "falls back to numpy without a C toolchain"
        ),
    )
    play.set_defaults(func=_cmd_play)

    sub.add_parser(
        "devices", help="list virtual device specs"
    ).set_defaults(func=_cmd_devices)

    bench = sub.add_parser(
        "serve-bench",
        help="load-generate the batched search service, print metrics",
    )
    bench.add_argument(
        "--loads",
        type=_load_list,
        default=(64,),
        help="comma-separated offered loads (requests per run)",
    )
    bench.add_argument("--devices", type=int, default=None)
    bench.add_argument("--max-active", type=int, default=None)
    bench.add_argument(
        "--budget-scale",
        type=float,
        default=None,
        help=(
            "scale per-request search budgets (default 1.0; "
            "0.25 with --retry-storm, its calibrated operating "
            "point)"
        ),
    )
    bench.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="relative per-request deadline in virtual seconds",
    )
    bench.add_argument("--seed", type=int, default=2011)
    bench.add_argument(
        "--faults",
        type=_fault_plan,
        default=None,
        metavar="PLAN",
        help=(
            "inject deterministic faults, e.g. "
            "'launch=0.1,lost=0.05,stall=0.02x8,outage=1@0.5+0.2,"
            "corrupt=0.05:bitflip,disk=0.1,seed=7'"
        ),
    )
    bench.add_argument(
        "--no-defenses",
        action="store_true",
        help=(
            "disable the integrity defenses (result validation, tree "
            "audits, quarantine) -- corruption flows through unchecked; "
            "for measuring what the defenses buy"
        ),
    )
    bench.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "write-ahead request journal (JSONL); with a crash fault "
            "the journal survives the outage for --resume"
        ),
    )
    bench.add_argument(
        "--resume",
        action="store_true",
        help=(
            "recover from --journal instead of generating a workload: "
            "adopt completed requests, resume checkpointed ones"
        ),
    )
    bench.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        metavar="N",
        help="journal an engine snapshot every N iterations (0 = off)",
    )
    bench.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace JSON of the run to this path",
    )
    bench.add_argument(
        "--backend",
        choices=("node", "arena"),
        default="node",
        help="tree backend applied to every engine in the workload",
    )
    bench.add_argument(
        "--playout",
        choices=("numpy", "compiled"),
        default="numpy",
        help="playout executor applied to every engine in the workload",
    )
    bench.add_argument(
        "--no-fusion",
        action="store_true",
        help=(
            "disable cross-tenant kernel fusion (one launch per game "
            "per tick instead of one fused launch per tick)"
        ),
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="print a wall-clock phase profile per offered load",
    )
    bench.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve through an N-shard cluster (consistent-hash "
            "routing + Zobrist result cache) instead of one service; "
            "--journal then names a per-shard journal directory"
        ),
    )
    bench.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help=(
            "with --cluster: fan each request out to R shards and "
            "vote the results (trimmed mean)"
        ),
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="with --cluster: disable the cluster-wide result cache",
    )
    bench.add_argument(
        "--skew",
        type=float,
        default=0.0,
        metavar="S",
        help=(
            "Zipf exponent for duplicate-position traffic "
            "(0 = every request searches the initial position)"
        ),
    )
    bench.add_argument(
        "--position-pool",
        type=int,
        default=0,
        metavar="P",
        help=(
            "candidate positions per game for skewed traffic "
            "(0 = 32 when --skew is set)"
        ),
    )
    bench.add_argument(
        "--storm",
        action="store_true",
        help=(
            "fire an open-loop flash-crowd storm (Poisson arrivals, "
            "priority classes, overload controller) instead of the "
            "closed workload; see docs/overload.md"
        ),
    )
    bench.add_argument(
        "--storm-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "with --storm / --retry-storm: baseline arrival rate "
            "(requests/s; default 450 storm, 150 retry-storm)"
        ),
    )
    bench.add_argument(
        "--storm-horizon",
        type=float,
        default=None,
        metavar="S",
        help=(
            "with --storm / --retry-storm: trace horizon in virtual "
            "seconds (default 0.6 storm, 1.0 retry-storm)"
        ),
    )
    bench.add_argument(
        "--storm-crowd",
        type=float,
        default=None,
        metavar="M",
        help=(
            "with --storm / --retry-storm: flash-crowd rate "
            "multiplier (default 4 storm, 10 retry-storm)"
        ),
    )
    bench.add_argument(
        "--retry-storm",
        action="store_true",
        help=(
            "fire a closed-loop retry storm: every shed/rejected/"
            "missed outcome is retried by seeded clients, and the "
            "defense stack (ladder + retry budget + breakers + "
            "throttle) is measured against the metastable trap; see "
            "docs/overload.md"
        ),
    )
    bench.add_argument(
        "--retry-kind",
        choices=("none", "immediate", "fixed", "exponential"),
        default="exponential",
        help="with --retry-storm: client backoff kind",
    )
    bench.add_argument(
        "--retry-attempts",
        type=int,
        default=10,
        metavar="N",
        help="with --retry-storm: max attempts per request lineage",
    )
    bench.add_argument(
        "--retry-base",
        type=float,
        default=0.02,
        metavar="S",
        help="with --retry-storm: base backoff in virtual seconds",
    )
    bench.add_argument(
        "--client-seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --retry-storm: seed for the client population's "
            "jitter/throttle streams (default: --seed)"
        ),
    )
    bench.add_argument(
        "--no-breaker",
        action="store_true",
        help=(
            "with --retry-storm: disable the per-client circuit "
            "breakers"
        ),
    )
    bench.add_argument(
        "--no-throttle",
        action="store_true",
        help=(
            "with --retry-storm: disable client-side adaptive "
            "throttling"
        ),
    )
    bench.add_argument(
        "--no-budget",
        action="store_true",
        help=(
            "with --retry-storm: disable the server-side retry "
            "budget (token-bucket admission for retries)"
        ),
    )
    bench.add_argument(
        "--no-overload",
        action="store_true",
        help=(
            "with --storm: run undefended (no admission control, "
            "no shedding) -- for measuring what the ladder buys"
        ),
    )
    bench.add_argument(
        "--autoscale-max",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --storm: let the autoscaler grow the device fleet "
            "up to N devices (0 = fixed fleet)"
        ),
    )
    bench.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
