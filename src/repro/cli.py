"""Command-line interface.

::

    python -m repro experiments                 # list experiment ids
    python -m repro run fig5_speed --tier quick # run one, print table
    python -m repro play --blocks 16 --tpb 32   # GPU MCTS vs greedy
    python -m repro devices                     # virtual device specs
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_experiments(_args) -> int:
    from repro.harness import EXPERIMENTS

    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_run(args) -> int:
    from repro.harness import run_experiment

    t0 = time.perf_counter()
    result = run_experiment(args.name, args.tier)
    print(result.render())
    print(f"\n[{args.name} took {time.perf_counter() - t0:.1f}s wall]")
    return 0


def _cmd_play(args) -> int:
    from repro.arena import play_game
    from repro.core import BlockParallelMcts
    from repro.games import make_game
    from repro.players import GreedyPlayer, MctsPlayer, RandomPlayer

    game = make_game(args.game)
    mcts = MctsPlayer(
        game,
        BlockParallelMcts(
            game,
            args.seed,
            blocks=args.blocks,
            threads_per_block=args.tpb,
        ),
        move_budget_s=args.budget,
        name="gpu-mcts",
    )
    opp_cls = GreedyPlayer if args.opponent == "greedy" else RandomPlayer
    opponent = opp_cls(game, args.seed + 1)
    record = play_game(game, mcts, opponent)
    state = game.initial_state()
    for move in record.moves:
        state = game.apply(state, move.move)
    print(game.render(state))
    outcome = {1: "MCTS wins", -1: f"{args.opponent} wins", 0: "draw"}
    print(
        f"\n{outcome[record.winner]} "
        f"(score {record.final_score:+d}, {record.length} plies)"
    )
    return 0 if record.winner >= 0 else 1


def _cmd_devices(_args) -> int:
    from repro.gpu.device import _REGISTRY

    for name, spec in sorted(_REGISTRY.items()):
        print(
            f"{name}: {spec.sm_count} SMs x {spec.max_threads_per_sm} "
            f"threads @ {spec.clock_hz / 1e9:.2f} GHz, "
            f"{spec.global_mem_bytes // 1024**2} MiB"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Large-Scale Parallel MCTS on GPU' "
            "(Rocki & Suda, IPDPS 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "experiments", help="list experiment ids"
    ).set_defaults(func=_cmd_experiments)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("name")
    run.add_argument(
        "--tier", choices=("quick", "default", "full"), default=None
    )
    run.set_defaults(func=_cmd_run)

    play = sub.add_parser(
        "play", help="play one game: block-parallel MCTS vs a baseline"
    )
    play.add_argument("--game", default="reversi")
    play.add_argument(
        "--opponent", choices=("greedy", "random"), default="greedy"
    )
    play.add_argument("--blocks", type=int, default=16)
    play.add_argument("--tpb", type=int, default=32)
    play.add_argument("--budget", type=float, default=0.02)
    play.add_argument("--seed", type=int, default=2011)
    play.set_defaults(func=_cmd_play)

    sub.add_parser(
        "devices", help="list virtual device specs"
    ).set_defaults(func=_cmd_devices)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
