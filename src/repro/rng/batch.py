"""Vectorised xorshift128+ with one stream per SIMT lane.

The batched playout kernels advance thousands of independent games in
lockstep; each lane needs its own PRNG state exactly as each CUDA thread
in the paper's kernel owns a private generator.  All lanes step together
with NumPy uint64 arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.util.bitops import U64
from repro.util.seeding import derive_seed

_S23 = U64(23)
_S17 = U64(17)
_S26 = U64(26)
_S53 = U64(11)  # top 53 bits for float conversion: shift right by 11


def _splitmix64_vec(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser (seeding only)."""
    with np.errstate(over="ignore"):
        z = x + U64(0x9E37_79B9_7F4A_7C15)
        z = (z ^ (z >> U64(30))) * U64(0xBF58_476D_1CE4_E5B9)
        z = (z ^ (z >> U64(27))) * U64(0x94D0_49BB_1331_11EB)
        return z ^ (z >> U64(31))


def _lane_states(
    seed: int, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Initial ``(s0, s1)`` state arrays for lanes ``lo..hi`` of
    ``seed``'s stream family.  Lane ``i``'s state depends only on
    ``(seed, i)``, so any contiguous range reproduces exactly the
    matching slice of a full-width generator."""
    base = U64(derive_seed(seed))
    lanes = np.arange(lo, hi, dtype=U64)
    s0 = _splitmix64_vec(base + lanes * U64(2))
    s1 = _splitmix64_vec(base + lanes * U64(2) + U64(1))
    # xorshift128+ must never start at the all-zero state.
    dead = (s0 == 0) & (s1 == 0)
    if dead.any():
        s1[dead] = U64(0x9E37_79B9_7F4A_7C15)
    return s0, s1


class BatchXorShift128Plus:
    """``n`` parallel xorshift128+ streams.

    Parameters
    ----------
    n:
        Number of lanes (one per simulated GPU thread).
    seed:
        Root seed; lane ``i`` is seeded with ``derive_seed(seed, i)``
        for the low word and ``derive_seed(seed, i, 1)`` for the high
        word, so lanes never share state.
    """

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ValueError(f"need at least one lane, got {n}")
        self._n = n
        # Vectorised splitmix64 seeding: lane i's state depends only on
        # (seed, i), so a width-4 generator produces the same first four
        # streams as a width-4096 one.
        self._s0, self._s1 = _lane_states(seed, 0, n)

    @classmethod
    def for_lanes(
        cls, seed: int, lo: int, hi: int
    ) -> "BatchXorShift128Plus":
        """Streams ``lo..hi`` of ``seed``'s lane family.

        Exactly the ``[lo:hi]`` slice of a full-width generator's
        lanes, without materialising the prefix -- this is what lets a
        chunked (or fused, or padded) launch assign lane ``i`` of a
        merged batch its geometry-independent stream no matter how the
        batch was split across kernels.
        """
        if lo < 0 or hi <= lo:
            raise ValueError(
                f"need a non-empty lane range, got [{lo}, {hi})"
            )
        rng = object.__new__(cls)
        rng._n = hi - lo
        rng._s0, rng._s1 = _lane_states(seed, lo, hi)
        return rng

    @property
    def n(self) -> int:
        return self._n

    def next_u64(self) -> np.ndarray:
        """One raw 64-bit output per lane (shape ``(n,)``)."""
        s1 = self._s0
        s0 = self._s1
        result = s0 + s1
        s1 = s1 ^ (s1 << _S23)
        self._s0 = s0
        self._s1 = s1 ^ s0 ^ (s1 >> _S17) ^ (s0 >> _S26)
        return result

    def random(self) -> np.ndarray:
        """One uniform float64 in ``[0, 1)`` per lane."""
        return (self.next_u64() >> _S53) * (1.0 / (1 << 53))

    def randbelow(self, bounds: np.ndarray) -> np.ndarray:
        """Per-lane uniform integer in ``[0, bounds[i])``.

        Lanes with ``bounds[i] == 0`` return 0 (callers mask those lanes
        out; this mirrors how diverged GPU lanes execute but discard).
        Uses the multiply-shift reduction on the high 32 bits, which is
        exact enough for bounds up to a few thousand.
        """
        bounds = np.asarray(bounds)
        r32 = (self.next_u64() >> np.uint64(32)).astype(np.uint64)
        return ((r32 * bounds.astype(np.uint64)) >> np.uint64(32)).astype(
            np.int64
        )

    def select(self, mask: np.ndarray) -> "BatchXorShift128Plus":
        """A generator holding only the lanes where ``mask`` is true.

        Used when a lockstep batch compacts away finished lanes: the
        surviving lanes keep their exact streams.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n,):
            raise ValueError(
                f"mask shape {mask.shape} does not match lane count "
                f"{self._n}"
            )
        if not mask.any():
            raise ValueError("cannot select zero lanes")
        child = object.__new__(BatchXorShift128Plus)
        child._n = int(mask.sum())
        child._s0 = self._s0[mask]
        child._s1 = self._s1[mask]
        return child

    # -- checkpointing -------------------------------------------------------

    def getstate(self) -> tuple[int, np.ndarray, np.ndarray]:
        """``(n, s0, s1)`` with copied state arrays; feed to
        :meth:`setstate`/:meth:`from_state` to resume every lane's
        stream exactly where it left off."""
        return (self._n, self._s0.copy(), self._s1.copy())

    def setstate(
        self, state: tuple[int, np.ndarray, np.ndarray]
    ) -> None:
        n, s0, s1 = state
        s0 = np.asarray(s0, dtype=U64)
        s1 = np.asarray(s1, dtype=U64)
        if n <= 0 or s0.shape != (n,) or s1.shape != (n,):
            raise ValueError(
                f"invalid xorshift128+ state: n={n}, "
                f"shapes {s0.shape}/{s1.shape}"
            )
        self._n = int(n)
        self._s0 = s0.copy()
        self._s1 = s1.copy()

    @classmethod
    def from_state(
        cls, state: tuple[int, np.ndarray, np.ndarray]
    ) -> "BatchXorShift128Plus":
        """A generator resumed from a :meth:`getstate` triple."""
        rng = object.__new__(cls)
        rng.setstate(state)
        return rng

    def state_digest(self) -> int:
        """A cheap checksum of all lane states (for regression tests)."""
        return int(
            (np.bitwise_xor.reduce(self._s0) << np.uint64(1))
            ^ np.bitwise_xor.reduce(self._s1)
        )
