"""Scalar xorshift64* generator for CPU-side engines."""

from __future__ import annotations

from repro.util.seeding import derive_seed

_MASK = 0xFFFF_FFFF_FFFF_FFFF
_MULT = 0x2545_F491_4F6C_DD1D


class XorShift64Star:
    """Marsaglia's xorshift64* -- 8 bytes of state, passes BigCrush's
    smaller batteries, and cheap enough that the RNG never dominates a
    playout.

    Parameters
    ----------
    seed:
        Any integer; it is mixed through splitmix64 so low-entropy seeds
        (0, 1, 2, ...) still give well-spread initial states.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = derive_seed(seed) or 1

    def next_u64(self) -> int:
        """The next raw 64-bit output."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK
        x ^= (x >> 27)
        self._state = x
        return (x * _MULT) & _MASK

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``.

        Uses Lemire's multiply-shift reduction; the modulo bias at
        n << 2**64 is far below anything a Monte Carlo estimate could
        resolve, so no rejection loop is needed.
        """
        if n <= 0:
            raise ValueError(f"randrange needs a positive bound, got {n}")
        return (self.next_u64() * n) >> 64

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """A uniformly random element of a non-empty sequence."""
        if not seq:
            raise IndexError("choice from an empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle.

        Draws exactly the same variates as ``randrange(i + 1)`` per
        swap; the xorshift step is inlined because engines shuffle an
        untried-move list for every node they create, making this the
        hottest RNG entry point.
        """
        x = self._state
        for i in range(len(seq) - 1, 0, -1):
            x ^= (x >> 12)
            x ^= (x << 25) & _MASK
            x ^= (x >> 27)
            j = (((x * _MULT) & _MASK) * (i + 1)) >> 64
            seq[i], seq[j] = seq[j], seq[i]
        self._state = x

    def fork(self, *path) -> "XorShift64Star":
        """An independent child generator keyed by ``path``."""
        return XorShift64Star(derive_seed(self.next_u64(), *path))

    # -- checkpointing -------------------------------------------------------

    def getstate(self) -> int:
        """The raw 64-bit state word; feed to :meth:`setstate` to resume
        the stream exactly where it left off."""
        return self._state

    def setstate(self, state: int) -> None:
        if not 0 < state <= _MASK:
            raise ValueError(f"invalid xorshift64* state: {state!r}")
        self._state = state

    @classmethod
    def from_state(cls, state: int) -> "XorShift64Star":
        """A generator resumed from a :meth:`getstate` word (no seed
        mixing -- the state is adopted verbatim)."""
        rng = object.__new__(cls)
        rng.setstate(state)
        return rng
