"""Random-number generation.

Two generators, mirroring what the paper's CUDA kernel needs:

* :class:`~repro.rng.scalar.XorShift64Star` -- a tiny, fast scalar PRNG
  for the CPU-side engines (sequential MCTS, tree ops).
* :class:`~repro.rng.batch.BatchXorShift128Plus` -- a vectorised PRNG
  with one independent state per SIMT lane, used by the batched playout
  kernels.  Each lane's stream is seeded via splitmix64 so lanes are
  decorrelated, the standard per-thread-stream construction in GPU
  Monte Carlo codes.
"""

from repro.rng.batch import BatchXorShift128Plus
from repro.rng.scalar import XorShift64Star

__all__ = ["BatchXorShift128Plus", "XorShift64Star"]
