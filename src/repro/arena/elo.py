"""Elo rating estimation from round-robin results.

Used by the ablation benches to rank schemes on one scale instead of
pairwise tables.  Ratings are maximum-likelihood under the standard
logistic model, fitted by damped fixed-point iteration (no dependence
on the pairing structure being complete).
"""

from __future__ import annotations

import math
from typing import Mapping

#: Elo scale constant: 400 / ln(10).
_SCALE = 400.0 / math.log(10.0)


def expected_score(rating_a: float, rating_b: float) -> float:
    """Logistic expected score of A against B."""
    return 1.0 / (1.0 + math.exp((rating_b - rating_a) / _SCALE))


def elo_ratings(
    scores: Mapping[tuple[str, str], tuple[float, int]],
    iterations: int = 500,
    tol: float = 1e-9,
    damping: float = 0.5,
) -> dict[str, float]:
    """Maximum-likelihood Elo ratings.

    ``scores[(a, b)] = (points, games)`` gives A's points against B
    (wins + draws/2).  Ratings are anchored to mean zero.  Players with
    only perfect or only zero scores get clamped by the damping rather
    than diverging.
    """
    players: set[str] = set()
    for a, b in scores:
        players.add(a)
        players.add(b)
    if not players:
        raise ValueError("no results to rate")
    for (a, b), (points, games) in scores.items():
        if games <= 0:
            raise ValueError(f"({a}, {b}): games must be positive")
        if not 0 <= points <= games:
            raise ValueError(
                f"({a}, {b}): points {points} out of range for "
                f"{games} games"
            )

    ratings = {p: 0.0 for p in sorted(players)}
    for _ in range(iterations):
        max_delta = 0.0
        for player in ratings:
            actual = 0.0
            expected = 0.0
            for (a, b), (points, games) in scores.items():
                if a == player:
                    actual += points
                    expected += games * expected_score(
                        ratings[a], ratings[b]
                    )
                elif b == player:
                    actual += games - points
                    expected += games * expected_score(
                        ratings[b], ratings[a]
                    )
            if expected == 0.0 and actual == 0.0:
                continue
            # Damped logit step toward the observed score total.
            grad = (actual - expected) * _SCALE
            total_games = sum(
                g for (a, b), (_, g) in scores.items()
                if player in (a, b)
            )
            step = damping * grad / max(total_games, 1)
            ratings[player] += step
            max_delta = max(max_delta, abs(step))
        # Re-anchor to mean zero every sweep.
        mean = sum(ratings.values()) / len(ratings)
        for p in ratings:
            ratings[p] -= mean
        if max_delta < tol:
            break
    return ratings


def elo_from_matchups(results) -> dict[str, float]:
    """Ratings from ``round_robin`` output
    (``{(a, b): MatchupResult}``)."""
    scores = {
        pair: (res.wins + 0.5 * res.draws, res.games)
        for pair, res in results.items()
    }
    return elo_ratings(scores)
