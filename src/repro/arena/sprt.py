"""Sequential probability ratio test (SPRT) for match stopping.

Strength comparisons waste games when one side is clearly dominant;
the SPRT stops a matchup as soon as the evidence crosses a likelihood
threshold, the standard tool in engine-testing frameworks.  We test
H0: p = p0 against H1: p = p1 (win probability of the subject, draws
counted as half a win via the trinomial-to-binomial reduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Possible verdicts.
CONTINUE = "continue"
ACCEPT_H1 = "accept_h1"  # subject is at least as strong as p1
ACCEPT_H0 = "accept_h0"  # subject is no stronger than p0


@dataclass
class Sprt:
    """An anytime win-probability test.

    Parameters
    ----------
    p0, p1:
        The two hypothesised win probabilities (``p0 < p1``).
    alpha, beta:
        Type-I and type-II error rates; they set the log-likelihood
        stopping bounds ``log((1-beta)/alpha)`` and
        ``log(beta/(1-alpha))``.
    """

    p0: float
    p1: float
    alpha: float = 0.05
    beta: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 < self.p1 < 1.0:
            raise ValueError(
                f"need 0 < p0 < p1 < 1, got p0={self.p0}, p1={self.p1}"
            )
        if not (0 < self.alpha < 1 and 0 < self.beta < 1):
            raise ValueError("alpha and beta must be in (0, 1)")
        self._llr = 0.0
        self._games = 0

    @property
    def upper_bound(self) -> float:
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_bound(self) -> float:
        return math.log(self.beta / (1.0 - self.alpha))

    @property
    def llr(self) -> float:
        """Current log-likelihood ratio."""
        return self._llr

    @property
    def games(self) -> int:
        return self._games

    def record(self, outcome: float) -> str:
        """Add one game (1 win, 0.5 draw, 0 loss) and return the
        verdict so far."""
        if outcome not in (0.0, 0.5, 1.0):
            raise ValueError(
                f"outcome must be 0, 0.5 or 1, got {outcome}"
            )
        # A draw contributes half a win and half a loss.
        win_part = outcome
        loss_part = 1.0 - outcome
        self._llr += win_part * math.log(self.p1 / self.p0)
        self._llr += loss_part * math.log(
            (1.0 - self.p1) / (1.0 - self.p0)
        )
        self._games += 1
        return self.status()

    def status(self) -> str:
        if self._llr >= self.upper_bound:
            return ACCEPT_H1
        if self._llr <= self.lower_bound:
            return ACCEPT_H0
        return CONTINUE


def sprt_match(
    game,
    subject,
    opponent,
    sprt: Sprt,
    seed: int,
    max_games: int = 200,
    alternate_colours: bool = True,
):
    """Play games until the SPRT stops or ``max_games`` is reached.

    Returns ``(verdict, matchup_result)``; the verdict is ``continue``
    if the budget ran out undecided.
    """
    from repro.arena.match import play_game
    from repro.arena.tournament import MatchupResult
    from repro.util.seeding import SeedLadder

    ladder = SeedLadder(seed, "sprt")
    out = MatchupResult()
    verdict = CONTINUE
    for i in range(max_games):
        colour = 1 if (i % 2 == 0 or not alternate_colours) else -1
        subj = subject(ladder.seed("game", i, "subject"))
        opp = opponent(ladder.seed("game", i, "opponent"))
        record = (
            play_game(game, subj, opp)
            if colour == 1
            else play_game(game, opp, subj)
        )
        outcome = record.winner * colour
        if outcome > 0:
            out.wins += 1
            score = 1.0
        elif outcome < 0:
            out.losses += 1
            score = 0.0
        else:
            out.draws += 1
            score = 0.5
        out.records.append(record)
        out.subject_colours.append(colour)
        verdict = sprt.record(score)
        if verdict != CONTINUE:
            break
    return verdict, out
