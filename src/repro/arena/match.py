"""Playing one full game between two players, with per-step telemetry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.games.base import Game
from repro.players.base import Player


@dataclass(frozen=True)
class MoveRecord:
    """One ply: who moved, what, and the searcher's telemetry."""

    step: int  # 1-based game step (the paper's x-axis)
    player: int  # +1 / -1 (absolute colour)
    move: int
    score_after: int  # point difference, player +1 minus player -1
    simulations: int
    max_depth: int


@dataclass
class GameRecord:
    """A finished game."""

    winner: int  # +1 / -1 / 0
    final_score: int  # from player +1's perspective
    moves: list[MoveRecord] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.moves)

    def score_series(self, perspective: int = 1) -> list[int]:
        """Per-step point difference from ``perspective``'s side."""
        return [m.score_after * perspective for m in self.moves]

    def depth_series(self, player: int) -> list[tuple[int, int]]:
        """(step, max_depth) for the given player's moves."""
        return [
            (m.step, m.max_depth) for m in self.moves if m.player == player
        ]


def play_game(
    game: Game,
    black: Player,
    white: Player,
    max_plies: int | None = None,
) -> GameRecord:
    """Play ``black`` (player +1) against ``white`` to the end."""
    state = game.initial_state()
    record = GameRecord(winner=0, final_score=0)
    limit = max_plies if max_plies is not None else game.max_game_length
    step = 0
    while not game.is_terminal(state):
        if step >= limit:
            raise RuntimeError(
                f"game exceeded {limit} plies; engine or rules bug"
            )
        step += 1
        mover = game.to_move(state)
        player = black if mover == 1 else white
        info = player.choose(state)
        game.validate_move(state, info.move)
        state = game.apply(state, info.move)
        black.notify_move(state, info.move)
        white.notify_move(state, info.move)
        record.moves.append(
            MoveRecord(
                step=step,
                player=mover,
                move=info.move,
                score_after=game.score(state),
                simulations=info.simulations,
                max_depth=info.max_depth,
            )
        )
    record.winner = game.winner(state)
    record.final_score = game.score(state)
    return record
