"""Strength metrics: win ratios, confidence intervals, per-step means."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.arena.match import GameRecord


def win_ratio(wins: int, losses: int, draws: int) -> float:
    """Score ratio with draws counting half (the convention behind the
    paper's Figure 6 y-axis)."""
    games = wins + losses + draws
    if games == 0:
        raise ValueError("no games played")
    return (wins + 0.5 * draws) / games


def wilson_interval(
    successes: float, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes} out of range for {trials} trials"
        )
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


def mean_score_series(
    records: Sequence[GameRecord],
    perspective_per_game: Sequence[int],
    length: int,
) -> np.ndarray:
    """Average per-step point difference over games (paper Figure 7).

    Each game's series is read from its subject player's perspective
    and padded with its final value (a finished game's score no longer
    changes), then averaged step-wise.
    """
    if len(records) != len(perspective_per_game):
        raise ValueError("one perspective per game required")
    if not records:
        raise ValueError("no games to average")
    table = np.zeros((len(records), length))
    for i, (rec, persp) in enumerate(
        zip(records, perspective_per_game)
    ):
        series = rec.score_series(persp)
        if not series:
            raise ValueError("game with no moves")
        clipped = series[:length]
        table[i, : len(clipped)] = clipped
        if len(clipped) < length:
            table[i, len(clipped):] = clipped[-1]
    return table.mean(axis=0)


def mean_depth_series(
    records: Sequence[GameRecord],
    player_per_game: Sequence[int],
    length: int,
) -> np.ndarray:
    """Average per-step search depth for the subject player (paper
    Figure 8, right panel).  Steps where the player did not move carry
    the player's previous depth forward."""
    if len(records) != len(player_per_game):
        raise ValueError("one player colour per game required")
    if not records:
        raise ValueError("no games to average")
    table = np.zeros((len(records), length))
    for i, (rec, colour) in enumerate(zip(records, player_per_game)):
        last = 0.0
        series = dict(rec.depth_series(colour))
        for step in range(1, length + 1):
            if step in series:
                last = float(series[step])
            table[i, step - 1] = last
    return table.mean(axis=0)
