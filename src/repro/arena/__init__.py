"""Arena: matches, tournaments, and strength metrics.

The paper's strength results are all arena outputs: win ratios
(Figure 6), per-step point difference (Figure 7), and per-step depth
(Figure 8).
"""

from repro.arena.cohort import drive_merged, play_games_cohort
from repro.arena.elo import elo_from_matchups, elo_ratings, expected_score
from repro.arena.match import GameRecord, MoveRecord, play_game
from repro.arena.metrics import (
    mean_score_series,
    mean_depth_series,
    wilson_interval,
    win_ratio,
)
from repro.arena.sprt import Sprt, sprt_match
from repro.arena.tournament import MatchupResult, play_match, round_robin

__all__ = [
    "play_game",
    "GameRecord",
    "MoveRecord",
    "play_match",
    "MatchupResult",
    "win_ratio",
    "wilson_interval",
    "mean_score_series",
    "mean_depth_series",
    "play_games_cohort",
    "drive_merged",
    "elo_ratings",
    "elo_from_matchups",
    "expected_score",
    "Sprt",
    "sprt_match",
    "round_robin",
]
