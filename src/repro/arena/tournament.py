"""Multi-game matchups with colour alternation and seed ladders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.arena.match import GameRecord, play_game
from repro.arena.metrics import (
    mean_depth_series,
    mean_score_series,
    wilson_interval,
    win_ratio,
)
from repro.games.base import Game
from repro.players.base import Player
from repro.util.seeding import SeedLadder

#: A player factory: ``(seed) -> Player`` so every game gets fresh,
#: independently seeded players.
PlayerFactory = Callable[[int], Player]


@dataclass
class MatchupResult:
    """Aggregate of ``n`` games between a subject ("A") and an
    opponent, colours alternating."""

    wins: int = 0
    losses: int = 0
    draws: int = 0
    records: list[GameRecord] = field(default_factory=list)
    subject_colours: list[int] = field(default_factory=list)

    @property
    def games(self) -> int:
        return self.wins + self.losses + self.draws

    @property
    def win_ratio(self) -> float:
        return win_ratio(self.wins, self.losses, self.draws)

    def win_ratio_ci(self, z: float = 1.96) -> tuple[float, float]:
        return wilson_interval(
            self.wins + 0.5 * self.draws, self.games, z
        )

    @property
    def mean_final_score(self) -> float:
        """Mean final point difference from the subject's side (the
        y-axis of the paper's Figures 7 and 9, last step)."""
        total = sum(
            rec.final_score * colour
            for rec, colour in zip(self.records, self.subject_colours)
        )
        return total / len(self.records)

    def score_series(self, length: int) -> np.ndarray:
        return mean_score_series(
            self.records, self.subject_colours, length
        )

    def depth_series(self, length: int) -> np.ndarray:
        return mean_depth_series(
            self.records, self.subject_colours, length
        )


def play_match(
    game: Game,
    subject: PlayerFactory,
    opponent: PlayerFactory,
    n_games: int,
    seed: int,
    alternate_colours: bool = True,
    max_plies: int | None = None,
) -> MatchupResult:
    """Play ``n_games`` between two player factories.

    Game ``i`` gives the subject colour black when ``i`` is even (or
    always, if ``alternate_colours`` is off); seeds derive from
    ``(seed, game index, role)`` so every game is independent yet the
    whole matchup replays exactly.
    """
    if n_games <= 0:
        raise ValueError(f"n_games must be positive: {n_games}")
    ladder = SeedLadder(seed, "match")
    out = MatchupResult()
    for i in range(n_games):
        subject_colour = 1 if (i % 2 == 0 or not alternate_colours) else -1
        subj = subject(ladder.seed("game", i, "subject"))
        opp = opponent(ladder.seed("game", i, "opponent"))
        if subject_colour == 1:
            record = play_game(game, subj, opp, max_plies=max_plies)
        else:
            record = play_game(game, opp, subj, max_plies=max_plies)
        outcome = record.winner * subject_colour
        if outcome > 0:
            out.wins += 1
        elif outcome < 0:
            out.losses += 1
        else:
            out.draws += 1
        out.records.append(record)
        out.subject_colours.append(subject_colour)
    return out


def round_robin(
    game: Game,
    factories: dict[str, PlayerFactory],
    n_games: int,
    seed: int,
) -> dict[tuple[str, str], MatchupResult]:
    """Every ordered pair of distinct players plays a matchup; used by
    the ablation benches to rank schemes."""
    results = {}
    ladder = SeedLadder(seed, "round_robin")
    for a in factories:
        for b in factories:
            if a == b:
                continue
            results[(a, b)] = play_match(
                game,
                factories[a],
                factories[b],
                n_games,
                ladder.seed(a, b),
            )
    return results
