"""Cohort driver: many games advanced in lockstep, CPU searches merged.

Strength experiments pit dozens of independent games against each
other; their CPU-side MCTS searches (sequential, root-parallel,
tree-parallel) are generators that yield playout requests.  The cohort
driver advances all games one *move* per round: every CPU search active
in that round contributes its leaf states to one merged vectorised
playout batch, so a 1-core machine simulates a whole tournament at
near-batch throughput.  Virtual-time semantics are untouched -- each
engine still charges its own clock -- and outcomes are deterministic
given the full cohort configuration.

GPU-backed players (leaf/block/hybrid/multi-GPU engines) do not join
the merge; their playouts already run as wide kernels and are executed
directly when their game's turn comes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.arena.match import GameRecord, MoveRecord
from repro.core.base import Engine, PlayoutBatch, PlayoutResults
from repro.games.base import Game
from repro.players.base import Player
from repro.players.mcts import MctsPlayer


def _cohort_generator(player: Player, state):
    """The player's search generator, or None if not cohort-capable."""
    if not isinstance(player, MctsPlayer):
        return None
    engine = player.engine
    if type(engine).search_steps is Engine.search_steps:
        return None  # not overridden: the engine cannot be merged
    return engine.search_steps(state, player.move_budget_s)


def drive_merged(
    generators: dict[int, object],
    executor: Callable[[PlayoutBatch], PlayoutResults],
) -> dict[int, object]:
    """Drive several search generators to completion, merging their
    playout requests into shared executor calls.  Returns each key's
    SearchResult."""
    results: dict[int, object] = {}
    pending: dict[int, object] = {}
    requests: dict[int, list] = {}
    for key, gen in generators.items():
        try:
            requests[key] = list(next(gen))
            pending[key] = gen
        except StopIteration as stop:  # zero-iteration search (unused)
            results[key] = stop.value
    while pending:
        order = list(pending)
        flat: list = []
        offsets: dict[int, tuple[int, int]] = {}
        for key in order:
            start = len(flat)
            flat.extend(requests[key])
            offsets[key] = (start, len(flat))
        answers = executor(flat) if flat else []
        for key in order:
            lo, hi = offsets[key]
            try:
                requests[key] = list(pending[key].send(answers[lo:hi]))
            except StopIteration as stop:
                results[key] = stop.value
                del pending[key]
                del requests[key]
    return results


def play_games_cohort(
    game: Game,
    matchups: Sequence[tuple[Player, Player]],
    executor: Callable[[PlayoutBatch], PlayoutResults],
    max_plies: int | None = None,
) -> list[GameRecord]:
    """Play every ``(black, white)`` pair to completion, one move per
    round across all still-running games."""
    n = len(matchups)
    if n == 0:
        raise ValueError("no games in the cohort")
    limit = max_plies if max_plies is not None else game.max_game_length
    states = [game.initial_state() for _ in range(n)]
    records = [GameRecord(winner=0, final_score=0) for _ in range(n)]
    steps = [0] * n
    alive = [i for i in range(n) if not game.is_terminal(states[i])]

    while alive:
        generators: dict[int, object] = {}
        movers: dict[int, Player] = {}
        for i in alive:
            mover = game.to_move(states[i])
            black, white = matchups[i]
            player = black if mover == 1 else white
            movers[i] = player
            gen = _cohort_generator(player, states[i])
            if gen is not None:
                generators[i] = gen
        merged = drive_merged(generators, executor)

        still_alive = []
        for i in alive:
            if steps[i] >= limit:
                raise RuntimeError(
                    f"cohort game {i} exceeded {limit} plies"
                )
            player = movers[i]
            if i in merged:
                result = merged[i]
                info_move = result.move
                sims = result.simulations
                depth = result.max_depth
            else:
                info = player.choose(states[i])
                info_move = info.move
                sims = info.simulations
                depth = info.max_depth
            game.validate_move(states[i], info_move)
            mover = game.to_move(states[i])
            states[i] = game.apply(states[i], info_move)
            steps[i] += 1
            records[i].moves.append(
                MoveRecord(
                    step=steps[i],
                    player=mover,
                    move=info_move,
                    score_after=game.score(states[i]),
                    simulations=sims,
                    max_depth=depth,
                )
            )
            if game.is_terminal(states[i]):
                records[i].winner = game.winner(states[i])
                records[i].final_score = game.score(states[i])
            else:
                still_alive.append(i)
        alive = still_alive
    return records
