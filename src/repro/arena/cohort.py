"""Cohort driver: many games advanced in lockstep, CPU searches merged.

Strength experiments pit dozens of independent games against each
other; their CPU-side MCTS searches (sequential, root-parallel,
tree-parallel) are generators that yield playout requests.  The cohort
driver advances all games one *move* per round: every CPU search active
in that round contributes its leaf states to one merged vectorised
playout batch, so a 1-core machine simulates a whole tournament at
near-batch throughput.  Virtual-time semantics are untouched -- each
engine still charges its own clock -- and outcomes are deterministic
given the full cohort configuration.

GPU-backed players (leaf/block/hybrid/multi-GPU engines) do not join
the merge; their playouts already run as wide kernels and are executed
directly when their game's turn comes.

The generator-merging machinery itself lives in
:mod:`repro.serve.scheduler` -- the serving layer generalised it into
a tick-based multi-tenant scheduler, and the cohort driver is now one
client of it.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.arena.match import GameRecord, MoveRecord
from repro.games.base import Game
from repro.players.base import Player
from repro.players.mcts import MctsPlayer
from repro.serve.scheduler import drive_generators
from repro.serve.service import supports_search_steps


def _cohort_generator(player: Player, state):
    """The player's search generator, or None if not cohort-capable."""
    if not isinstance(player, MctsPlayer):
        return None
    engine = player.engine
    if not supports_search_steps(engine):
        return None  # not overridden: the engine cannot be merged
    return engine.search_steps(state, player.move_budget_s)


def drive_merged(
    generators: dict[int, object],
    executor: Callable,
) -> dict[int, object]:
    """Drive several search generators to completion, merging their
    playout requests into shared executor calls.  Returns each key's
    SearchResult.  (Delegates to the serving layer's scheduler.)"""
    return drive_generators(generators, executor)


def play_games_cohort(
    game: Game,
    matchups: Sequence[tuple[Player, Player]],
    executor: Callable[[PlayoutBatch], PlayoutResults],
    max_plies: int | None = None,
) -> list[GameRecord]:
    """Play every ``(black, white)`` pair to completion, one move per
    round across all still-running games."""
    n = len(matchups)
    if n == 0:
        raise ValueError("no games in the cohort")
    limit = max_plies if max_plies is not None else game.max_game_length
    states = [game.initial_state() for _ in range(n)]
    records = [GameRecord(winner=0, final_score=0) for _ in range(n)]
    steps = [0] * n
    alive = [i for i in range(n) if not game.is_terminal(states[i])]

    while alive:
        generators: dict[int, object] = {}
        movers: dict[int, Player] = {}
        for i in alive:
            mover = game.to_move(states[i])
            black, white = matchups[i]
            player = black if mover == 1 else white
            movers[i] = player
            gen = _cohort_generator(player, states[i])
            if gen is not None:
                generators[i] = gen
        merged = drive_merged(generators, executor)

        still_alive = []
        for i in alive:
            if steps[i] >= limit:
                raise RuntimeError(
                    f"cohort game {i} exceeded {limit} plies"
                )
            player = movers[i]
            if i in merged:
                result = merged[i]
                info_move = result.move
                sims = result.simulations
                depth = result.max_depth
            else:
                info = player.choose(states[i])
                info_move = info.move
                sims = info.simulations
                depth = info.max_depth
            game.validate_move(states[i], info_move)
            mover = game.to_move(states[i])
            states[i] = game.apply(states[i], info_move)
            steps[i] += 1
            records[i].moves.append(
                MoveRecord(
                    step=steps[i],
                    player=mover,
                    move=info_move,
                    score_after=game.score(states[i]),
                    simulations=sims,
                    max_depth=depth,
                )
            )
            if game.is_terminal(states[i]):
                records[i].winner = game.winner(states[i])
                records[i].final_score = game.score(states[i])
            else:
                still_alive.append(i)
        alive = still_alive
    return records
