"""Vectorised lockstep Breakthrough playouts.

Per step each lane computes its three direction target masks (straight
to empty; diagonals to any non-own square), draws a uniformly random
move across all three masks, and applies it.  Board orientation is
handled without branches by keeping ``own``/``opp`` relative to the
side to move and flipping the shift direction with the mover's sign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.games.batch import BatchGame, select_nth_bit
from repro.games.breakthrough import (
    P1_GOAL,
    P2_GOAL,
    Breakthrough,
    BreakthroughState,
)
from repro.rng import BatchXorShift128Plus
from repro.util.bitops import NOT_COL_0, NOT_COL_7, U64

_ZERO = U64(0)
_SEVEN = U64(7)
_EIGHT = U64(8)
_NINE = U64(9)
_NOT0 = U64(NOT_COL_0)
_NOT7 = U64(NOT_COL_7)
_GOAL_UP = U64(P1_GOAL)
_GOAL_DOWN = U64(P2_GOAL)


def _targets(own, opp, up_mask):
    """(left, straight, right) target masks per lane.

    ``up_mask`` is boolean: lanes whose mover advances toward higher
    bits.  Straight moves require empty targets; diagonals any non-own
    square.
    """
    empty = ~(own | opp)
    fwd_up = own << _EIGHT
    fwd_dn = own >> _EIGHT
    left_up = (own << _SEVEN) & _NOT7
    left_dn = (own >> _NINE) & _NOT7
    right_up = (own << _NINE) & _NOT0
    right_dn = (own >> _SEVEN) & _NOT0
    straight = np.where(up_mask, fwd_up, fwd_dn) & empty
    left = np.where(up_mask, left_up, left_dn) & ~own
    right = np.where(up_mask, right_up, right_dn) & ~own
    return left, straight, right


def _origin_of(target, direction_shift, up_mask):
    """Invert a forward shift to find the moved pawn's origin."""
    return np.where(
        up_mask, target >> direction_shift, target << direction_shift
    )


@dataclass
class BreakthroughBatch:
    own: np.ndarray  # pawns of the side to move
    opp: np.ndarray
    to_move: np.ndarray  # int8
    done: np.ndarray
    winner: np.ndarray  # int8, valid once done

    def __len__(self) -> int:
        return self.own.shape[0]


class BatchBreakthrough(BatchGame):
    name = "breakthrough"
    max_game_length = Breakthrough.max_game_length

    def make_batch(
        self, states: Sequence[BreakthroughState], lanes_per_state: int
    ) -> BreakthroughBatch:
        if lanes_per_state <= 0:
            raise ValueError(
                f"lanes_per_state must be positive, got {lanes_per_state}"
            )
        p1 = np.repeat(
            np.array([s.p1 for s in states], dtype=U64), lanes_per_state
        )
        p2 = np.repeat(
            np.array([s.p2 for s in states], dtype=U64), lanes_per_state
        )
        to_move = np.repeat(
            np.array([s.to_move for s in states], dtype=np.int8),
            lanes_per_state,
        )
        up = to_move == 1
        batch = BreakthroughBatch(
            own=np.where(up, p1, p2),
            opp=np.where(up, p2, p1),
            to_move=to_move,
            done=np.zeros(p1.shape[0], dtype=bool),
            winner=np.zeros(p1.shape[0], dtype=np.int8),
        )
        self._settle_terminals(batch)
        return batch

    def _settle_terminals(self, batch: BreakthroughBatch) -> None:
        """Mark lanes already terminal (goal reached / wiped out /
        stuck mover) and record their winners."""
        up = batch.to_move == 1
        p1 = np.where(up, batch.own, batch.opp)
        p2 = np.where(up, batch.opp, batch.own)
        p1_wins = ((p1 & _GOAL_UP) != _ZERO) | (p2 == _ZERO)
        p2_wins = ((p2 & _GOAL_DOWN) != _ZERO) | (p1 == _ZERO)
        p2_wins &= ~p1_wins
        left, straight, right = _targets(batch.own, batch.opp, up)
        stuck = (
            ~p1_wins
            & ~p2_wins
            & ((left | straight | right) == _ZERO)
            & ~batch.done
        )
        newly = (p1_wins | p2_wins | stuck) & ~batch.done
        batch.winner = np.where(
            newly & p1_wins,
            np.int8(1),
            np.where(
                newly & p2_wins,
                np.int8(-1),
                np.where(
                    newly & stuck,
                    (-batch.to_move).astype(np.int8),
                    batch.winner,
                ),
            ),
        )
        batch.done = batch.done | newly

    def step(
        self, batch: BreakthroughBatch, rng: BatchXorShift128Plus
    ) -> int:
        act = ~batch.done
        up = batch.to_move == 1
        left, straight, right = _targets(batch.own, batch.opp, up)
        n_l = np.bitwise_count(left).astype(np.int64)
        n_s = np.bitwise_count(straight).astype(np.int64)
        n_r = np.bitwise_count(right).astype(np.int64)
        total = n_l + n_s + n_r
        pick = rng.randbelow(total)

        use_l = pick < n_l
        use_s = ~use_l & (pick < n_l + n_s)
        use_r = ~use_l & ~use_s

        idx = np.where(
            use_l, pick, np.where(use_s, pick - n_l, pick - n_l - n_s)
        ).clip(min=0)
        mask = np.where(use_l, left, np.where(use_s, straight, right))
        safe = total > 0
        bit_idx = select_nth_bit(mask, np.where(safe, idx, 0))
        target = np.where(
            safe, np.uint64(1) << bit_idx.astype(np.uint64), _ZERO
        )
        # left for an up-mover is <<7 but for a down-mover >>9 -- the
        # inversion shift differs per orientation:
        shift_up = np.where(use_s, _EIGHT, np.where(use_l, _SEVEN, _NINE))
        shift_dn = np.where(use_s, _EIGHT, np.where(use_l, _NINE, _SEVEN))
        origin = np.where(
            up, target >> shift_up, target << shift_dn
        )

        # For lanes with a move, origin/target are set; for stuck lanes
        # both are zero, so new_own == own -- the perspective swap below
        # is then a pure pass, keeping own/opp aligned with to_move.
        new_own = (batch.own ^ origin) | target
        new_opp = batch.opp & ~target
        batch.own = np.where(act, new_opp, batch.own)
        batch.opp = np.where(act, new_own, batch.opp)
        batch.to_move = np.where(act, -batch.to_move, batch.to_move)
        # Lanes whose mover had no legal move: that mover loses.  The
        # perspective flip above already ran, so the stuck player is
        # the opponent of the *new* side to move.
        no_move = act & ~safe
        batch.done = batch.done | no_move
        batch.winner = np.where(
            no_move, batch.to_move.astype(np.int8), batch.winner
        )
        self._settle_terminals(batch)
        return int((~batch.done).sum())

    def active(self, batch: BreakthroughBatch) -> np.ndarray:
        return ~batch.done

    def winners(self, batch: BreakthroughBatch) -> np.ndarray:
        return batch.winner.copy()

    def zobrist_plane_arrays(
        self, batch: BreakthroughBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        up = batch.to_move == 1
        p1 = np.where(up, batch.own, batch.opp)
        p2 = np.where(up, batch.opp, batch.own)
        return p1, p2, batch.to_move

    def scores(self, batch: BreakthroughBatch) -> np.ndarray:
        up = batch.to_move == 1
        p1 = np.where(up, batch.own, batch.opp)
        p2 = np.where(up, batch.opp, batch.own)
        return (
            np.bitwise_count(p1).astype(np.int16)
            - np.bitwise_count(p2).astype(np.int16)
        )

    def lane_state(
        self, batch: BreakthroughBatch, i: int
    ) -> BreakthroughState:
        tm = int(batch.to_move[i])
        own, opp = int(batch.own[i]), int(batch.opp[i])
        p1, p2 = (own, opp) if tm == 1 else (opp, own)
        return BreakthroughState(p1, p2, tm)
