"""Vectorised lockstep Connect-4 playouts.

Move generation uses the carry trick: ``(mask + BOTTOM) & BOARD`` puts
exactly one bit at the lowest empty cell of every non-full column, so a
random legal drop is a random set bit of that word -- one
:func:`~repro.games.batch.select_random_bit` call per lockstep ply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.games.batch import BatchGame, select_random_bit
from repro.games.connect4 import BOARD_MASK, BOTTOM_MASK, Connect4, Connect4State
from repro.rng import BatchXorShift128Plus
from repro.util.bitops import U64

_ZERO = U64(0)
_BOTTOM = U64(BOTTOM_MASK)
_BOARD = U64(BOARD_MASK)
_DIRS = tuple(U64(d) for d in (1, 7, 8, 6))
_TWO = U64(2)


def has_four_batch(b: np.ndarray) -> np.ndarray:
    """Boolean per lane: four aligned discs present."""
    out = np.zeros(b.shape, dtype=bool)
    for d in _DIRS:
        y = b & (b >> d)
        out |= (y & (y >> (d * _TWO))) != _ZERO
    return out


@dataclass
class Connect4Batch:
    p1: np.ndarray  # uint64
    p2: np.ndarray
    to_move: np.ndarray  # int8
    done: np.ndarray  # bool

    def __len__(self) -> int:
        return self.p1.shape[0]


class BatchConnect4(BatchGame):
    name = "connect4"
    max_game_length = Connect4.max_game_length

    def make_batch(
        self, states: Sequence[Connect4State], lanes_per_state: int
    ) -> Connect4Batch:
        if lanes_per_state <= 0:
            raise ValueError(
                f"lanes_per_state must be positive, got {lanes_per_state}"
            )
        p1 = np.repeat(
            np.array([s.p1 for s in states], dtype=U64), lanes_per_state
        )
        p2 = np.repeat(
            np.array([s.p2 for s in states], dtype=U64), lanes_per_state
        )
        to_move = np.repeat(
            np.array([s.to_move for s in states], dtype=np.int8),
            lanes_per_state,
        )
        done = (
            has_four_batch(p1)
            | has_four_batch(p2)
            | ((p1 | p2) == _BOARD)
        )
        return Connect4Batch(p1=p1, p2=p2, to_move=to_move, done=done)

    def step(self, batch: Connect4Batch, rng: BatchXorShift128Plus) -> int:
        act = ~batch.done
        mask = batch.p1 | batch.p2
        landings = (mask + _BOTTOM) & ~mask & _BOARD
        bits = select_random_bit(landings, rng)
        p1_turn = batch.to_move == 1
        batch.p1 = np.where(act & p1_turn, batch.p1 | bits, batch.p1)
        batch.p2 = np.where(act & ~p1_turn, batch.p2 | bits, batch.p2)
        batch.to_move = np.where(act, -batch.to_move, batch.to_move)
        batch.done = (
            has_four_batch(batch.p1)
            | has_four_batch(batch.p2)
            | ((batch.p1 | batch.p2) == _BOARD)
        )
        return int((~batch.done).sum())

    def active(self, batch: Connect4Batch) -> np.ndarray:
        return ~batch.done

    def winners(self, batch: Connect4Batch) -> np.ndarray:
        w = np.zeros(len(batch), dtype=np.int8)
        w[has_four_batch(batch.p1)] = 1
        w[has_four_batch(batch.p2)] = -1
        return w

    def zobrist_plane_arrays(
        self, batch: Connect4Batch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return batch.p1, batch.p2, batch.to_move

    def scores(self, batch: Connect4Batch) -> np.ndarray:
        return self.winners(batch).astype(np.int16)

    def lane_state(self, batch: Connect4Batch, i: int) -> Connect4State:
        return Connect4State(
            int(batch.p1[i]), int(batch.p2[i]), int(batch.to_move[i])
        )
