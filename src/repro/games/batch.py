"""Batched (SIMT) game interface and vectorised bit-selection helpers.

A *batch* is a struct-of-arrays holding one game per lane; every call to
:meth:`BatchGame.step` advances all still-active lanes by one random ply
in lockstep, exactly the way the paper's CUDA playout kernel advances
one game per GPU thread.  Finished lanes keep executing (masked out),
which is also faithful: a SIMT warp cannot retire individual lanes.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Sequence

import numpy as np

from repro.games.base import GameState
from repro.rng import BatchXorShift128Plus

# ---------------------------------------------------------------------------
# n-th set bit extraction, vectorised
# ---------------------------------------------------------------------------

def _build_nth_bit_table() -> np.ndarray:
    """``table[byte, k]`` = position (0..7) of the k-th set bit of byte."""
    table = np.zeros((256, 8), dtype=np.uint8)
    for byte in range(256):
        k = 0
        for pos in range(8):
            if byte >> pos & 1:
                table[byte, k] = pos
                k += 1
    return table


_NTH_BIT = _build_nth_bit_table()
_LANE_CACHE: dict[int, np.ndarray] = {}


def _lanes(n: int) -> np.ndarray:
    arange = _LANE_CACHE.get(n)
    if arange is None:
        arange = np.arange(n)
        _LANE_CACHE[n] = arange
    return arange


def select_nth_bit(masks: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Per lane, the index (0..63) of the ``n[i]``-th set bit of
    ``masks[i]``.

    ``n[i]`` must be smaller than ``popcount(masks[i])``; lanes with an
    empty mask return index 0 and must be masked out by the caller (the
    usual diverged-lane convention).  Runs in O(1) vector passes via a
    per-byte popcount prefix sum plus a 256x8 lookup table.
    """
    flat = np.ascontiguousarray(masks, dtype=np.uint64)
    count = flat.shape[0]
    as_bytes = flat.view(np.uint8).reshape(count, 8)
    counts = np.bitwise_count(as_bytes).astype(np.int64)
    cum = np.cumsum(counts, axis=1)
    n_col = np.asarray(n, dtype=np.int64).reshape(count, 1)
    byte_idx = (cum <= n_col).sum(axis=1)
    byte_idx = np.minimum(byte_idx, 7)  # clamp for empty masks
    lanes = _lanes(count)
    prefix = cum[lanes, byte_idx] - counts[lanes, byte_idx]
    within = (np.asarray(n, dtype=np.int64) - prefix).clip(0, 7)
    byte_val = as_bytes[lanes, byte_idx]
    return byte_idx.astype(np.int64) * 8 + _NTH_BIT[byte_val, within]


def select_random_bit(
    masks: np.ndarray, rng: BatchXorShift128Plus
) -> np.ndarray:
    """A uniformly random set bit per lane, as a one-bit uint64 mask.

    Lanes with an empty mask get 0.  One RNG step is consumed by *all*
    lanes (lockstep), whether or not their result is used.
    """
    pop = np.bitwise_count(masks).astype(np.int64)
    picks = rng.randbelow(pop)
    idx = select_nth_bit(masks, picks)
    bits = np.uint64(1) << idx.astype(np.uint64)
    return np.where(pop > 0, bits, np.uint64(0))


# ---------------------------------------------------------------------------
# Batch game interface
# ---------------------------------------------------------------------------

class BatchGame(abc.ABC):
    """Vectorised engine advancing many independent games in lockstep."""

    #: Matches the scalar engine's name.
    name: str
    #: Lockstep loop bound (same as the scalar ``max_game_length``).
    max_game_length: int

    @abc.abstractmethod
    def make_batch(
        self, states: Sequence[GameState], lanes_per_state: int
    ):
        """A batch of ``len(states) * lanes_per_state`` lanes; lanes
        ``[i*lanes_per_state, (i+1)*lanes_per_state)`` all start from
        ``states[i]``.  Leaf parallelism passes one state; block
        parallelism passes one state per block."""

    @abc.abstractmethod
    def step(self, batch, rng: BatchXorShift128Plus) -> int:
        """Advance every active lane one uniformly-random ply.  Returns
        the number of lanes still active afterwards."""

    @abc.abstractmethod
    def active(self, batch) -> np.ndarray:
        """Boolean mask of lanes whose game has not finished."""

    @abc.abstractmethod
    def winners(self, batch) -> np.ndarray:
        """Per-lane absolute winner (+1 first player, -1, 0 draw).
        Only meaningful for finished lanes."""

    @abc.abstractmethod
    def scores(self, batch) -> np.ndarray:
        """Per-lane point difference from player +1's perspective."""

    def zobrist_plane_arrays(
        self, batch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-lane occupancy planes in *absolute* colours plus side
        to move: ``(player +1 boards, player -1 boards, to_move)``.
        Batch games that store boards from the side-to-move's
        perspective un-swap them here so the key matches the scalar
        :meth:`repro.games.base.Game.zobrist_key` lane by lane."""
        raise NotImplementedError(
            f"{self.name} does not define Zobrist occupancy planes"
        )

    def zobrist_keys(self, batch) -> np.ndarray:
        """Canonical per-lane Zobrist keys (uint64), equal to the
        scalar key of each lane's position by contract -- the batch
        half of the cross-process position identity the cluster
        router and result cache rely on (docs/cluster.md)."""
        from repro.games.zobrist import table_for

        p1, p2, to_move = self.zobrist_plane_arrays(batch)
        return table_for(self.name).fold_arrays(p1, p2, to_move)

    def compact(self, batch, keep: np.ndarray):
        """A new batch holding only the lanes where ``keep`` is true.

        Batches are dataclasses of equal-length arrays, so compaction is
        generic.  Used to retire finished lanes mid-playout: pure
        performance, the surviving lanes' games are untouched.
        """
        keep = np.asarray(keep, dtype=bool)
        kwargs = {
            f.name: getattr(batch, f.name)[keep]
            for f in dataclasses.fields(batch)
        }
        return type(batch)(**kwargs)

    def run_playouts(
        self, batch, rng: BatchXorShift128Plus
    ) -> tuple[np.ndarray, int]:
        """Drive ``step`` until every lane finishes.

        Returns ``(winners, steps)`` where ``steps`` is the number of
        lockstep iterations executed -- the quantity the GPU timing
        model charges for, since a SIMT grid runs as long as its
        slowest lane.
        """
        steps = 0
        while self.active(batch).any():
            if steps >= self.max_game_length:
                raise RuntimeError(
                    f"{self.name} playout exceeded max_game_length="
                    f"{self.max_game_length}; engine bug"
                )
            self.step(batch, rng)
            steps += 1
        return self.winners(batch), steps


@dataclasses.dataclass(frozen=True)
class TrackedPlayouts:
    """Per-lane playout outcomes with finish-step telemetry."""

    winners: np.ndarray  # int8 (n,), absolute
    scores: np.ndarray  # int16 (n,)
    finish_steps: np.ndarray  # int64 (n,), lockstep ply each lane ended


def run_playouts_tracked(
    game: BatchGame,
    batch,
    rng: BatchXorShift128Plus,
    compact_threshold: float = 0.5,
    min_compact_size: int = 64,
) -> TrackedPlayouts:
    """Drive a batch to completion, recording each lane's finish step.

    Finished lanes are *compacted away* once the active fraction drops
    below ``compact_threshold`` -- a pure performance move (in the real
    SIMT kernel those lanes keep executing masked, which costs nothing
    extra to model because the timing charge uses the recorded finish
    steps, not the Python loop).
    """
    n = len(batch)
    winners = np.zeros(n, dtype=np.int8)
    scores = np.zeros(n, dtype=np.int16)
    finish = np.zeros(n, dtype=np.int64)
    origin = np.arange(n)

    active = game.active(batch)
    # Lanes terminal at entry (finish step 0).
    if not active.all():
        done = ~active
        winners[origin[done]] = game.winners(batch)[done]
        scores[origin[done]] = game.scores(batch)[done]

    steps = 0
    while active.any():
        if steps >= game.max_game_length:
            raise RuntimeError(
                f"{game.name} playout exceeded max_game_length="
                f"{game.max_game_length}; engine bug"
            )
        game.step(batch, rng)
        steps += 1
        now_active = game.active(batch)
        newly_done = active & ~now_active
        if newly_done.any():
            finish[origin[newly_done]] = steps
        active = now_active

        live = int(active.sum())
        if (
            live
            and len(batch) >= min_compact_size
            and live < compact_threshold * len(batch)
        ):
            done = ~active
            winners[origin[done]] = game.winners(batch)[done]
            scores[origin[done]] = game.scores(batch)[done]
            batch = game.compact(batch, active)
            rng = rng.select(active)
            origin = origin[active]
            active = game.active(batch)

    if len(batch):
        winners[origin] = game.winners(batch)
        scores[origin] = game.scores(batch)
    return TrackedPlayouts(
        winners=winners, scores=scores, finish_steps=finish
    )
