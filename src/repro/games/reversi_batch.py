"""Vectorised lockstep Reversi -- the reproduction of the paper's CUDA
playout kernel.

Each NumPy row is one SIMT lane playing an independent random game.
Boards are stored from the side-to-move's perspective (``own``/``opp``)
so one code path serves both colours; a lane terminates after two
consecutive passes, exactly like the scalar rules.  The flip/mobility
logic is the same Kogge-Stone propagation as the scalar engine and the
two are cross-checked property-style in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.games.batch import BatchGame, select_random_bit
from repro.games.reversi import Reversi, ReversiState
from repro.rng import BatchXorShift128Plus
from repro.util.bitops import NOT_COL_0, NOT_COL_7, U64, bit_count_u64

_ZERO = U64(0)
_FULL = U64(0xFFFF_FFFF_FFFF_FFFF)

# The eight othello directions split into a left-shift group
# (E, S, SE, SW) and a right-shift group (W, N, NW, NE), each processed
# as one stacked (4, n) array so a propagation pass costs a handful of
# NumPy calls instead of eight separate direction loops.  Edge masks
# kill wrap-around: shifting toward the east can never land in column 0,
# toward the west never in column 7.
_L_AMOUNT = np.array([1, 8, 9, 7], dtype=U64).reshape(4, 1)
_L_MASK = np.array(
    [NOT_COL_0, 0xFFFF_FFFF_FFFF_FFFF, NOT_COL_0, NOT_COL_7], dtype=U64
).reshape(4, 1)
_R_AMOUNT = _L_AMOUNT
_R_MASK = np.array(
    [NOT_COL_7, 0xFFFF_FFFF_FFFF_FFFF, NOT_COL_7, NOT_COL_0], dtype=U64
).reshape(4, 1)


def _or_reduce4(stack: np.ndarray) -> np.ndarray:
    return np.bitwise_or.reduce(stack, axis=0)


def _propagate(
    seed: np.ndarray, opp: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flood ``seed`` through contiguous ``opp`` discs in all eight
    directions; returns the left-group and right-group flood stacks
    (each ``(4, n)``).  One scratch buffer per group keeps the hot loop
    allocation-free."""
    xl = ((seed << _L_AMOUNT) & _L_MASK) & opp
    xr = ((seed >> _R_AMOUNT) & _R_MASK) & opp
    tl = np.empty_like(xl)
    tr = np.empty_like(xr)
    for _ in range(5):
        np.left_shift(xl, _L_AMOUNT, out=tl)
        tl &= _L_MASK
        tl &= opp
        xl |= tl
        np.right_shift(xr, _R_AMOUNT, out=tr)
        tr &= _R_MASK
        tr &= opp
        xr |= tr
    return xl, xr


def mobility_batch(own: np.ndarray, opp: np.ndarray) -> np.ndarray:
    """Vectorised legal-move bitboards (same algorithm as the scalar
    :func:`repro.games.reversi.mobility`)."""
    empty = ~(own | opp)
    xl, xr = _propagate(own, opp)
    xl <<= _L_AMOUNT
    xl &= _L_MASK
    xr >>= _R_AMOUNT
    xr &= _R_MASK
    moves = _or_reduce4(xl) | _or_reduce4(xr)
    return moves & empty


def flips_batch(
    own: np.ndarray, opp: np.ndarray, move_bits: np.ndarray
) -> np.ndarray:
    """Vectorised flipped-disc bitboards for one move bit per lane."""
    xl, xr = _propagate(move_bits, opp)
    bounded_l = ((xl << _L_AMOUNT) & _L_MASK) & own
    bounded_r = ((xr >> _R_AMOUNT) & _R_MASK) & own
    xl[bounded_l == _ZERO] = _ZERO
    xr[bounded_r == _ZERO] = _ZERO
    return _or_reduce4(xl) | _or_reduce4(xr)


@dataclass
class ReversiBatch:
    """Struct-of-arrays state for a batch of Reversi games."""

    own: np.ndarray  # uint64, discs of the side to move
    opp: np.ndarray  # uint64
    to_move: np.ndarray  # int8, +1 black / -1 white
    passed: np.ndarray  # bool, previous ply was a pass
    done: np.ndarray  # bool

    def __len__(self) -> int:
        return self.own.shape[0]


class BatchReversi(BatchGame):
    """Lockstep random-playout engine for Reversi."""

    name = "reversi"
    max_game_length = Reversi.max_game_length

    def make_batch(
        self, states: Sequence[ReversiState], lanes_per_state: int
    ) -> ReversiBatch:
        if lanes_per_state <= 0:
            raise ValueError(
                f"lanes_per_state must be positive, got {lanes_per_state}"
            )
        black = np.repeat(
            np.array([s.black for s in states], dtype=U64), lanes_per_state
        )
        white = np.repeat(
            np.array([s.white for s in states], dtype=U64), lanes_per_state
        )
        to_move = np.repeat(
            np.array([s.to_move for s in states], dtype=np.int8),
            lanes_per_state,
        )
        is_black = to_move == 1
        own = np.where(is_black, black, white)
        opp = np.where(is_black, white, black)
        n = own.shape[0]
        batch = ReversiBatch(
            own=own,
            opp=opp,
            to_move=to_move,
            passed=np.zeros(n, dtype=bool),
            done=np.zeros(n, dtype=bool),
        )
        # A terminal input state must be recognised immediately.
        mob_own = mobility_batch(own, opp)
        mob_opp = mobility_batch(opp, own)
        batch.done = (mob_own == _ZERO) & (mob_opp == _ZERO)
        return batch

    def step(self, batch: ReversiBatch, rng: BatchXorShift128Plus) -> int:
        act = ~batch.done
        moves = mobility_batch(batch.own, batch.opp)
        move_bits = select_random_bit(moves, rng)
        has_move = move_bits != _ZERO
        flips = flips_batch(batch.own, batch.opp, move_bits)
        new_own = batch.own | move_bits | flips
        new_opp = batch.opp & ~flips
        # Perspective swap covers both movers (flip applied) and passers
        # (boards unchanged, colours swap).
        batch.own = np.where(act, new_opp, batch.own)
        batch.opp = np.where(act, new_own, batch.opp)
        batch.to_move = np.where(act, -batch.to_move, batch.to_move)
        pass_now = act & ~has_move
        batch.done = batch.done | (pass_now & batch.passed)
        batch.passed = np.where(act, pass_now, batch.passed)
        return int((~batch.done).sum())

    def active(self, batch: ReversiBatch) -> np.ndarray:
        return ~batch.done

    def winners(self, batch: ReversiBatch) -> np.ndarray:
        diff = self.scores(batch)
        return np.sign(diff).astype(np.int8)

    def zobrist_plane_arrays(
        self, batch: ReversiBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Boards are stored from the side-to-move's perspective;
        # un-swap to absolute colours so keys match the scalar game.
        is_black = batch.to_move == 1
        black = np.where(is_black, batch.own, batch.opp)
        white = np.where(is_black, batch.opp, batch.own)
        return black, white, batch.to_move

    def scores(self, batch: ReversiBatch) -> np.ndarray:
        is_black = batch.to_move == 1
        black = np.where(is_black, batch.own, batch.opp)
        white = np.where(is_black, batch.opp, batch.own)
        return (
            bit_count_u64(black).astype(np.int16)
            - bit_count_u64(white).astype(np.int16)
        )

    def lane_state(self, batch: ReversiBatch, i: int) -> ReversiState:
        """Extract lane ``i`` as a scalar state (testing/debug aid)."""
        tm = int(batch.to_move[i])
        own, opp = int(batch.own[i]), int(batch.opp[i])
        black, white = (own, opp) if tm == 1 else (opp, own)
        return ReversiState(black, white, tm)
