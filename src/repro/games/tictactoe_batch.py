"""Vectorised lockstep TicTacToe playouts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.games.batch import BatchGame, select_random_bit
from repro.games.tictactoe import FULL_BOARD, WIN_LINES, TicTacToe, TicTacToeState
from repro.rng import BatchXorShift128Plus
from repro.util.bitops import U64

_ZERO = U64(0)
_FULL = U64(FULL_BOARD)
_LINES = np.array(WIN_LINES, dtype=np.uint64)


def _has_line_batch(masks: np.ndarray) -> np.ndarray:
    """Boolean per lane: does ``masks`` contain any winning line."""
    hits = (masks[:, None] & _LINES[None, :]) == _LINES[None, :]
    return hits.any(axis=1)


@dataclass
class TicTacToeBatch:
    x: np.ndarray  # uint64 (only low 9 bits used)
    o: np.ndarray
    to_move: np.ndarray  # int8
    done: np.ndarray  # bool

    def __len__(self) -> int:
        return self.x.shape[0]


class BatchTicTacToe(BatchGame):
    name = "tictactoe"
    max_game_length = TicTacToe.max_game_length

    def make_batch(
        self, states: Sequence[TicTacToeState], lanes_per_state: int
    ) -> TicTacToeBatch:
        if lanes_per_state <= 0:
            raise ValueError(
                f"lanes_per_state must be positive, got {lanes_per_state}"
            )
        x = np.repeat(
            np.array([s.x for s in states], dtype=U64), lanes_per_state
        )
        o = np.repeat(
            np.array([s.o for s in states], dtype=U64), lanes_per_state
        )
        to_move = np.repeat(
            np.array([s.to_move for s in states], dtype=np.int8),
            lanes_per_state,
        )
        done = (
            _has_line_batch(x) | _has_line_batch(o) | ((x | o) == _FULL)
        )
        return TicTacToeBatch(x=x, o=o, to_move=to_move, done=done)

    def step(self, batch: TicTacToeBatch, rng: BatchXorShift128Plus) -> int:
        act = ~batch.done
        empty = ~(batch.x | batch.o) & _FULL
        bits = select_random_bit(empty, rng)
        x_turn = batch.to_move == 1
        place_x = act & x_turn
        place_o = act & ~x_turn
        batch.x = np.where(place_x, batch.x | bits, batch.x)
        batch.o = np.where(place_o, batch.o | bits, batch.o)
        batch.to_move = np.where(act, -batch.to_move, batch.to_move)
        batch.done = (
            _has_line_batch(batch.x)
            | _has_line_batch(batch.o)
            | ((batch.x | batch.o) == _FULL)
        )
        return int((~batch.done).sum())

    def active(self, batch: TicTacToeBatch) -> np.ndarray:
        return ~batch.done

    def winners(self, batch: TicTacToeBatch) -> np.ndarray:
        w = np.zeros(len(batch), dtype=np.int8)
        w[_has_line_batch(batch.x)] = 1
        w[_has_line_batch(batch.o)] = -1
        return w

    def scores(self, batch: TicTacToeBatch) -> np.ndarray:
        return self.winners(batch).astype(np.int16)

    def zobrist_plane_arrays(
        self, batch: TicTacToeBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return batch.x, batch.o, batch.to_move

    def lane_state(self, batch: TicTacToeBatch, i: int) -> TicTacToeState:
        return TicTacToeState(
            int(batch.x[i]), int(batch.o[i]), int(batch.to_move[i])
        )
