"""Canonical Zobrist position hashing for every game in the stack.

A position's *Zobrist key* is the XOR of one fixed 64-bit key per
``(plane, square)`` occupancy bit, plus a side-to-move key when player
``-1`` is on move.  The tables are derived deterministically from the
game's name with :func:`repro.util.seeding.derive_seed`, so the key of
a position is a **cross-process, cross-version contract**: the cluster
router places requests by it, replicas agree on it without
coordination, and the shared result cache uses it as the canonical
position identity (see docs/cluster.md).

Two folds are provided:

* a scalar fold over a pair of Python-int bitboards (the
  :meth:`repro.games.base.Game.zobrist_key` full recompute and the
  per-move incremental :meth:`~repro.games.base.Game.zobrist_apply`
  update, which only folds the *changed* bits), and
* a vectorised fold over ``(n,)`` uint64 plane arrays for the batch
  games (:meth:`repro.games.batch.BatchGame.zobrist_keys`), built on
  per-byte XOR lookup tables -- eight table gathers per plane instead
  of a 64-iteration bit loop.

XOR-of-keys is self-inverse, so the incremental update is simply the
fold of the XOR-difference of the two positions' planes; the
Hypothesis suite in ``tests/games/test_zobrist.py`` pins incremental
== full recompute across random move sequences for all four games,
and the batch fold against the scalar one lane by lane.
"""

from __future__ import annotations

import numpy as np

from repro.util.seeding import derive_seed

#: Root seed of every Zobrist table.  Changing it invalidates every
#: persisted cache key and cross-node placement -- treat as frozen.
ZOBRIST_ROOT = 0x20110B1D

#: Number of board squares each plane key table covers.  64 covers
#: every bitboard in the stack (TicTacToe uses 9, Connect-4 49).
NUM_SQUARES = 64

_U64 = np.uint64
_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


class ZobristTable:
    """Per-game key material plus scalar and vectorised folds."""

    __slots__ = ("game", "piece_keys", "side_key", "_byte_tables")

    def __init__(self, game: str) -> None:
        self.game = game
        self.piece_keys: tuple[tuple[int, ...], ...] = tuple(
            tuple(
                derive_seed(ZOBRIST_ROOT, game, plane, square)
                for square in range(NUM_SQUARES)
            )
            for plane in (0, 1)
        )
        self.side_key: int = derive_seed(ZOBRIST_ROOT, game, "side")
        # byte_tables[plane][byte_index, byte_value] = XOR of the keys
        # of the bits set in `byte_value` at that byte position.
        tables = []
        for plane in (0, 1):
            table = np.zeros((8, 256), dtype=_U64)
            keys = self.piece_keys[plane]
            for j in range(8):
                for value in range(1, 256):
                    low = value & -value
                    acc = int(table[j, value ^ low])
                    acc ^= keys[j * 8 + low.bit_length() - 1]
                    table[j, value] = acc
            tables.append(table)
        self._byte_tables = tuple(tables)

    # -- scalar ------------------------------------------------------------

    def fold_plane(self, plane: int, bits: int) -> int:
        """XOR of the plane's keys over the set bits of ``bits``."""
        keys = self.piece_keys[plane]
        acc = 0
        while bits:
            low = bits & -bits
            acc ^= keys[low.bit_length() - 1]
            bits ^= low
        return acc

    def fold(self, p1: int, p2: int, to_move: int) -> int:
        """Full-recompute key of a position given its two occupancy
        planes (player +1 discs, player -1 discs) and side to move."""
        key = self.fold_plane(0, p1) ^ self.fold_plane(1, p2)
        if to_move == -1:
            key ^= self.side_key
        return key

    def fold_update(
        self, key: int, dp1: int, dp2: int, side_flipped: bool
    ) -> int:
        """Incremental update: ``dp1``/``dp2`` are the XOR-difference
        of the planes before and after a move (only *changed* bits are
        folded -- XOR is self-inverse)."""
        key ^= self.fold_plane(0, dp1) ^ self.fold_plane(1, dp2)
        if side_flipped:
            key ^= self.side_key
        return key

    # -- vectorised --------------------------------------------------------

    def fold_arrays(
        self,
        p1: np.ndarray,
        p2: np.ndarray,
        to_move: np.ndarray,
    ) -> np.ndarray:
        """Per-lane keys for ``(n,)`` uint64 plane arrays; matches
        :meth:`fold` lane by lane (pinned by the test suite)."""
        keys = np.zeros(p1.shape[0], dtype=_U64)
        for plane, boards in ((0, p1), (1, p2)):
            table = self._byte_tables[plane]
            as_bytes = np.ascontiguousarray(boards, dtype=_U64).view(
                np.uint8
            ).reshape(-1, 8)
            for j in range(8):
                keys ^= table[j, as_bytes[:, j]]
        keys[np.asarray(to_move) == -1] ^= _U64(self.side_key)
        return keys


_TABLES: dict[str, ZobristTable] = {}


def table_for(game: str) -> ZobristTable:
    """The (cached) Zobrist table of game ``game``."""
    table = _TABLES.get(game)
    if table is None:
        table = ZobristTable(game)
        _TABLES[game] = table
    return table
