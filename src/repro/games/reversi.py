"""Scalar bitboard Reversi (Othello), 8x8.

The board is a pair of 64-bit words (black discs, white discs).  Move
generation and flipping use the classic Kogge-Stone 8-direction
propagation: for each direction, flood own discs through contiguous
opponent discs, then one more step lands on the candidate squares.
Identical logic drives the batched engine in
:mod:`repro.games.reversi_batch`; the two are cross-checked in the test
suite square by square.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.games.base import Game
from repro.util.bitops import (
    ALL_SHIFTS,
    FULL_MASK,
    NOT_COL_0,
    NOT_COL_7,
    bit_count,
    bits_of,
    square_mask,
)

#: Move id for "pass" (square ids are 0..63).
PASS_MOVE = 64

#: Initial discs: white on d4/e5, black on e4/d5 (standard setup).
_INITIAL_BLACK = square_mask(3, 4) | square_mask(4, 3)
_INITIAL_WHITE = square_mask(3, 3) | square_mask(4, 4)


class ReversiState(NamedTuple):
    """Immutable position: black/white bitboards and the side to move."""

    black: int
    white: int
    to_move: int  # +1 = black, -1 = white


def _own_opp(state: ReversiState) -> tuple[int, int]:
    if state.to_move == 1:
        return state.black, state.white
    return state.white, state.black


def mobility(own: int, opp: int) -> int:
    """Bitboard of all squares where ``own`` may legally move."""
    empty = ~(own | opp) & FULL_MASK
    moves = 0
    for shift in ALL_SHIFTS:
        x = shift(own) & opp
        # An othello line holds at most 6 flippable discs.
        for _ in range(5):
            x |= shift(x) & opp
        moves |= shift(x) & empty
    return moves


def flips_for_move(own: int, opp: int, move_bit: int) -> int:
    """Bitboard of opponent discs flipped by playing ``move_bit``."""
    flips = 0
    for shift in ALL_SHIFTS:
        x = shift(move_bit) & opp
        for _ in range(5):
            x |= shift(x) & opp
        if shift(x) & own:
            flips |= x
    return flips


#: (shift amount, post-shift mask, True if left shift) per direction,
#: for the inlined playout loop below.
_DIR_TABLE = (
    (1, NOT_COL_0, True),  # east
    (8, FULL_MASK, True),  # south
    (9, NOT_COL_0, True),  # south-east
    (7, NOT_COL_7, True),  # south-west
    (1, NOT_COL_7, False),  # west
    (8, FULL_MASK, False),  # north
    (9, NOT_COL_7, False),  # north-west
    (7, NOT_COL_0, False),  # north-east
)


def fast_playout(state: ReversiState, rng) -> tuple[int, int]:
    """Uniformly random playout, heavily inlined for the CPU engines.

    Semantically identical to ``random_playout(Reversi(), state, rng)``
    (cross-checked in the tests) but ~5x faster: no state objects, no
    per-direction function calls, random set-bit extraction via
    ``lsb``-stripping.  Returns ``(winner, plies)`` with the winner
    absolute (+1 black / -1 white / 0 draw).
    """
    if state.to_move == 1:
        own, opp = state.black, state.white
    else:
        own, opp = state.white, state.black
    sign = state.to_move  # +1 while `own` is black's board
    plies = 0
    passed = False
    dirs = _DIR_TABLE
    full = FULL_MASK
    while True:
        empty = ~(own | opp) & full
        mob = 0
        for amount, mask, left in dirs:
            if left:
                x = ((own << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                mob |= (x << amount) & mask
            else:
                x = ((own >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                mob |= (x >> amount) & mask
        mob &= empty

        if not mob:
            if passed:
                break  # two passes in a row: game over
            passed = True
            own, opp = opp, own
            sign = -sign
            plies += 1
            continue
        passed = False

        # Pick a uniformly random set bit of the mobility mask.
        k = rng.randrange(mob.bit_count())
        m = mob
        for _ in range(k):
            m &= m - 1
        mv = m & -m

        flips = 0
        for amount, mask, left in dirs:
            if left:
                x = ((mv << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                x |= ((x << amount) & mask) & opp
                if (x << amount) & mask & own:
                    flips |= x
            else:
                x = ((mv >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                x |= ((x >> amount) & mask) & opp
                if (x >> amount) & mask & own:
                    flips |= x
        own, opp = opp & ~flips, own | mv | flips
        sign = -sign
        plies += 1

    black = own if sign == 1 else opp
    white = opp if sign == 1 else own
    diff = black.bit_count() - white.bit_count()
    return (diff > 0) - (diff < 0), plies


class Reversi(Game):
    """8x8 Reversi with explicit pass moves."""

    name = "reversi"
    num_moves = 65  # 64 squares + pass
    # 60 disc placements + interleaved passes; 128 is a safe lockstep bound.
    max_game_length = 128

    def initial_state(self) -> ReversiState:
        return ReversiState(_INITIAL_BLACK, _INITIAL_WHITE, 1)

    def to_move(self, state: ReversiState) -> int:
        return state.to_move

    def legal_moves(self, state: ReversiState) -> tuple[int, ...]:
        own, opp = _own_opp(state)
        mob = mobility(own, opp)
        if mob:
            return tuple(bits_of(mob))
        if mobility(opp, own):
            return (PASS_MOVE,)
        return ()  # terminal: neither side can move

    def legal_mask(self, state: ReversiState) -> int:
        own, opp = _own_opp(state)
        mob = mobility(own, opp)
        if mob:
            return mob
        if mobility(opp, own):
            return 1 << PASS_MOVE
        return 0

    def apply(self, state: ReversiState, move: int) -> ReversiState:
        own, opp = _own_opp(state)
        if move == PASS_MOVE:
            if mobility(own, opp):
                raise ValueError("cannot pass while a legal move exists")
            return ReversiState(state.black, state.white, -state.to_move)
        move_bit = 1 << move
        if move_bit & (own | opp):
            raise ValueError(f"square {move} is occupied")
        flips = flips_for_move(own, opp, move_bit)
        if not flips:
            raise ValueError(f"move {move} flips nothing (illegal)")
        own |= move_bit | flips
        opp &= ~flips
        if state.to_move == 1:
            return ReversiState(own, opp, -1)
        return ReversiState(opp, own, 1)

    def is_terminal(self, state: ReversiState) -> bool:
        own, opp = _own_opp(state)
        return not mobility(own, opp) and not mobility(opp, own)

    def winner(self, state: ReversiState) -> int:
        diff = self.score(state)
        return (diff > 0) - (diff < 0)

    def score(self, state: ReversiState) -> int:
        """Disc difference, black minus white (black is player +1)."""
        return bit_count(state.black) - bit_count(state.white)

    def disc_count(self, state: ReversiState) -> int:
        """Total discs on the board (monotone: 4 + plies played)."""
        return bit_count(state.black | state.white)

    def zobrist_planes(self, state: ReversiState) -> tuple[int, int]:
        return state.black, state.white

    def playout(self, state: ReversiState, rng) -> tuple[int, int]:
        return fast_playout(state, rng)

    def render(self, state: ReversiState) -> str:
        rows = ["  a b c d e f g h"]
        for r in range(8):
            cells = []
            for c in range(8):
                bit = 1 << (r * 8 + c)
                if state.black & bit:
                    cells.append("X")
                elif state.white & bit:
                    cells.append("O")
                else:
                    cells.append(".")
            rows.append(f"{r + 1} " + " ".join(cells))
        mover = "black (X)" if state.to_move == 1 else "white (O)"
        rows.append(f"to move: {mover}")
        return "\n".join(rows)
