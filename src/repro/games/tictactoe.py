"""TicTacToe: a game small enough to test MCTS behaviour exhaustively.

MCTS with any reasonable budget must never lose TicTacToe from the
start position; the integration tests rely on this.  Board cells are
bits 0..8, row-major.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.games.base import Game
from repro.util.bitops import bit_count, bits_of

FULL_BOARD = 0x1FF

#: All eight winning lines as 9-bit masks.
WIN_LINES = (
    0b000000111,  # rows
    0b000111000,
    0b111000000,
    0b001001001,  # columns
    0b010010010,
    0b100100100,
    0b100010001,  # diagonals
    0b001010100,
)


class TicTacToeState(NamedTuple):
    x: int  # player +1 discs
    o: int  # player -1 discs
    to_move: int


#: ``_HAS_LINE[mask]`` == "does this 9-bit occupancy contain a win
#: line".  Terminal checks run once per node created and once per
#: playout ply, hot enough that the table lookup matters.
_HAS_LINE = tuple(
    any(m & line == line for line in WIN_LINES) for m in range(512)
)


def _has_line(mask: int) -> bool:
    return _HAS_LINE[mask]


class TicTacToe(Game):
    name = "tictactoe"
    num_moves = 9
    max_game_length = 9

    def initial_state(self) -> TicTacToeState:
        return TicTacToeState(0, 0, 1)

    def to_move(self, state: TicTacToeState) -> int:
        return state.to_move

    def legal_moves(self, state: TicTacToeState) -> tuple[int, ...]:
        if self.is_terminal(state):
            return ()
        empty = ~(state.x | state.o) & FULL_BOARD
        return tuple(bits_of(empty))

    def legal_mask(self, state: TicTacToeState) -> int:
        if self.is_terminal(state):
            return 0
        return ~(state.x | state.o) & FULL_BOARD

    def apply(self, state: TicTacToeState, move: int) -> TicTacToeState:
        bit = 1 << move
        if not (0 <= move < 9) or bit & (state.x | state.o):
            raise ValueError(f"illegal tictactoe move {move}")
        if state.to_move == 1:
            return TicTacToeState(state.x | bit, state.o, -1)
        return TicTacToeState(state.x, state.o | bit, 1)

    def is_terminal(self, state: TicTacToeState) -> bool:
        return (
            _has_line(state.x)
            or _has_line(state.o)
            or (state.x | state.o) == FULL_BOARD
        )

    def winner(self, state: TicTacToeState) -> int:
        if _has_line(state.x):
            return 1
        if _has_line(state.o):
            return -1
        return 0

    def score(self, state: TicTacToeState) -> int:
        return self.winner(state)

    def render(self, state: TicTacToeState) -> str:
        rows = []
        for r in range(3):
            cells = []
            for c in range(3):
                bit = 1 << (r * 3 + c)
                cells.append(
                    "X" if state.x & bit else "O" if state.o & bit else "."
                )
            rows.append(" ".join(cells))
        return "\n".join(rows)

    def occupancy(self, state: TicTacToeState) -> int:
        return bit_count(state.x | state.o)

    def zobrist_planes(self, state: TicTacToeState) -> tuple[int, int]:
        return state.x, state.o
