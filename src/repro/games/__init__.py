"""Game substrates.

The paper evaluates on Reversi (Othello), 8x8, average branching factor
above 8.  We implement it twice:

* :mod:`repro.games.reversi` -- a scalar bitboard engine driving the
  CPU-side MCTS tree operations (selection, expansion, sequential
  playouts).
* :mod:`repro.games.reversi_batch` -- a vectorised engine advancing a
  whole batch of boards in lockstep.  This is the reproduction of the
  paper's CUDA playout kernel: every NumPy row is a SIMT lane.

Two further games -- TicTacToe (exhaustively testable) and Connect-4
(the "other domain" from the paper's future-work section) -- run through
the identical engine stack, scalar and batch.
"""

from repro.games.base import Game, GameState, random_playout
from repro.games.batch import BatchGame
from repro.games.breakthrough import Breakthrough, BreakthroughState
from repro.games.breakthrough_batch import BatchBreakthrough
from repro.games.connect4 import Connect4, Connect4State
from repro.games.connect4_batch import BatchConnect4
from repro.games.reversi import PASS_MOVE, Reversi, ReversiState
from repro.games.reversi_batch import BatchReversi
from repro.games.tictactoe import TicTacToe, TicTacToeState
from repro.games.tictactoe_batch import BatchTicTacToe
from repro.games.zobrist import ZobristTable, table_for

_GAMES = {
    "reversi": (Reversi, BatchReversi),
    "tictactoe": (TicTacToe, BatchTicTacToe),
    "connect4": (Connect4, BatchConnect4),
    "breakthrough": (Breakthrough, BatchBreakthrough),
}


def make_game(name: str) -> Game:
    """Instantiate a scalar game engine by name."""
    try:
        return _GAMES[name][0]()
    except KeyError:
        raise ValueError(
            f"unknown game {name!r}; available: {sorted(_GAMES)}"
        ) from None


def make_batch_game(name: str) -> BatchGame:
    """Instantiate the batched (SIMT kernel) engine for a game."""
    try:
        return _GAMES[name][1]()
    except KeyError:
        raise ValueError(
            f"unknown game {name!r}; available: {sorted(_GAMES)}"
        ) from None


__all__ = [
    "Game",
    "GameState",
    "BatchGame",
    "Reversi",
    "ReversiState",
    "BatchReversi",
    "PASS_MOVE",
    "TicTacToe",
    "TicTacToeState",
    "BatchTicTacToe",
    "Connect4",
    "Connect4State",
    "BatchConnect4",
    "Breakthrough",
    "BreakthroughState",
    "BatchBreakthrough",
    "make_game",
    "make_batch_game",
    "random_playout",
    "ZobristTable",
    "table_for",
]
