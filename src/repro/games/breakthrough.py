"""Scalar bitboard Breakthrough (8x8).

The third "other domain" (paper future-work section V): each side has
two rows of pawns; a pawn steps one square straight or diagonally
forward onto an empty square, and may capture only diagonally.  First
player to reach the opponent's home row -- or to capture every
opposing pawn -- wins.  There are no draws; a player with no legal
move (vanishingly rare but constructible) loses immediately.

Player +1 starts on rows 0-1 moving toward row 7; player -1 on rows
6-7 moving toward row 0.  A move id encodes ``from_square * 3 + dir``
with dir 0 = forward-left (west-ish), 1 = straight, 2 = forward-right.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.games.base import Game
from repro.util.bitops import (
    FULL_MASK,
    NOT_COL_0,
    NOT_COL_7,
    bit_count,
    bits_of,
)

#: Rows 0-1 (player +1's pawns) and rows 6-7 (player -1's).
P1_START = 0x0000_0000_0000_FFFF
P2_START = 0xFFFF_0000_0000_0000
#: Home rows to reach: +1 must reach row 7, -1 must reach row 0.
P1_GOAL = 0xFF00_0000_0000_0000
P2_GOAL = 0x0000_0000_0000_00FF

#: Direction ids.
DIR_LEFT, DIR_STRAIGHT, DIR_RIGHT = 0, 1, 2


class BreakthroughState(NamedTuple):
    p1: int  # player +1 pawns
    p2: int
    to_move: int


def _forward_shift(bit: int, player: int, direction: int) -> int:
    """Target square mask for one pawn; 0 if it leaves the board."""
    if player == 1:
        if direction == DIR_STRAIGHT:
            return (bit << 8) & FULL_MASK
        if direction == DIR_LEFT:
            return ((bit << 7) & FULL_MASK) & NOT_COL_7
        return ((bit << 9) & FULL_MASK) & NOT_COL_0
    if direction == DIR_STRAIGHT:
        return bit >> 8
    if direction == DIR_LEFT:
        return (bit >> 9) & NOT_COL_7
    return (bit >> 7) & NOT_COL_0


def fast_playout(state: BreakthroughState, rng) -> tuple[int, int]:
    """Inlined uniformly-random playout (same contract as
    ``random_playout``; cross-checked statistically in the tests).

    Works on raw bitboards with the three direction target masks,
    drawing the move uniformly across their combined population.
    """
    if state.to_move == 1:
        own, opp = state.p1, state.p2
    else:
        own, opp = state.p2, state.p1
    up = state.to_move == 1  # does `own` move toward higher bits?
    plies = 0
    while True:
        occupied = own | opp
        empty = ~occupied & FULL_MASK
        if up:
            straight = ((own << 8) & FULL_MASK) & empty
            left = ((own << 7) & FULL_MASK) & NOT_COL_7 & ~own
            right = ((own << 9) & FULL_MASK) & NOT_COL_0 & ~own
        else:
            straight = (own >> 8) & empty
            left = ((own >> 9) & NOT_COL_7) & ~own
            right = ((own >> 7) & NOT_COL_0) & ~own
        left &= FULL_MASK
        right &= FULL_MASK
        n_l = left.bit_count()
        n_s = straight.bit_count()
        n_r = right.bit_count()
        total = n_l + n_s + n_r
        if total == 0:
            # mover is stuck: mover loses
            winner_up = not up
            break
        k = rng.randrange(total)
        if k < n_l:
            mask, back_up, back_dn = left, 7, 9
        elif k < n_l + n_s:
            mask, back_up, back_dn = straight, 8, 8
            k -= n_l
        else:
            mask, back_up, back_dn = right, 9, 7
            k -= n_l + n_s
        m = mask
        for _ in range(k):
            m &= m - 1
        target = m & -m
        origin = target >> back_up if up else target << back_dn
        own = (own ^ origin) | target
        opp &= ~target
        plies += 1
        # win checks for the side that just moved
        goal = P1_GOAL if up else P2_GOAL
        if target & goal or not opp:
            winner_up = up
            break
        own, opp = opp, own
        up = not up
    # winner_up refers to the player moving toward higher bits = +1
    winner = 1 if winner_up else -1
    return winner, plies


class Breakthrough(Game):
    name = "breakthrough"
    num_moves = 64 * 3
    # 2x16 pawns; every move either advances a pawn (<= 6 rows each)
    # or captures; a generous lockstep bound:
    max_game_length = 256

    def initial_state(self) -> BreakthroughState:
        return BreakthroughState(P1_START, P2_START, 1)

    def to_move(self, state: BreakthroughState) -> int:
        return state.to_move

    def _own_opp(self, state: BreakthroughState) -> tuple[int, int]:
        if state.to_move == 1:
            return state.p1, state.p2
        return state.p2, state.p1

    def legal_moves(self, state: BreakthroughState) -> tuple[int, ...]:
        if self.is_terminal(state):
            return ()
        own, opp = self._own_opp(state)
        empty = ~(state.p1 | state.p2) & FULL_MASK
        moves = []
        for sq in bits_of(own):
            bit = 1 << sq
            for direction in (DIR_LEFT, DIR_STRAIGHT, DIR_RIGHT):
                target = _forward_shift(bit, state.to_move, direction)
                if not target:
                    continue
                if direction == DIR_STRAIGHT:
                    if target & empty:
                        moves.append(sq * 3 + direction)
                elif target & ~own & FULL_MASK:  # empty or capture
                    moves.append(sq * 3 + direction)
        return tuple(moves)

    def apply(self, state: BreakthroughState, move: int) -> BreakthroughState:
        if not 0 <= move < self.num_moves:
            raise ValueError(f"move id out of range: {move}")
        sq, direction = divmod(move, 3)
        bit = 1 << sq
        own, opp = self._own_opp(state)
        if not bit & own:
            raise ValueError(f"no pawn of the mover on square {sq}")
        target = _forward_shift(bit, state.to_move, direction)
        if not target:
            raise ValueError(f"move {move} leaves the board")
        if target & own:
            raise ValueError("cannot move onto an own pawn")
        if direction == DIR_STRAIGHT and target & opp:
            raise ValueError("straight moves cannot capture")
        own = (own ^ bit) | target
        opp &= ~target
        if state.to_move == 1:
            return BreakthroughState(own, opp, -1)
        return BreakthroughState(opp, own, 1)

    def is_terminal(self, state: BreakthroughState) -> bool:
        if state.p1 & P1_GOAL or state.p2 & P2_GOAL:
            return True
        if not state.p1 or not state.p2:
            return True
        return not self._mover_has_move(state)

    def winner(self, state: BreakthroughState) -> int:
        if state.p1 & P1_GOAL or not state.p2:
            return 1
        if state.p2 & P2_GOAL or not state.p1:
            return -1
        if not self._mover_has_move(state):
            return -state.to_move  # stuck player loses
        return 0

    def _mover_has_move(self, state: BreakthroughState) -> bool:
        own, opp = self._own_opp(state)
        empty = ~(state.p1 | state.p2) & FULL_MASK
        if state.to_move == 1:
            if (own << 8) & FULL_MASK & empty:
                return True
            if ((own & NOT_COL_0) << 7) & ~own & FULL_MASK:
                return True
            return bool(((own & NOT_COL_7) << 9) & ~own & FULL_MASK)
        if (own >> 8) & empty:
            return True
        if ((own & NOT_COL_7) >> 7) & ~own & FULL_MASK:
            return True
        return bool(((own & NOT_COL_0) >> 9) & ~own & FULL_MASK)

    def score(self, state: BreakthroughState) -> int:
        """Pawn difference (wins dominate score only at terminal)."""
        return bit_count(state.p1) - bit_count(state.p2)

    def zobrist_planes(
        self, state: BreakthroughState
    ) -> tuple[int, int]:
        return state.p1, state.p2

    def playout(self, state: BreakthroughState, rng) -> tuple[int, int]:
        return fast_playout(state, rng)

    def render(self, state: BreakthroughState) -> str:
        rows = []
        for r in range(7, -1, -1):
            cells = []
            for c in range(8):
                bit = 1 << (r * 8 + c)
                cells.append(
                    "^" if state.p1 & bit else "v" if state.p2 & bit else "."
                )
            rows.append(f"{r + 1} " + " ".join(cells))
        rows.append("  a b c d e f g h")
        mover = "^ (up)" if state.to_move == 1 else "v (down)"
        rows.append(f"to move: {mover}")
        return "\n".join(rows)
