"""Scalar bitboard Connect-4 (7 columns x 6 rows).

The paper's future-work section calls for applying block-parallel MCTS
to other domains; Connect-4 is our second domain.  Bit layout is the
standard one: bit ``col * 7 + row`` with row 0 at the bottom and one
sentinel row (row 6) per column so four-in-a-row detection never wraps
between columns.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.games.base import Game
from repro.util.bitops import bit_count

NUM_COLS = 7
NUM_ROWS = 6

#: One bit at the bottom cell of every column.
BOTTOM_MASK = sum(1 << (c * 7) for c in range(NUM_COLS))
#: All playable cells (sentinel row excluded).
BOARD_MASK = sum(
    1 << (c * 7 + r) for c in range(NUM_COLS) for r in range(NUM_ROWS)
)


def has_four(b: int) -> bool:
    """Whether bitboard ``b`` contains four aligned discs.

    Unrolled over the four directions (vertical 1, horizontal 7,
    diag / 8, diag \\ 6): this runs twice per terminal check, which is
    once per node created and once per playout ply.
    """
    y = b & (b >> 1)
    if y & (y >> 2):
        return True
    y = b & (b >> 7)
    if y & (y >> 14):
        return True
    y = b & (b >> 8)
    if y & (y >> 16):
        return True
    y = b & (b >> 6)
    return bool(y & (y >> 12))


class Connect4State(NamedTuple):
    p1: int  # player +1 discs
    p2: int  # player -1 discs
    to_move: int


class Connect4(Game):
    name = "connect4"
    num_moves = NUM_COLS
    max_game_length = NUM_COLS * NUM_ROWS

    def initial_state(self) -> Connect4State:
        return Connect4State(0, 0, 1)

    def to_move(self, state: Connect4State) -> int:
        return state.to_move

    def legal_moves(self, state: Connect4State) -> tuple[int, ...]:
        if self.is_terminal(state):
            return ()
        mask = state.p1 | state.p2
        top = 1 << (NUM_ROWS - 1)
        return tuple(
            c for c in range(NUM_COLS) if not mask >> (c * 7) & top
        )

    def legal_mask(self, state: Connect4State) -> int:
        if self.is_terminal(state):
            return 0
        # Column c is open iff its top playable cell (bit c*7 + 5) is
        # empty; gather those seven bits down to positions 0..6.
        top = ~(state.p1 | state.p2)
        return (
            (top >> 5 & 1)
            | (top >> 11 & 2)
            | (top >> 17 & 4)
            | (top >> 23 & 8)
            | (top >> 29 & 16)
            | (top >> 35 & 32)
            | (top >> 41 & 64)
        )

    def apply(self, state: Connect4State, move: int) -> Connect4State:
        if not 0 <= move < NUM_COLS:
            raise ValueError(f"illegal connect4 column {move}")
        mask = state.p1 | state.p2
        landing = (mask + (1 << (move * 7))) & ~mask & BOARD_MASK
        landing &= 0x7F << (move * 7)
        if not landing:
            raise ValueError(f"column {move} is full")
        if state.to_move == 1:
            return Connect4State(state.p1 | landing, state.p2, -1)
        return Connect4State(state.p1, state.p2 | landing, 1)

    def is_terminal(self, state: Connect4State) -> bool:
        return (
            has_four(state.p1)
            or has_four(state.p2)
            or (state.p1 | state.p2) == BOARD_MASK
        )

    def winner(self, state: Connect4State) -> int:
        if has_four(state.p1):
            return 1
        if has_four(state.p2):
            return -1
        return 0

    def score(self, state: Connect4State) -> int:
        return self.winner(state)

    def zobrist_planes(self, state: Connect4State) -> tuple[int, int]:
        return state.p1, state.p2

    def render(self, state: Connect4State) -> str:
        rows = []
        for r in range(NUM_ROWS - 1, -1, -1):
            cells = []
            for c in range(NUM_COLS):
                bit = 1 << (c * 7 + r)
                cells.append(
                    "X" if state.p1 & bit else "O" if state.p2 & bit else "."
                )
            rows.append(" ".join(cells))
        rows.append(" ".join(str(c) for c in range(NUM_COLS)))
        return "\n".join(rows)

    def discs(self, state: Connect4State) -> int:
        return bit_count(state.p1 | state.p2)
