"""The scalar game interface shared by every engine in the stack.

Conventions
-----------
* Players are ``+1`` (the first mover) and ``-1``.
* A *move* is a small non-negative integer id; games that can pass
  expose an explicit pass move id so MCTS treats passing like any other
  edge in the tree.
* ``winner`` is ``+1`` / ``-1`` / ``0`` (draw) in absolute terms;
  ``score`` is the point difference from player ``+1``'s perspective
  (Reversi: disc difference -- the y-axis of the paper's Figures 7/8).
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence

from repro.rng import XorShift64Star

GameState = Hashable


class Game(abc.ABC):
    """Abstract scalar game: immutable states, integer moves."""

    #: Human-readable identifier ("reversi", ...).
    name: str
    #: Exclusive upper bound on move ids (size of the move alphabet).
    num_moves: int
    #: Upper bound on the number of plies in any game (used by the SIMT
    #: kernel to bound its lockstep loop).
    max_game_length: int

    @abc.abstractmethod
    def initial_state(self) -> GameState:
        """The starting position."""

    @abc.abstractmethod
    def to_move(self, state: GameState) -> int:
        """The player (+1/-1) whose turn it is."""

    @abc.abstractmethod
    def legal_moves(self, state: GameState) -> tuple[int, ...]:
        """All legal move ids; never empty for a non-terminal state."""

    @abc.abstractmethod
    def apply(self, state: GameState, move: int) -> GameState:
        """The successor state after ``move`` (must be legal)."""

    @abc.abstractmethod
    def is_terminal(self, state: GameState) -> bool:
        """Whether the game has ended."""

    @abc.abstractmethod
    def winner(self, state: GameState) -> int:
        """+1/-1/0 for a terminal state."""

    @abc.abstractmethod
    def score(self, state: GameState) -> int:
        """Point difference (player +1 minus player -1); 0 if the game
        has no notion of points beyond the winner."""

    def legal_mask(self, state: GameState) -> int:
        """Bitmask of legal move ids: bit ``m`` set iff ``m`` is legal.

        Invariant (tested per game): iterating the set bits lowest
        first reproduces :meth:`legal_moves` exactly, so a zero mask
        means the state is terminal.  The array-backed tree arena
        (:mod:`repro.core.arena`) builds its untried-move bookkeeping
        from this mask; games with bitboard move generation override it
        to skip the tuple materialisation.
        """
        mask = 0
        for move in self.legal_moves(state):
            mask |= 1 << move
        return mask

    def render(self, state: GameState) -> str:
        """ASCII diagram of the position (optional, for examples)."""
        return repr(state)

    # -- canonical position hashing (see repro.games.zobrist) --------------

    def zobrist_planes(self, state: GameState) -> tuple[int, int]:
        """The two occupancy bitboards hashed by the Zobrist fold:
        ``(player +1 discs, player -1 discs)`` in *absolute* colours.
        Together with :meth:`to_move` these must determine the
        position completely -- two states with equal planes and side
        to move are the same position."""
        raise NotImplementedError(
            f"{self.name} does not define Zobrist occupancy planes"
        )

    def zobrist_key(self, state: GameState) -> int:
        """Canonical 64-bit Zobrist key of ``state`` (full recompute).

        The key is a cross-process contract: the cluster router hashes
        it for consistent placement and the shared result cache keys
        on it (docs/cluster.md).  Use :meth:`zobrist_apply` to advance
        a key incrementally along a move sequence.
        """
        from repro.games.zobrist import table_for

        p1, p2 = self.zobrist_planes(state)
        return table_for(self.name).fold(p1, p2, self.to_move(state))

    def zobrist_apply(
        self, state: GameState, move: int, key: int
    ) -> tuple[GameState, int]:
        """Apply ``move`` and incrementally update the position key.

        Only the *changed* occupancy bits are folded (XOR of keys is
        self-inverse), so the cost is proportional to the move's
        footprint -- one bit for a drop, the flip set for Reversi --
        not the board size.  Equals ``(next, zobrist_key(next))`` by
        contract, pinned property-style in the test suite.
        """
        from repro.games.zobrist import table_for

        nxt = self.apply(state, move)
        p1, p2 = self.zobrist_planes(state)
        q1, q2 = self.zobrist_planes(nxt)
        key = table_for(self.name).fold_update(
            key,
            p1 ^ q1,
            p2 ^ q2,
            self.to_move(state) != self.to_move(nxt),
        )
        return nxt, key

    def playout(self, state: GameState, rng) -> tuple[int, int]:
        """One uniformly random playout: ``(absolute winner, plies)``.

        The default walks the generic move API; games override it with
        an inlined fast path (Reversi does) -- behaviour must stay
        identical, which the test suite cross-checks.
        """
        return random_playout(self, state, rng)

    def validate_move(self, state: GameState, move: int) -> None:
        """Raise ``ValueError`` if ``move`` is illegal in ``state``."""
        if move not in self.legal_moves(state):
            raise ValueError(
                f"illegal move {move} in {self.name} state {state!r}"
            )


def random_playout(
    game: Game, state: GameState, rng: XorShift64Star
) -> tuple[int, int]:
    """Play uniformly random moves to the end of the game.

    Returns ``(winner, plies)`` where ``winner`` is absolute (+1/-1/0).
    This is the CPU-side simulation step of sequential MCTS; the GPU
    engines use the batched kernels instead.
    """
    plies = 0
    while not game.is_terminal(state):
        moves = game.legal_moves(state)
        state = game.apply(state, moves[rng.randrange(len(moves))])
        plies += 1
    return game.winner(state), plies


def playout_with_policy(
    game: Game,
    state: GameState,
    rng: XorShift64Star,
    policy,
) -> tuple[int, int]:
    """Like :func:`random_playout` but moves are chosen by ``policy``,
    a callable ``(game, state, moves, rng) -> move``.  Used by the
    greedy baseline player and by tests that need directed playouts."""
    plies = 0
    while not game.is_terminal(state):
        moves = game.legal_moves(state)
        state = game.apply(state, policy(game, state, moves, rng))
        plies += 1
    return game.winner(state), plies


def enumerate_states(game: Game, max_depth: int) -> Sequence[GameState]:
    """Breadth-first enumeration of all states up to ``max_depth`` plies.

    Only feasible for tiny games (TicTacToe); used by exhaustive tests.
    """
    frontier = [game.initial_state()]
    seen = list(frontier)
    for _ in range(max_depth):
        nxt = []
        for s in frontier:
            if game.is_terminal(s):
                continue
            for m in game.legal_moves(s):
                nxt.append(game.apply(s, m))
        seen.extend(nxt)
        frontier = nxt
        if not frontier:
            break
    return seen
