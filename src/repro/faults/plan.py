"""Fault plans: declarative, seedable descriptions of what goes wrong.

A plan is pure data -- rates, factors and outage windows -- with a
compact string grammar for the CLI (``serve-bench --faults ...``)::

    launch=0.1            10% of kernel launches fail at the API
    lost=0.05             5% of kernels complete but their results
                          never reach the host
    stall=0.02x8          2% of kernels run 8x slower than modelled
    outage=1@0.5+0.2      device 1 is down from t=0.5s for 0.2s
                          (repeatable for multiple windows)
    drop=0.01             1% of MPI rank contributions are dropped
    corrupt=0.05          5% of kernel readbacks are silently
                          corrupted (default mode: bitflip)
    corrupt=0.05:nan      ... with an explicit corruption mode
                          (bitflip | nan | negative | overflow |
                          moveswap)
    poison=tree:3         tree 3 accumulates biased statistics
                          (phantom wins written straight into its
                          root stats every iteration)
    disk=0.02             2% of journal record writes land on disk
                          with one byte flipped
    crash=tick:40         kill the whole service at its 40th scheduler
                          tick (``crash=40`` is shorthand)
    crash=iter:500        kill the service when any engine completes
                          its 500th search iteration
    seed=7                the injection seed

Entries are comma-separated; unknown keys are rejected, and so are
duplicate keys (``outage`` excepted -- it is repeatable by design).
A plan with every rate at zero, no outages, no poison and no crash
injects nothing, and the serving stack is bit-identical to running
without a plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


class FaultPlanError(ValueError):
    """Raised on malformed fault-plan specs."""


@dataclass(frozen=True)
class DeviceOutage:
    """One scheduled whole-device outage window ``[start, start+duration)``."""

    device_id: int
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise FaultPlanError(
                f"outage device id cannot be negative: {self.device_id}"
            )
        if self.start_s < 0:
            raise FaultPlanError(
                f"outage start cannot be negative: {self.start_s}"
            )
        if self.duration_s <= 0:
            raise FaultPlanError(
                f"outage duration must be positive: {self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


#: Where a planned crash can trigger.
CRASH_SITES = ("tick", "iteration")

#: How a corrupted kernel readback is mangled.  ``bitflip`` XORs a bit
#: into one winner value, ``nan`` replaces one with NaN, ``negative``
#: and ``overflow`` write out-of-range counts -- all four violate the
#: host-boundary result contract and are *detectable*.  ``moveswap``
#: swaps two lanes' (valid) results, misattributing them -- it passes
#: per-value validation and is only caught by the ensemble defenses
#: (audit / quarantine / trimmed vote).
CORRUPT_MODES = ("bitflip", "nan", "negative", "overflow", "moveswap")


@dataclass(frozen=True)
class CrashPoint:
    """A scheduled whole-service crash: the process dies at its
    ``at``-th event of the given ``site`` ("tick" = scheduler ticks,
    "iteration" = engine search iterations, counted service-wide)."""

    site: str
    at: int

    def __post_init__(self) -> None:
        if self.site not in CRASH_SITES:
            raise FaultPlanError(
                f"unknown crash site {self.site!r}; known: {CRASH_SITES}"
            )
        if self.at <= 0:
            raise FaultPlanError(
                f"crash point must be positive: {self.at}"
            )

    @staticmethod
    def parse(value: str) -> "CrashPoint":
        """``tick:K`` / ``iter:K`` / bare ``K`` (tick shorthand)."""
        site, sep, count = value.partition(":")
        if not sep:
            site, count = "tick", value
        site = {"iter": "iteration"}.get(site.strip(), site.strip())
        return CrashPoint(site, int(count))


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1]: {value}")


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, with what probability, under which seed."""

    #: Probability a kernel launch fails immediately at the API.
    launch_fail_rate: float = 0.0
    #: Probability a kernel runs to completion but its results are lost
    #: (the host only notices at the per-launch timeout).
    lost_result_rate: float = 0.0
    #: Probability a kernel stalls: its modelled duration is multiplied
    #: by :attr:`stall_factor`.
    stall_rate: float = 0.0
    stall_factor: float = 8.0
    #: Probability one rank's contribution to an MPI reduction is lost.
    mpi_drop_rate: float = 0.0
    #: Probability a kernel readback is silently corrupted (see
    #: :data:`CORRUPT_MODES` for what :attr:`corrupt_mode` does to it).
    corrupt_rate: float = 0.0
    corrupt_mode: str = "bitflip"
    #: Index of one tree that accumulates biased statistics (phantom
    #: wins written directly into its root stats), or None.
    poison_tree: int | None = None
    #: Probability a journal record write lands on disk with one byte
    #: flipped (checkpoint/journal persistence corruption).
    disk_corrupt_rate: float = 0.0
    #: Scheduled whole-device outage windows.
    outages: tuple[DeviceOutage, ...] = field(default_factory=tuple)
    #: Optional scheduled whole-service crash (see :class:`CrashPoint`).
    crash: CrashPoint | None = None
    #: Seed of the injection hash stream (independent of workload seeds).
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("launch_fail_rate", self.launch_fail_rate)
        _check_rate("lost_result_rate", self.lost_result_rate)
        _check_rate("stall_rate", self.stall_rate)
        _check_rate("mpi_drop_rate", self.mpi_drop_rate)
        _check_rate("corrupt_rate", self.corrupt_rate)
        _check_rate("disk_corrupt_rate", self.disk_corrupt_rate)
        if self.corrupt_mode not in CORRUPT_MODES:
            raise FaultPlanError(
                f"unknown corrupt mode {self.corrupt_mode!r}; "
                f"known: {CORRUPT_MODES}"
            )
        if self.poison_tree is not None and self.poison_tree < 0:
            raise FaultPlanError(
                f"poison tree index cannot be negative: {self.poison_tree}"
            )
        total = (
            self.launch_fail_rate + self.lost_result_rate + self.stall_rate
        )
        if total > 1.0:
            raise FaultPlanError(
                f"per-launch fault rates sum to {total}; must be <= 1"
            )
        if self.stall_factor <= 1.0:
            raise FaultPlanError(
                f"stall factor must exceed 1: {self.stall_factor}"
            )

    @property
    def injects_anything(self) -> bool:
        return bool(
            self.launch_fail_rate
            or self.lost_result_rate
            or self.stall_rate
            or self.mpi_drop_rate
            or self.corrupt_rate
            or self.poison_tree is not None
            or self.disk_corrupt_rate
            or self.outages
            or self.crash
        )

    def without_crash(self) -> "FaultPlan":
        """The same plan minus the scheduled crash -- what a recovered
        service runs under (the crash already happened; replaying it
        would crash-loop)."""
        return replace(self, crash=None)

    def scaled(self, scale: float) -> "FaultPlan":
        """The same plan with every probabilistic rate multiplied by
        ``scale`` (outage windows are kept as-is).  Used by the fault
        benchmark to sweep a plan's intensity."""
        if scale < 0:
            raise FaultPlanError(f"scale cannot be negative: {scale}")
        return replace(
            self,
            launch_fail_rate=min(1.0, self.launch_fail_rate * scale),
            lost_result_rate=min(1.0, self.lost_result_rate * scale),
            stall_rate=min(1.0, self.stall_rate * scale),
            mpi_drop_rate=min(1.0, self.mpi_drop_rate * scale),
            corrupt_rate=min(1.0, self.corrupt_rate * scale),
            disk_corrupt_rate=min(1.0, self.disk_corrupt_rate * scale),
        )

    @staticmethod
    def parse(text: str) -> "FaultPlan":
        """Parse the string grammar (see module docstring)."""
        if not isinstance(text, str) or not text.strip():
            raise FaultPlanError(f"empty fault plan spec: {text!r}")
        kwargs: dict = {}
        outages: list[DeviceOutage] = []
        seen: set[str] = set()
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            key, sep, value = entry.partition("=")
            if not sep:
                raise FaultPlanError(
                    f"fault plan entry {entry!r} is not key=value"
                )
            key = key.strip()
            value = value.strip()
            # Last-wins would silently mask a typo'd plan; only outage
            # is repeatable (multiple windows).
            if key in seen and key != "outage":
                raise FaultPlanError(
                    f"duplicate fault plan key {key!r} in {text!r}"
                )
            seen.add(key)
            try:
                if key == "launch":
                    kwargs["launch_fail_rate"] = float(value)
                elif key == "lost":
                    kwargs["lost_result_rate"] = float(value)
                elif key == "stall":
                    rate, _, factor = value.partition("x")
                    kwargs["stall_rate"] = float(rate)
                    if factor:
                        kwargs["stall_factor"] = float(factor)
                elif key == "drop":
                    kwargs["mpi_drop_rate"] = float(value)
                elif key == "corrupt":
                    rate, _, mode = value.partition(":")
                    kwargs["corrupt_rate"] = float(rate)
                    if mode:
                        kwargs["corrupt_mode"] = mode.strip()
                elif key == "poison":
                    target, sep2, index = value.partition(":")
                    if target.strip() != "tree" or not sep2:
                        raise FaultPlanError(
                            f"poison spec {value!r} must be tree:K"
                        )
                    kwargs["poison_tree"] = int(index)
                elif key == "disk":
                    kwargs["disk_corrupt_rate"] = float(value)
                elif key == "crash":
                    kwargs["crash"] = CrashPoint.parse(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "outage":
                    dev, _, window = value.partition("@")
                    start, _, duration = window.partition("+")
                    if not window or not duration:
                        raise FaultPlanError(
                            f"outage spec {value!r} must be "
                            "DEVICE@START+DURATION"
                        )
                    outages.append(
                        DeviceOutage(int(dev), float(start), float(duration))
                    )
                else:
                    raise FaultPlanError(
                        f"unknown fault plan key {key!r} in {text!r}; "
                        "known: launch, lost, stall, outage, drop, "
                        "corrupt, poison, disk, crash, seed"
                    )
            except FaultPlanError:
                raise
            except ValueError:
                raise FaultPlanError(
                    f"malformed fault plan entry {entry!r}"
                ) from None
        return FaultPlan(outages=tuple(outages), **kwargs)

    @staticmethod
    def coerce(plan: "FaultPlan | str | None") -> "FaultPlan | None":
        """Accept a plan, a spec string, or None."""
        if plan is None or isinstance(plan, FaultPlan):
            return plan
        if isinstance(plan, str):
            return FaultPlan.parse(plan)
        raise FaultPlanError(
            f"fault plan must be a FaultPlan, string or None, "
            f"got {type(plan).__name__}: {plan!r}"
        )
