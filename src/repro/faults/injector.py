"""The fault decision engine: counter-based, exactly reproducible.

Every probabilistic decision consumes one *counter-hash draw*: the
uniform value is ``splitmix64(seed, tag, counter) / 2^64``, not a step
of a shared RNG stream.  Two consequences matter for the serving
stack:

* Determinism is independent of interleaving.  Kernel-launch draws and
  MPI-drop draws advance separate counters, so adding an MPI search to
  a workload cannot shift which kernel launches fail.
* The injector can be shared by every layer of one service run (the
  launcher, the MPI cluster) and still reproduce byte-identical fault
  sequences from the plan's seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import DeviceOutage, FaultPlan
from repro.util.seeding import derive_seed

#: Fault kinds, as reported in injector/service counters.
KIND_LAUNCH_FAIL = "launch_fail"
KIND_LOST_RESULT = "lost_result"
KIND_STALL = "stall"
KIND_OUTAGE = "outage"
KIND_MPI_DROP = "mpi_drop"
KIND_CRASH = "crash"
KIND_CORRUPT_RESULT = "corrupt_result"
KIND_POISON = "poison"
KIND_DISK_CORRUPT = "disk_corrupt"

_SCALE = float(2**64)


@dataclass(frozen=True)
class Fault:
    """One injected fault decision for a launch attempt."""

    kind: str
    #: Duration multiplier (only meaningful for stalls).
    factor: float = 1.0


@dataclass(frozen=True)
class Corruption:
    """One silent-data-corruption decision for a kernel readback.

    ``lane`` picks the victim value in the flat result batch; ``salt``
    is a deterministic 64-bit payload the corruption applicators use to
    choose which bit flips / which lane to swap with.  How the modes
    mangle results lives in :mod:`repro.integrity.corruption`.
    """

    mode: str
    lane: int
    salt: int


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-event fault decisions."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._launch_draws = 0
        self._mpi_draws = 0
        self._corrupt_draws = 0
        self._disk_draws = 0
        self.counters: dict[str, int] = {
            KIND_LAUNCH_FAIL: 0,
            KIND_LOST_RESULT: 0,
            KIND_STALL: 0,
            KIND_OUTAGE: 0,
            KIND_MPI_DROP: 0,
            KIND_CRASH: 0,
            KIND_CORRUPT_RESULT: 0,
            KIND_POISON: 0,
            KIND_DISK_CORRUPT: 0,
        }
        self._crashed = False

    def _uniform(self, tag: str, counter: int) -> float:
        return derive_seed(self.plan.seed, tag, counter) / _SCALE

    # -- device outages ----------------------------------------------------

    def outage_at(self, device_id: int, t: float) -> DeviceOutage | None:
        """The outage window covering device ``device_id`` at time
        ``t``, if any.  Scheduled (not probabilistic): consumes no
        draw."""
        for outage in self.plan.outages:
            if outage.device_id == device_id and outage.covers(t):
                return outage
        return None

    # -- kernel launches ---------------------------------------------------

    def launch_fault(self, device_id: int, t: float) -> Fault | None:
        """The fault (if any) afflicting one kernel-launch attempt.

        Outage windows take precedence (a down device cannot run
        anything); otherwise one counter draw picks between launch
        failure, lost result, stall, or clean execution.
        """
        if self.outage_at(device_id, t) is not None:
            self.counters[KIND_OUTAGE] += 1
            return Fault(KIND_OUTAGE)
        plan = self.plan
        if not (
            plan.launch_fail_rate
            or plan.lost_result_rate
            or plan.stall_rate
        ):
            return None
        self._launch_draws += 1
        u = self._uniform("launch", self._launch_draws)
        if u < plan.launch_fail_rate:
            self.counters[KIND_LAUNCH_FAIL] += 1
            return Fault(KIND_LAUNCH_FAIL)
        u -= plan.launch_fail_rate
        if u < plan.lost_result_rate:
            self.counters[KIND_LOST_RESULT] += 1
            return Fault(KIND_LOST_RESULT)
        u -= plan.lost_result_rate
        if u < plan.stall_rate:
            self.counters[KIND_STALL] += 1
            return Fault(KIND_STALL, factor=plan.stall_factor)
        return None

    # -- silent data corruption --------------------------------------------

    def result_corruption(self, lanes: int) -> Corruption | None:
        """The corruption (if any) afflicting one kernel readback of
        ``lanes`` result values.  One counter draw per readback on its
        own tag, so adding corruption to a plan cannot shift which
        launches fail -- and a zero ``corrupt`` rate consumes no draws
        at all (the bit-identity guarantee)."""
        if not self.plan.corrupt_rate or lanes <= 0:
            return None
        self._corrupt_draws += 1
        n = self._corrupt_draws
        if self._uniform("corrupt", n) >= self.plan.corrupt_rate:
            return None
        self.counters[KIND_CORRUPT_RESULT] += 1
        seed = self.plan.seed
        return Corruption(
            mode=self.plan.corrupt_mode,
            lane=derive_seed(seed, "corrupt_lane", n) % lanes,
            salt=derive_seed(seed, "corrupt_salt", n),
        )

    @property
    def poison_tree(self) -> int | None:
        """Index of the tree scheduled to accumulate biased stats, or
        None.  Scheduled (not probabilistic): consumes no draws."""
        return self.plan.poison_tree

    def poison_applied(self) -> None:
        """Record one application of the scheduled tree poison."""
        self.counters[KIND_POISON] += 1

    def disk_corruption(self, n_bytes: int) -> tuple[int, int] | None:
        """The on-disk byte flip (if any) afflicting one persistence
        write of ``n_bytes``.  Returns ``(offset, xor_mask)`` with a
        non-zero single-bit mask, or None.  Own tag and counter, same
        zero-rate/zero-draw guarantee as the other families."""
        if not self.plan.disk_corrupt_rate or n_bytes <= 0:
            return None
        self._disk_draws += 1
        n = self._disk_draws
        if self._uniform("disk", n) >= self.plan.disk_corrupt_rate:
            return None
        self.counters[KIND_DISK_CORRUPT] += 1
        seed = self.plan.seed
        offset = derive_seed(seed, "disk_offset", n) % n_bytes
        mask = 1 << (derive_seed(seed, "disk_bit", n) % 8)
        return offset, mask

    # -- scheduled crashes -------------------------------------------------

    def crash_due(self, site: str, count: int) -> bool:
        """Has the planned crash point been reached?  ``site`` is the
        caller's event kind ("tick" | "iteration"), ``count`` its
        running event counter.  Scheduled (not probabilistic):
        consumes no draw, and fires at most once per injector so a
        recovered service does not crash-loop."""
        crash = self.plan.crash
        if (
            crash is None
            or self._crashed
            or crash.site != site
            or count < crash.at
        ):
            return False
        self._crashed = True
        self.counters[KIND_CRASH] += 1
        return True

    # -- MPI messages ------------------------------------------------------

    def drop_message(self) -> bool:
        """Is the next MPI rank contribution dropped?"""
        if not self.plan.mpi_drop_rate:
            return False
        self._mpi_draws += 1
        dropped = (
            self._uniform("mpi", self._mpi_draws) < self.plan.mpi_drop_rate
        )
        if dropped:
            self.counters[KIND_MPI_DROP] += 1
        return dropped

    # -- reporting ---------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.counters.values())

    def injected(self) -> dict[str, int]:
        """Non-zero fault counts by kind."""
        return {k: v for k, v in self.counters.items() if v}
