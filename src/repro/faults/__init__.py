"""Deterministic fault injection for the virtual-GPU serving stack.

The paper's block-parallel design assumes every kernel launch and MPI
exchange succeeds; a production service cannot.  This package provides
the failure side of that contract as *modelled* events against the
virtual clock, so resilience logic (retry, quarantine, degradation) is
exercised deterministically and byte-reproducibly:

* :class:`FaultPlan` -- a declarative, seedable description of what
  goes wrong: per-launch kernel failures, device stalls (latency
  spikes), lost results, scheduled whole-device outages, and dropped
  MPI messages.  Plans parse from a compact string grammar
  (``"launch=0.1,lost=0.05,seed=7"``) for the CLI.
* :class:`FaultInjector` -- the stateful decision engine built from a
  plan.  Every decision is a counter-based hash draw (splitmix64), so
  the same plan always injects the same faults at the same points, no
  matter how callers interleave other RNG use.

See docs/faults.md for the grammar, the retry/degradation semantics of
the serving layer, and how to write a fault-injection test.
"""

from repro.faults.injector import (
    Corruption,
    Fault,
    FaultInjector,
    KIND_CORRUPT_RESULT,
    KIND_CRASH,
    KIND_DISK_CORRUPT,
    KIND_LAUNCH_FAIL,
    KIND_LOST_RESULT,
    KIND_MPI_DROP,
    KIND_OUTAGE,
    KIND_POISON,
    KIND_STALL,
)
from repro.faults.plan import (
    CORRUPT_MODES,
    CRASH_SITES,
    CrashPoint,
    DeviceOutage,
    FaultPlan,
    FaultPlanError,
)

__all__ = [
    "CORRUPT_MODES",
    "CRASH_SITES",
    "Corruption",
    "CrashPoint",
    "DeviceOutage",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "KIND_CORRUPT_RESULT",
    "KIND_CRASH",
    "KIND_DISK_CORRUPT",
    "KIND_LAUNCH_FAIL",
    "KIND_LOST_RESULT",
    "KIND_MPI_DROP",
    "KIND_OUTAGE",
    "KIND_POISON",
    "KIND_STALL",
]
