"""Bitboard primitives over 64-bit words, scalar and vectorised.

An 8x8 board is packed into one 64-bit word.  Square ``(row, col)`` maps
to bit ``row * 8 + col`` with row 0 at the top and col 0 at the left
("a"-file).  Directional shifts mask out wrap-around across board edges
so flood-fill style move generation (Kogge-Stone) is a handful of
shift/and operations -- the same trick the paper's CUDA playout kernel
relies on, and the reason a whole batch of boards can be advanced in
lockstep with NumPy.

Every ``shift_*`` function accepts either a Python ``int`` or a NumPy
``uint64`` array and returns the same kind, so the scalar game engine
and the batched "GPU" kernel share one implementation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: NumPy dtype used for all bitboards.
U64 = np.uint64

Board = Union[int, np.ndarray]

#: All 64 bits set.
FULL_MASK = 0xFFFF_FFFF_FFFF_FFFF
#: Bits of every square not in column 0 (the left edge).
NOT_COL_0 = 0xFEFE_FEFE_FEFE_FEFE
#: Bits of every square not in column 7 (the right edge).
NOT_COL_7 = 0x7F7F_7F7F_7F7F_7F7F

_ONE = U64(1)
_EIGHT = U64(8)
_U_NOT_COL_0 = U64(NOT_COL_0)
_U_NOT_COL_7 = U64(NOT_COL_7)


def _is_array(b: Board) -> bool:
    return isinstance(b, np.ndarray)


def shift_east(b: Board) -> Board:
    """Move every bit one column to the right (col + 1)."""
    if _is_array(b):
        return (b << _ONE) & _U_NOT_COL_0
    return ((b << 1) & NOT_COL_0) & FULL_MASK


def shift_west(b: Board) -> Board:
    """Move every bit one column to the left (col - 1)."""
    if _is_array(b):
        return (b >> _ONE) & _U_NOT_COL_7
    return (b >> 1) & NOT_COL_7


def shift_south(b: Board) -> Board:
    """Move every bit one row down (row + 1)."""
    if _is_array(b):
        return b << _EIGHT
    return (b << 8) & FULL_MASK


def shift_north(b: Board) -> Board:
    """Move every bit one row up (row - 1)."""
    if _is_array(b):
        return b >> _EIGHT
    return b >> 8


def shift_northeast(b: Board) -> Board:
    return shift_north(shift_east(b))


def shift_northwest(b: Board) -> Board:
    return shift_north(shift_west(b))


def shift_southeast(b: Board) -> Board:
    return shift_south(shift_east(b))


def shift_southwest(b: Board) -> Board:
    return shift_south(shift_west(b))


#: The eight directional shifts, in a fixed order used by move generators.
ALL_SHIFTS = (
    shift_east,
    shift_west,
    shift_south,
    shift_north,
    shift_northeast,
    shift_northwest,
    shift_southeast,
    shift_southwest,
)


def bit_count(b: int) -> int:
    """Population count of a scalar bitboard."""
    return int(b).bit_count()


def bit_count_u64(b: np.ndarray) -> np.ndarray:
    """Population count of every word in a uint64 array."""
    return np.bitwise_count(b)


def lsb(b: int) -> int:
    """The lowest set bit of ``b`` as a one-bit mask (0 if ``b`` is 0)."""
    return b & -b if b else 0


def bit_index(one_bit: int) -> int:
    """Index (0..63) of a mask with exactly one bit set."""
    if one_bit == 0 or one_bit & (one_bit - 1):
        raise ValueError(f"expected exactly one set bit, got {one_bit:#x}")
    return one_bit.bit_length() - 1


def bits_of(b: int):
    """Yield the index of every set bit, lowest first."""
    while b:
        low = b & -b
        yield low.bit_length() - 1
        b ^= low


def square_mask(row: int, col: int) -> int:
    """One-bit mask for square ``(row, col)`` on the 8x8 board."""
    if not (0 <= row < 8 and 0 <= col < 8):
        raise ValueError(f"square off the board: ({row}, {col})")
    return 1 << (row * 8 + col)


def mask_to_square(one_bit: int) -> tuple[int, int]:
    """Inverse of :func:`square_mask`."""
    idx = bit_index(one_bit)
    return divmod(idx, 8)[0], idx % 8


def render_bitboard(b: int, mark: str = "x", empty: str = ".") -> str:
    """ASCII diagram of a scalar bitboard, row 0 on top."""
    rows = []
    for r in range(8):
        row = "".join(
            mark if b >> (r * 8 + c) & 1 else empty for c in range(8)
        )
        rows.append(row)
    return "\n".join(rows)
