"""Deterministic seed derivation.

Experiments fan out over (game index, player, engine, rank, block, ...)
coordinates.  Each coordinate tuple must map to an independent,
reproducible random stream.  We derive child seeds with splitmix64 over
a hash of the path, the standard construction for counter-based seeding
in parallel Monte Carlo codes.
"""

from __future__ import annotations

from typing import Iterable

_MASK = 0xFFFF_FFFF_FFFF_FFFF
_GOLDEN = 0x9E37_79B9_7F4A_7C15


def splitmix64(x: int) -> int:
    """One splitmix64 output step; a high-quality 64-bit mixer."""
    x = (x + _GOLDEN) & _MASK
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58_476D_1CE4_E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D0_49BB_1331_11EB) & _MASK
    return z ^ (z >> 31)


def derive_seed(root: int, *path: int | str) -> int:
    """Derive a 64-bit child seed from a root seed and a coordinate path.

    Distinct paths give (with overwhelming probability) distinct,
    decorrelated seeds; the same path always gives the same seed.
    """
    state = splitmix64(root & _MASK)
    for part in path:
        if isinstance(part, str):
            for byte in part.encode("utf-8"):
                state = splitmix64(state ^ byte)
        else:
            state = splitmix64(state ^ (part & _MASK))
    # Avoid the all-zero state some xorshift generators cannot accept.
    return state or _GOLDEN


class SeedLadder:
    """A root seed plus a fixed prefix path; children extend the path.

    >>> ladder = SeedLadder(42, "fig6")
    >>> a = ladder.seed("game", 0)
    >>> b = ladder.seed("game", 1)
    >>> a != b
    True
    >>> ladder.seed("game", 0) == a
    True
    """

    def __init__(self, root: int, *prefix: int | str) -> None:
        self._root = root
        self._prefix: tuple[int | str, ...] = tuple(prefix)

    @property
    def root(self) -> int:
        return self._root

    def seed(self, *path: int | str) -> int:
        return derive_seed(self._root, *self._prefix, *path)

    def child(self, *path: int | str) -> "SeedLadder":
        return SeedLadder(self._root, *self._prefix, *path)

    def seeds(self, label: str, count: int) -> list[int]:
        """A batch of ``count`` sibling seeds under ``label``."""
        return [self.seed(label, i) for i in range(count)]


def spread_seeds(root: int, labels: Iterable[int | str]) -> dict:
    """Map each label to its derived seed (convenience for dict configs)."""
    return {label: derive_seed(root, label) for label in labels}
