"""Plain-text rendering of experiment results.

The harness reports every figure as rows/series on stdout (the
reproduction's equivalent of the paper's plots).  These helpers keep the
formatting in one place so benches and examples print identically.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render several y-series against a shared x axis as a table."""
    headers = [x_label, *series.keys()]
    columns = list(series.values())
    for name, col in series.items():
        if len(col) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(col)} points, "
                f"x axis has {len(x_values)}"
            )
    rows = [
        [x, *(col[i] for col in columns)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    title: str | None = None,
) -> str:
    """A multi-series ASCII line chart (each series gets a glyph).

    Good enough to eyeball figure shapes in a terminal or a markdown
    code block; the harness report uses it next to the numeric tables.
    """
    if not series:
        raise ValueError("no series to plot")
    glyphs = "*o+x#@%&"
    if len(series) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} series supported")
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        raise ValueError("series are empty")
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, values) in zip(glyphs, series.items()):
        n = len(values)
        if n == 0:
            continue
        for col in range(width):
            idx = min(int(col / width * n), n - 1)
            row = int((values[idx] - lo) / span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:>10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{lo:>10.3g} +" + "-" * width + "+")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(glyphs, series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A crude one-line trend plot, for quick eyeballing in terminals."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    picked = list(values)[::step]
    return "".join(
        glyphs[min(int((v - lo) / span * (len(glyphs) - 1)), len(glyphs) - 1)]
        for v in picked
    )


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)
