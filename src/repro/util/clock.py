"""Virtual time.

Every engine in this reproduction runs against a :class:`Clock` instead
of the wall clock.  Components *charge* modelled durations to the clock
(a CPU iteration, a GPU kernel, an MPI collective) and budgets are
expressed in virtual seconds.  This keeps experiments deterministic and
laptop-scale while preserving the relative-throughput shapes the paper's
figures report (see DESIGN.md section 5).
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised on invalid clock manipulation (negative advance, etc.)."""


class Clock:
    """A monotonically advancing virtual clock.

    Parameters
    ----------
    start:
        Initial time in virtual seconds.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start in the past: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time."""
        if dt < 0.0:
            raise ClockError(f"cannot advance by a negative duration: {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only meaningful between experiments)."""
        if start < 0.0:
            raise ClockError(f"clock cannot reset into the past: {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.9f})"


class Stopwatch:
    """Measure an interval on a :class:`Clock`.

    >>> clock = Clock()
    >>> sw = Stopwatch(clock)
    >>> _ = clock.advance(1.5)
    >>> sw.elapsed
    1.5
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> None:
        self._start = self._clock.now
