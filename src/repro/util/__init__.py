"""Shared low-level utilities: bit operations, virtual time, seeding, tables.

These are the foundations every other subpackage builds on.  Nothing in
here knows about games, GPUs or MCTS.
"""

from repro.util.bitops import (
    U64,
    bit_count,
    bit_count_u64,
    bit_index,
    bits_of,
    lsb,
    shift_east,
    shift_north,
    shift_northeast,
    shift_northwest,
    shift_south,
    shift_southeast,
    shift_southwest,
    shift_west,
)
from repro.util.clock import Clock, ClockError
from repro.util.profile import NULL_PROFILER, PhaseStats, Profiler
from repro.util.seeding import SeedLadder, derive_seed
from repro.util.tables import format_series, format_table

__all__ = [
    "U64",
    "bit_count",
    "bit_count_u64",
    "bit_index",
    "bits_of",
    "lsb",
    "shift_east",
    "shift_north",
    "shift_northeast",
    "shift_northwest",
    "shift_south",
    "shift_southeast",
    "shift_southwest",
    "shift_west",
    "Clock",
    "ClockError",
    "NULL_PROFILER",
    "PhaseStats",
    "Profiler",
    "SeedLadder",
    "derive_seed",
    "format_series",
    "format_table",
]
