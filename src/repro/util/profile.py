"""Lightweight phase profiling for the perf-sensitive paths.

A :class:`Profiler` collects wall-clock time per named *phase*
(context-manager timers) plus free-form counters, so benchmark runs
can attribute an engine iteration to select/expand/playout/backprop
without any external tooling.  Instrumented code takes a profiler
argument defaulting to :data:`NULL_PROFILER`, whose phase context is a
reused constant and whose counters are dropped -- the disabled cost is
one attribute check per phase.

Used by ``python -m repro serve-bench --profile`` and
``benchmarks/bench_micro.py`` so future performance PRs have baseline
phase breakdowns to compare against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.util.tables import format_table


@dataclass
class PhaseStats:
    """Accumulated timings of one named phase."""

    name: str
    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class _PhaseTimer:
    """Context manager adding one timed span to a phase."""

    __slots__ = ("_stats", "_t0")

    def __init__(self, stats: PhaseStats) -> None:
        self._stats = stats
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stats.calls += 1
        self._stats.total_s += time.perf_counter() - self._t0


class _NullTimer:
    """No-op context manager shared by every disabled phase() call."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMER = _NullTimer()


@dataclass
class Profiler:
    """Per-phase wall timers and counters.

    ::

        prof = Profiler()
        with prof.phase("select"):
            ...
        prof.count("expansions", blocks)
        print(prof.render())
    """

    enabled: bool = True
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    def phase(self, name: str):
        """Timer context for one span of ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        stats = self.phases.get(name)
        if stats is None:
            stats = PhaseStats(name)
            self.phases[name] = stats
        return _PhaseTimer(stats)

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name``."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    def total_s(self, name: str) -> float:
        """Total seconds recorded for phase ``name`` (0 if unseen)."""
        stats = self.phases.get(name)
        return stats.total_s if stats else 0.0

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's phases and counters into this one."""
        for name, stats in other.phases.items():
            mine = self.phases.get(name)
            if mine is None:
                self.phases[name] = PhaseStats(
                    name, stats.calls, stats.total_s
                )
            else:
                mine.calls += stats.calls
                mine.total_s += stats.total_s
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def render(self, title: str = "phase profile") -> str:
        """Human-readable table of phases then counters."""
        wall = sum(s.total_s for s in self.phases.values())
        rows = []
        for name in sorted(
            self.phases, key=lambda n: -self.phases[n].total_s
        ):
            stats = self.phases[name]
            share = stats.total_s / wall if wall > 0 else 0.0
            rows.append(
                [
                    name,
                    str(stats.calls),
                    f"{stats.total_s * 1e3:.2f}",
                    f"{stats.mean_s * 1e6:.1f}",
                    f"{share * 100:.1f}%",
                ]
            )
        for name in sorted(self.counters):
            rows.append(
                [f"#{name}", f"{self.counters[name]:g}", "", "", ""]
            )
        return format_table(
            ["phase", "calls", "total ms", "mean us", "share"],
            rows,
            title=title,
        )


#: Shared disabled profiler -- the default for instrumented code.
NULL_PROFILER = Profiler(enabled=False)
