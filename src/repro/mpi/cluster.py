"""In-process simulated MPI cluster.

Every rank owns a virtual :class:`~repro.util.clock.Clock`.  Rank-local
work is performed by calling :meth:`MpiCluster.run_on_ranks` with a
function executed once per rank (sequentially in real time, but each
rank charges only its own clock, so virtual time is genuinely
parallel).  Collectives operate on all ranks' values at once and charge
binomial-tree costs to every participant, then leave all clocks
synchronised at the collective's completion time -- the semantics of a
blocking MPI collective.

A :class:`~repro.faults.FaultInjector` can be attached to model lossy
vote aggregation: each non-root rank's contribution to ``reduce`` /
``allreduce`` may be dropped (the root's never is, so a reduction is
never empty).  Dropped contributions are counted in :attr:`dropped`;
timing is unaffected -- the collective still runs, the payload just
arrives without that rank's votes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.mpi.network import NetworkModel
from repro.util.clock import Clock
from repro.util.seeding import derive_seed


class MpiError(RuntimeError):
    """Raised on invalid communicator use."""


class RankContext:
    """What a rank-local function sees: its id, clock and seed."""

    def __init__(self, rank: int, size: int, clock: Clock, seed: int) -> None:
        self.rank = rank
        self.size = size
        self.clock = clock
        self.seed = seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankContext(rank={self.rank}, size={self.size})"


_REDUCE_OPS: dict[str, Callable] = {
    "sum": lambda values: _elementwise(values, np.add),
    "max": lambda values: _elementwise(values, np.maximum),
    "min": lambda values: _elementwise(values, np.minimum),
}


def _elementwise(values: Sequence, ufunc) -> object:
    acc = values[0]
    for v in values[1:]:
        acc = ufunc(acc, v)
    return acc


def _payload_bytes(value: object) -> int:
    """Approximate wire size of a reduced/broadcast payload."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, (tuple, list)):
        return sum(_payload_bytes(v) for v in value)
    if isinstance(value, bytes):
        return len(value)
    # Conservative default for small pickled objects (root states etc.)
    return 64


class MpiCluster:
    """A fixed-size communicator over a simulated network."""

    def __init__(
        self,
        size: int,
        network: NetworkModel,
        seed: int = 0,
        injector=None,
    ) -> None:
        if size <= 0:
            raise MpiError(f"cluster size must be positive: {size}")
        self.size = size
        self.network = network
        self.injector = injector
        #: Rank contributions lost to injected message drops.
        self.dropped = 0
        self.clocks = [Clock() for _ in range(size)]
        self._contexts = [
            RankContext(r, size, self.clocks[r], derive_seed(seed, "rank", r))
            for r in range(size)
        ]

    # -- rank-local execution ------------------------------------------------

    def run_on_ranks(self, fn: Callable[[RankContext], object]) -> list:
        """Execute ``fn(ctx)`` once per rank; each rank charges its own
        clock inside ``fn``.  Returns the per-rank results."""
        return [fn(ctx) for ctx in self._contexts]

    # -- synchronisation -----------------------------------------------------

    def barrier(self) -> float:
        """Block every rank until all arrive; clocks align at the max
        (plus a tree of latency-only messages)."""
        latest = max(c.now for c in self.clocks)
        cost = self.network.tree_collective_time(0, self.size)
        for c in self.clocks:
            c.advance_to(latest + cost)
        return latest + cost

    # -- collectives -----------------------------------------------------------

    def bcast(self, value: object, root: int = 0) -> list:
        """Broadcast ``value`` from ``root``; returns one copy per rank."""
        self._check_rank(root)
        done = self._collective_done(_payload_bytes(value))
        for c in self.clocks:
            c.advance_to(done)
        return [value for _ in range(self.size)]

    def reduce(
        self, values: Sequence, op: str = "sum", root: int = 0
    ) -> object:
        """Reduce per-rank ``values`` to ``root``; returns the reduced
        value (as seen by the root)."""
        self._check_rank(root)
        result = self._apply_op(self._surviving(values, root), op)
        done = self._collective_done(_payload_bytes(values[root]))
        for c in self.clocks:
            c.advance_to(done)
        return result

    def allreduce(self, values: Sequence, op: str = "sum") -> list:
        """Reduce and redistribute; every rank gets the result."""
        result = self._apply_op(self._surviving(values, 0), op)
        nbytes = _payload_bytes(values[0])
        latest = max(c.now for c in self.clocks)
        done = latest + self.network.allreduce_time(nbytes, self.size)
        for c in self.clocks:
            c.advance_to(done)
        return [result for _ in range(self.size)]

    def gather(self, values: Sequence, root: int = 0) -> list:
        """Gather one value per rank at ``root``."""
        self._check_rank(root)
        done = self._collective_done(_payload_bytes(values[0]))
        for c in self.clocks:
            c.advance_to(done)
        return list(values)

    def scatter(self, values: Sequence, root: int = 0) -> list:
        """Distribute one value per rank from ``root``."""
        self._check_rank(root)
        if len(values) != self.size:
            raise MpiError(
                f"scatter needs one value per rank ({self.size}), "
                f"got {len(values)}"
            )
        done = self._collective_done(_payload_bytes(values[0]))
        for c in self.clocks:
            c.advance_to(done)
        return list(values)

    def allgather(self, values: Sequence) -> list:
        """Every rank receives every rank's value.

        Costed as gather + broadcast of the concatenated payload.
        """
        if len(values) != self.size:
            raise MpiError(
                f"allgather needs one value per rank ({self.size}), "
                f"got {len(values)}"
            )
        total_bytes = sum(_payload_bytes(v) for v in values)
        latest = max(c.now for c in self.clocks)
        done = latest + self.network.tree_collective_time(
            _payload_bytes(values[0]), self.size
        ) + self.network.tree_collective_time(total_bytes, self.size)
        for c in self.clocks:
            c.advance_to(done)
        return [list(values) for _ in range(self.size)]

    def alltoall(self, matrix: Sequence[Sequence]) -> list:
        """``matrix[src][dst]`` goes to rank ``dst``; returns per-rank
        inboxes.  Costed as ``size - 1`` message rounds (a ring
        exchange), the standard lower-order model."""
        if len(matrix) != self.size or any(
            len(row) != self.size for row in matrix
        ):
            raise MpiError(
                f"alltoall needs a {self.size}x{self.size} matrix"
            )
        nbytes = max(
            _payload_bytes(cell) for row in matrix for cell in row
        )
        latest = max(c.now for c in self.clocks)
        done = latest + max(self.size - 1, 0) * self.network.message_time(
            nbytes
        )
        for c in self.clocks:
            c.advance_to(done)
        return [
            [matrix[src][dst] for src in range(self.size)]
            for dst in range(self.size)
        ]

    # -- point-to-point --------------------------------------------------------

    def send(self, src: int, dst: int, value: object) -> object:
        """Blocking send/recv pair between two ranks."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise MpiError(f"rank {src} cannot send to itself")
        t = self.network.message_time(_payload_bytes(value))
        arrive = self.clocks[src].now + t
        self.clocks[dst].advance_to(arrive)
        self.clocks[src].advance(t)
        return value

    # -- helpers ---------------------------------------------------------------

    def _surviving(self, values: Sequence, keep_rank: int) -> list:
        """Drop injected-lossy rank contributions -- never
        ``keep_rank``'s, so the surviving list is never empty."""
        if len(values) != self.size:
            raise MpiError(
                f"expected one value per rank ({self.size}), "
                f"got {len(values)}"
            )
        if self.injector is None:
            return list(values)
        kept = []
        for rank, value in enumerate(values):
            if rank != keep_rank and self.injector.drop_message():
                self.dropped += 1
            else:
                kept.append(value)
        return kept

    def _apply_op(self, values: Sequence, op: str):
        if not 0 < len(values) <= self.size:
            raise MpiError(
                f"expected one value per rank ({self.size}), "
                f"got {len(values)}"
            )
        try:
            reducer = _REDUCE_OPS[op]
        except KeyError:
            raise MpiError(
                f"unknown reduce op {op!r}; available: "
                f"{sorted(_REDUCE_OPS)}"
            ) from None
        return reducer(list(values))

    def _collective_done(self, nbytes: int) -> float:
        latest = max(c.now for c in self.clocks)
        return latest + self.network.tree_collective_time(
            nbytes, self.size
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MpiError(
                f"rank {rank} out of range for size {self.size}"
            )

    @property
    def elapsed(self) -> float:
        """Virtual time at the most advanced rank."""
        return max(c.now for c in self.clocks)
