"""Simulated MPI for the multi-GPU experiments (paper Figure 9).

The paper's multi-GPU runs use MPI root-style aggregation: every rank
owns one GPU, searches independently, and the root statistics are
reduced at the end of the move budget.  We reproduce that with an
in-process cluster: every rank has its own virtual clock, collectives
charge alpha-beta network costs along binomial trees, and a barrier
synchronises rank clocks -- the mpi4py call shapes are mirrored so the
engine code would port to real MPI unchanged.
"""

from repro.mpi.cluster import MpiCluster, RankContext
from repro.mpi.network import NetworkModel, TSUBAME_IB

__all__ = ["MpiCluster", "RankContext", "NetworkModel", "TSUBAME_IB"]
