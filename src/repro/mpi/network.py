"""Alpha-beta network cost model for the simulated cluster."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point message cost ``alpha + nbytes * beta``."""

    name: str
    #: Per-message latency, seconds.
    alpha_s: float
    #: Per-byte cost, seconds (1 / bandwidth).
    beta_s_per_byte: float

    def __post_init__(self) -> None:
        if self.alpha_s < 0 or self.beta_s_per_byte < 0:
            raise ValueError("network costs must be non-negative")

    def message_time(self, nbytes: int) -> float:
        """One point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative: {nbytes}")
        return self.alpha_s + nbytes * self.beta_s_per_byte

    def tree_collective_time(self, nbytes: int, ranks: int) -> float:
        """A binomial-tree broadcast/reduce over ``ranks`` processes:
        ceil(log2(R)) sequential message rounds."""
        if ranks <= 0:
            raise ValueError(f"ranks must be positive: {ranks}")
        if ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(ranks))
        return rounds * self.message_time(nbytes)

    def allreduce_time(self, nbytes: int, ranks: int) -> float:
        """Reduce-then-broadcast along binomial trees."""
        return 2.0 * self.tree_collective_time(nbytes, ranks)


#: TSUBAME 2.0's QDR InfiniBand fabric (~1.5 us latency, ~3 GB/s
#: effective per link at the MPI level).
TSUBAME_IB = NetworkModel(
    name="tsubame_ib",
    alpha_s=1.5e-6,
    beta_s_per_byte=1.0 / 3.0e9,
)

#: A deliberately slow network for scalability ablations.
SLOW_ETHERNET = NetworkModel(
    name="slow_ethernet",
    alpha_s=50e-6,
    beta_s_per_byte=1.0 / 100e6,
)
