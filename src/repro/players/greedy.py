"""One-ply greedy player: maximises immediate score for the mover.

For Reversi this is the classic "flip the most discs" heuristic -- a
baseline clearly stronger than random and clearly weaker than any MCTS
configuration, useful for ordering sanity checks.
"""

from __future__ import annotations

from repro.games.base import Game, GameState
from repro.players.base import MoveInfo, Player
from repro.rng import XorShift64Star


class GreedyPlayer(Player):
    name = "greedy"

    def __init__(self, game: Game, seed: int) -> None:
        super().__init__(game)
        self.rng = XorShift64Star(seed)

    def choose(self, state: GameState) -> MoveInfo:
        moves = self.game.legal_moves(state)
        if not moves:
            raise ValueError("no legal moves: state is terminal")
        mover = self.game.to_move(state)
        best: list[int] = []
        best_score = None
        for move in moves:
            nxt = self.game.apply(state, move)
            score = self.game.score(nxt) * mover
            if best_score is None or score > best_score:
                best_score = score
                best = [move]
            elif score == best_score:
                best.append(move)
        return MoveInfo(move=best[self.rng.randrange(len(best))])
