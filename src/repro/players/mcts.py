"""MCTS player: any engine + a per-move virtual time budget."""

from __future__ import annotations

from repro.core.base import Engine
from repro.games.base import GameState
from repro.players.base import MoveInfo, Player


class MctsPlayer(Player):
    """Runs ``engine.search`` with a fixed virtual budget every move.

    Both sides of the paper's matches get the same *virtual* move time;
    their differing per-iteration costs (CPU iteration vs GPU kernel)
    then determine how much search each can fit -- exactly the trade
    the paper measures.
    """

    def __init__(
        self, game, engine: Engine, move_budget_s: float, name: str | None = None
    ) -> None:
        if move_budget_s <= 0:
            raise ValueError(
                f"move budget must be positive: {move_budget_s}"
            )
        if engine.game.name != game.name:
            raise ValueError("engine was built for a different game")
        super().__init__(game)
        self.engine = engine
        self.move_budget_s = move_budget_s
        self.name = name or engine.name

    def choose(self, state: GameState) -> MoveInfo:
        result = self.engine.search(state, self.move_budget_s)
        return MoveInfo(
            move=result.move,
            simulations=result.simulations,
            iterations=result.iterations,
            max_depth=result.max_depth,
            elapsed_s=result.elapsed_s,
            extras=dict(result.extras),
        )
