"""Player interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.games.base import Game, GameState


@dataclass(frozen=True)
class MoveInfo:
    """Telemetry attached to a chosen move (fed into the arena's
    per-step records; the depth series is the paper's Figure 8)."""

    move: int
    simulations: int = 0
    iterations: int = 0
    max_depth: int = 0
    elapsed_s: float = 0.0
    extras: dict = field(default_factory=dict)


class Player(abc.ABC):
    """An agent that picks a move in any non-terminal position."""

    name: str = "player"

    def __init__(self, game: Game) -> None:
        self.game = game

    @abc.abstractmethod
    def choose(self, state: GameState) -> MoveInfo:
        """Pick a move (must be legal) with telemetry."""

    def notify_move(self, state: GameState, move: int) -> None:
        """Called after *any* move (own or opponent's) is played; lets
        stateful players track the game. Default: stateless no-op."""
