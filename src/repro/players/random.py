"""Uniformly random player (weakest baseline; sanity anchor)."""

from __future__ import annotations

from repro.games.base import Game, GameState
from repro.players.base import MoveInfo, Player
from repro.rng import XorShift64Star


class RandomPlayer(Player):
    name = "random"

    def __init__(self, game: Game, seed: int) -> None:
        super().__init__(game)
        self.rng = XorShift64Star(seed)

    def choose(self, state: GameState) -> MoveInfo:
        moves = self.game.legal_moves(state)
        if not moves:
            raise ValueError("no legal moves: state is terminal")
        return MoveInfo(move=moves[self.rng.randrange(len(moves))])
