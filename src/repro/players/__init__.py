"""Players: thin wrappers that turn engines (or heuristics) into
move-choosing agents the arena can pit against each other."""

from repro.players.base import MoveInfo, Player
from repro.players.greedy import GreedyPlayer
from repro.players.mcts import MctsPlayer
from repro.players.random import RandomPlayer

__all__ = [
    "Player",
    "MoveInfo",
    "MctsPlayer",
    "RandomPlayer",
    "GreedyPlayer",
]
