"""Block scheduling onto SM slots.

Real GPUs retire thread blocks independently: as soon as a block
finishes, the hardware work distributor places the next pending block on
the freed slot.  We model that with greedy list scheduling over
``slots = blocks_per_sm * sm_count`` identical slots, which gives the
makespan of a grid whose blocks run for different durations (blocks
whose playouts end early -- short Reversi endgames -- free their slot
sooner).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np


def greedy_makespan(block_times: Sequence[float], slots: int) -> float:
    """Completion time of ``block_times`` on ``slots`` parallel slots,
    blocks dispatched in index order as slots free up."""
    if slots <= 0:
        raise ValueError(f"need at least one slot, got {slots}")
    times = np.asarray(block_times, dtype=float)
    if times.size == 0:
        return 0.0
    if np.any(times < 0):
        raise ValueError("block times must be non-negative")
    if slots >= times.size:
        return float(times.max())
    # Seed the first `slots` blocks, then pop-min/push for the rest.
    heap = list(times[:slots])
    heapq.heapify(heap)
    for t in times[slots:]:
        free_at = heapq.heappop(heap)
        heapq.heappush(heap, free_at + t)
    return float(max(heap))


def wave_assignment(num_blocks: int, slots: int) -> list[range]:
    """Blocks grouped into strict waves (the coarser model used when all
    blocks run equally long): wave ``w`` holds blocks
    ``[w*slots, min((w+1)*slots, num_blocks))``."""
    if slots <= 0:
        raise ValueError(f"need at least one slot, got {slots}")
    if num_blocks < 0:
        raise ValueError("num_blocks must be non-negative")
    return [
        range(start, min(start + slots, num_blocks))
        for start in range(0, num_blocks, slots)
    ]
