"""Shared-device pool: placement, leases and utilisation accounting.

The serving layer (:mod:`repro.serve`) multiplexes many concurrent
searches over a fixed set of virtual GPUs.  A :class:`DevicePool` owns
one in-order :class:`~repro.gpu.stream.Stream` per device against a
shared clock and hands out work placements:

* :meth:`DevicePool.launch` enqueues one modelled kernel on the least
  loaded device (earliest ``busy_until``) and returns a
  :class:`DeviceLease` -- the accounting record tying the span to the
  request that caused it.
* Every launch is recorded as a span on the pool's
  :class:`~repro.gpu.trace.Tracer` (track ``gpu<i>``), so a service
  run exports directly to the Chrome trace viewer and utilisation is
  just busy-time over elapsed-time per track.

The pool does not execute playouts itself -- callers compute results
and modelled durations (see :mod:`repro.serve.scheduler`) and the pool
decides *where* and *when* the work runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gpu.device import DeviceSpec
from repro.gpu.stream import Event, Stream
from repro.gpu.trace import Tracer
from repro.util.clock import Clock


class PoolError(RuntimeError):
    """Raised on invalid pool use (empty pool, foreign lease, ...)."""


@dataclass(frozen=True)
class DeviceLease:
    """One placed piece of work: who runs what on which device."""

    device_id: int
    spec: DeviceSpec
    holder: str
    start_s: float
    event: Event

    @property
    def end_s(self) -> float:
        return self.event.done_at

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class _DeviceSlot:
    """Mutable per-device bookkeeping."""

    device_id: int
    spec: DeviceSpec
    stream: Stream
    busy_s: float = 0.0
    launches: int = 0

    @property
    def busy_until(self) -> float:
        return self.stream._busy_until


class DevicePool:
    """A fixed set of virtual GPUs shared by many requests."""

    def __init__(
        self,
        specs: Sequence[DeviceSpec],
        clock: Clock,
        tracer: Tracer | None = None,
    ) -> None:
        if not specs:
            raise PoolError("device pool needs at least one device")
        self.clock = clock
        self.tracer = tracer if tracer is not None else Tracer()
        self._slots = [
            _DeviceSlot(i, spec, Stream(clock))
            for i, spec in enumerate(specs)
        ]
        self._leases: list[DeviceLease] = []

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def specs(self) -> tuple[DeviceSpec, ...]:
        return tuple(slot.spec for slot in self._slots)

    @property
    def leases(self) -> tuple[DeviceLease, ...]:
        """Every placement made so far, in launch order."""
        return tuple(self._leases)

    def track(self, device_id: int) -> str:
        """Tracer track name for one device."""
        return f"gpu{device_id}"

    def least_busy(self) -> int:
        """Device id whose stream frees up first (ties: lowest id)."""
        return min(
            self._slots, key=lambda s: (s.busy_until, s.device_id)
        ).device_id

    def spec_of(self, device_id: int) -> DeviceSpec:
        return self._slot(device_id).spec

    def _slot(self, device_id: int) -> _DeviceSlot:
        try:
            return self._slots[device_id]
        except IndexError:
            raise PoolError(
                f"no device {device_id} in a pool of {len(self)}"
            ) from None

    def launch(
        self,
        holder: str,
        duration_s: float,
        device_id: int | None = None,
        label: str = "kernel",
        **trace_args,
    ) -> DeviceLease:
        """Enqueue ``duration_s`` of device work for ``holder``.

        Placed on ``device_id`` if given, otherwise on the least busy
        device.  The kernel starts when that device's stream is free;
        the host is not blocked (synchronise via ``lease.event``).
        """
        if device_id is None:
            device_id = self.least_busy()
        slot = self._slot(device_id)
        start = max(self.clock.now, slot.busy_until)
        event = slot.stream.launch(duration_s)
        slot.busy_s += duration_s
        slot.launches += 1
        lease = DeviceLease(
            device_id=slot.device_id,
            spec=slot.spec,
            holder=holder,
            start_s=start,
            event=event,
        )
        self._leases.append(lease)
        self.tracer.record(
            label,
            self.track(slot.device_id),
            start,
            event.done_at,
            holder=holder,
            **trace_args,
        )
        return lease

    def synchronize(self, lease: DeviceLease) -> None:
        """Block the host (advance the clock) until the lease's work
        completes."""
        self._slot(lease.device_id).stream.synchronize(lease.event)

    def complete(self, lease: DeviceLease) -> bool:
        """Has the lease's work finished at the current time?"""
        return self._slot(lease.device_id).stream.query(lease.event)

    def next_completion(self) -> float | None:
        """Earliest future completion across all devices, or ``None``
        if every stream is idle."""
        pending = [
            slot.busy_until
            for slot in self._slots
            if slot.busy_until > self.clock.now
        ]
        return min(pending) if pending else None

    # -- accounting --------------------------------------------------------

    def busy_seconds(self, device_id: int) -> float:
        return self._slot(device_id).busy_s

    def launches(self, device_id: int) -> int:
        return self._slot(device_id).launches

    def utilization(self, elapsed_s: float | None = None) -> dict[str, float]:
        """Busy fraction per device track over ``elapsed_s`` (defaults
        to the clock's current time)."""
        horizon = self.clock.now if elapsed_s is None else elapsed_s
        out = {}
        for slot in self._slots:
            track = self.track(slot.device_id)
            if horizon <= 0:
                out[track] = 0.0
            else:
                out[track] = min(
                    1.0, self.tracer.track_busy_time(track) / horizon
                )
        return out
