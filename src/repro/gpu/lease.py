"""Shared-device pool: placement, leases, health and utilisation.

The serving layer (:mod:`repro.serve`) multiplexes many concurrent
searches over a fixed set of virtual GPUs.  A :class:`DevicePool` owns
one in-order :class:`~repro.gpu.stream.Stream` per device against a
shared clock and hands out work placements:

* :meth:`DevicePool.launch` enqueues one modelled kernel on the least
  loaded device (earliest ``busy_until``) and returns a
  :class:`DeviceLease` -- the accounting record tying the span to the
  request that caused it.
* Every launch is recorded as a span on the pool's
  :class:`~repro.gpu.trace.Tracer` (track ``gpu<i>``), so a service
  run exports directly to the Chrome trace viewer and utilisation is
  just busy-time over elapsed-time per track.
* Devices carry *health*: callers report launch outcomes via
  :meth:`mark_failure`/:meth:`mark_success`, and a device whose
  consecutive failures reach the quarantine threshold is taken out of
  :meth:`least_busy` placement for a cooldown window -- how the
  resilient scheduler steers retries away from flaky or dead devices.
* Every lease must eventually be *resolved* -- synchronised, observed
  complete, or explicitly abandoned.  :meth:`assert_drained` enforces
  the invariant at service drain; an unresolved lease means a caller
  leaked busy-time accounting.

The pool does not execute playouts itself -- callers compute results
and modelled durations (see :mod:`repro.serve.scheduler`) and the pool
decides *where* and *when* the work runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpu.device import DeviceSpec
from repro.gpu.stream import Event, Stream
from repro.gpu.trace import Tracer
from repro.util.clock import Clock


class PoolError(RuntimeError):
    """Raised on invalid pool use (empty pool, foreign lease, ...)."""


@dataclass(frozen=True)
class DeviceLease:
    """One placed piece of work: who runs what on which device."""

    device_id: int
    spec: DeviceSpec
    holder: str
    start_s: float
    event: Event
    #: Pool-wide launch sequence number; resolution is tracked by id.
    lease_id: int = 0

    @property
    def end_s(self) -> float:
        return self.event.done_at

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class _DeviceSlot:
    """Mutable per-device bookkeeping."""

    device_id: int
    spec: DeviceSpec
    stream: Stream
    busy_s: float = 0.0
    launches: int = 0
    #: Health tracking for quarantine decisions.
    failures: int = 0
    successes: int = 0
    consecutive_failures: int = 0
    quarantined_until: float = 0.0
    quarantines: int = 0
    #: Elastic-fleet state (autoscaling, docs/overload.md): a
    #: provisioned device only accepts placements once its modelled
    #: bring-up lag has elapsed; a retired device accepts no new
    #: placements but drains its in-flight stream.
    available_after_s: float = 0.0
    retired: bool = False

    @property
    def busy_until(self) -> float:
        return self.stream._busy_until


class DevicePool:
    """A fixed set of virtual GPUs shared by many requests.

    ``quarantine_after`` consecutive launch failures on one device put
    it in quarantine for ``quarantine_s`` virtual seconds; quarantined
    devices are skipped by default placement until the window expires
    (or every device is quarantined, in which case placement falls
    back to the full pool rather than deadlocking).
    """

    def __init__(
        self,
        specs: Sequence[DeviceSpec],
        clock: Clock,
        tracer: Tracer | None = None,
        quarantine_after: int = 3,
        quarantine_s: float = 1e-3,
    ) -> None:
        if not specs:
            raise PoolError("device pool needs at least one device")
        if quarantine_after <= 0:
            raise PoolError(
                f"quarantine_after must be positive: {quarantine_after}"
            )
        if quarantine_s < 0:
            raise PoolError(
                f"quarantine_s cannot be negative: {quarantine_s}"
            )
        self.clock = clock
        self.tracer = tracer if tracer is not None else Tracer()
        self.quarantine_after = quarantine_after
        self.quarantine_s = quarantine_s
        self._slots = [
            _DeviceSlot(i, spec, Stream(clock))
            for i, spec in enumerate(specs)
        ]
        self._leases: list[DeviceLease] = []
        self._unresolved: set[int] = set()

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def specs(self) -> tuple[DeviceSpec, ...]:
        return tuple(slot.spec for slot in self._slots)

    @property
    def leases(self) -> tuple[DeviceLease, ...]:
        """Every placement made so far, in launch order."""
        return tuple(self._leases)

    def track(self, device_id: int) -> str:
        """Tracer track name for one device."""
        return f"gpu{device_id}"

    def least_busy(
        self, candidates: Iterable[int] | None = None
    ) -> int:
        """Device id whose stream frees up first (ties: lowest id).

        With no ``candidates``, quarantined devices are skipped unless
        *every* device is quarantined.  An explicit candidate list is
        used verbatim.
        """
        if candidates is None:
            ids = (
                self.healthy_ids()
                or self.placeable_ids()
                or range(len(self._slots))
            )
        else:
            ids = list(candidates)
            if not ids:
                raise PoolError("least_busy over no candidate devices")
        return min(
            (self._slot(i) for i in ids),
            key=lambda s: (s.busy_until, s.device_id),
        ).device_id

    def spec_of(self, device_id: int) -> DeviceSpec:
        return self._slot(device_id).spec

    def _slot(self, device_id: int) -> _DeviceSlot:
        try:
            return self._slots[device_id]
        except IndexError:
            raise PoolError(
                f"no device {device_id} in a pool of {len(self)}"
            ) from None

    def launch(
        self,
        holder: str,
        duration_s: float,
        device_id: int | None = None,
        label: str = "kernel",
        not_before_s: float = 0.0,
        **trace_args,
    ) -> DeviceLease:
        """Enqueue ``duration_s`` of device work for ``holder``.

        Placed on ``device_id`` if given, otherwise on the least busy
        healthy device.  The kernel starts when that device's stream is
        free (and ``not_before_s`` has passed); the host is not blocked
        (synchronise via ``lease.event``).
        """
        if device_id is None:
            device_id = self.least_busy()
        slot = self._slot(device_id)
        start = max(self.clock.now, slot.busy_until, not_before_s)
        event = slot.stream.launch(duration_s, not_before_s=not_before_s)
        slot.busy_s += duration_s
        slot.launches += 1
        lease = DeviceLease(
            device_id=slot.device_id,
            spec=slot.spec,
            holder=holder,
            start_s=start,
            event=event,
            lease_id=len(self._leases),
        )
        self._leases.append(lease)
        self._unresolved.add(lease.lease_id)
        self.tracer.record(
            label,
            self.track(slot.device_id),
            start,
            event.done_at,
            holder=holder,
            **trace_args,
        )
        return lease

    def synchronize(self, lease: DeviceLease) -> None:
        """Block the host (advance the clock) until the lease's work
        completes."""
        self._slot(lease.device_id).stream.synchronize(lease.event)
        self._unresolved.discard(lease.lease_id)

    def complete(self, lease: DeviceLease) -> bool:
        """Has the lease's work finished at the current time?"""
        done = self._slot(lease.device_id).stream.query(lease.event)
        if done:
            self._unresolved.discard(lease.lease_id)
        return done

    def abandon(self, lease: DeviceLease) -> None:
        """Resolve a lease the host will never wait on (timed-out or
        failed attempt).  The device span stays on the books -- the
        kernel still occupied the stream -- but the host stops
        tracking it."""
        self._unresolved.discard(lease.lease_id)

    def next_completion(self) -> float | None:
        """Earliest future completion across all devices, or ``None``
        if every stream is idle."""
        pending = [
            slot.busy_until
            for slot in self._slots
            if slot.busy_until > self.clock.now
        ]
        return min(pending) if pending else None

    # -- health ------------------------------------------------------------

    def mark_failure(self, device_id: int) -> bool:
        """Record a failed launch attempt; returns True if the device
        just entered quarantine."""
        slot = self._slot(device_id)
        slot.failures += 1
        slot.consecutive_failures += 1
        if (
            slot.consecutive_failures >= self.quarantine_after
            and not self.is_quarantined(device_id)
        ):
            slot.quarantined_until = self.clock.now + self.quarantine_s
            slot.quarantines += 1
            slot.consecutive_failures = 0
            return True
        return False

    def mark_success(self, device_id: int) -> None:
        """Record a successful launch; clears the failure streak."""
        slot = self._slot(device_id)
        slot.successes += 1
        slot.consecutive_failures = 0

    def is_quarantined(self, device_id: int) -> bool:
        return self.clock.now < self._slot(device_id).quarantined_until

    def healthy_ids(self) -> list[int]:
        """Devices currently accepting placements."""
        return [
            device_id
            for device_id in self.placeable_ids()
            if not self.is_quarantined(device_id)
        ]

    # -- elastic fleet (autoscaling) ---------------------------------------

    def placeable_ids(self) -> list[int]:
        """Devices in the active fleet: provisioned (bring-up lag has
        elapsed) and not retired.  Quarantine is ignored here -- it is
        a *health* veto layered on top by :meth:`healthy_ids`."""
        now = self.clock.now
        return [
            slot.device_id
            for slot in self._slots
            if not slot.retired and slot.available_after_s <= now
        ]

    def active_size(self) -> int:
        """Fleet size the autoscaler reasons about: placeable devices
        plus ones still inside their bring-up lag (already paid for,
        not yet accepting work) -- everything except retirees."""
        return sum(1 for slot in self._slots if not slot.retired)

    def provision(
        self, spec: DeviceSpec, available_s: float | None = None
    ) -> int:
        """Add one device to the pool; it starts accepting placements
        at ``available_s`` (defaults to *now*).  Scale-up lag is how
        flash crowds hurt: capacity requested at the spike's onset
        only arrives once the modelled bring-up completes.  Returns
        the new device id."""
        available = self.clock.now if available_s is None else available_s
        if available < self.clock.now:
            raise PoolError(
                f"cannot provision into the past: {available} < "
                f"{self.clock.now}"
            )
        slot = _DeviceSlot(
            len(self._slots),
            spec,
            Stream(self.clock),
            available_after_s=available,
        )
        self._slots.append(slot)
        return slot.device_id

    def retire(self, device_id: int) -> None:
        """Remove one device from placement.  In-flight work on its
        stream drains normally (leases stay resolvable) but
        :meth:`least_busy` never picks it again.  Idempotent."""
        self._slot(device_id).retired = True

    def is_retired(self, device_id: int) -> bool:
        return self._slot(device_id).retired

    def available_after(self, device_id: int) -> float:
        return self._slot(device_id).available_after_s

    def health(self, device_id: int) -> dict[str, int]:
        """Observed launch outcomes for one device."""
        slot = self._slot(device_id)
        return {
            "failures": slot.failures,
            "successes": slot.successes,
            "quarantines": slot.quarantines,
        }

    # -- accounting --------------------------------------------------------

    def busy_seconds(self, device_id: int) -> float:
        return self._slot(device_id).busy_s

    def launches(self, device_id: int) -> int:
        return self._slot(device_id).launches

    @property
    def unresolved_leases(self) -> tuple[DeviceLease, ...]:
        """Leases no caller has synchronised, completed or abandoned."""
        return tuple(
            lease
            for lease in self._leases
            if lease.lease_id in self._unresolved
        )

    def assert_drained(self) -> None:
        """Raise if any lease was never resolved -- the caller leaked
        busy-time accounting (launched work it never waited on)."""
        leaked = self.unresolved_leases
        if leaked:
            holders = sorted({lease.holder for lease in leaked})
            raise PoolError(
                f"{len(leaked)} unresolved lease(s) at drain "
                f"(holders: {', '.join(holders)}); every launch must "
                "be synchronized, completed or abandoned"
            )

    def utilization(self, elapsed_s: float | None = None) -> dict[str, float]:
        """Busy fraction per device track over ``elapsed_s`` (defaults
        to the clock's current time)."""
        horizon = self.clock.now if elapsed_s is None else elapsed_s
        out = {}
        for slot in self._slots:
            track = self.track(slot.device_id)
            if horizon <= 0:
                out[track] = 0.0
            else:
                out[track] = min(
                    1.0, self.tracer.track_busy_time(track) / horizon
                )
        return out
