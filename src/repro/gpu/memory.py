"""Device memory accounting and host<->device transfer model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec


class DeviceMemoryError(RuntimeError):
    """Raised on over-allocation or invalid frees."""


@dataclass
class Allocation:
    """A live device allocation."""

    handle: int
    nbytes: int
    label: str


@dataclass
class DeviceMemory:
    """Tracks allocations against the device's global memory capacity.

    The MCTS engines allocate result buffers and root-state buffers; the
    accounting exists so configuration mistakes (absurd batch sizes)
    fail the same way they would on hardware, instead of silently
    "working" in the simulator.
    """

    spec: DeviceSpec
    _live: dict = field(default_factory=dict)
    _next_handle: int = 1
    _bytes_in_use: int = 0

    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    @property
    def bytes_free(self) -> int:
        return self.spec.global_mem_bytes - self._bytes_in_use

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        if nbytes <= 0:
            raise DeviceMemoryError(
                f"allocation must be positive, got {nbytes}"
            )
        if nbytes > self.bytes_free:
            raise DeviceMemoryError(
                f"out of device memory: requested {nbytes} bytes "
                f"({label or 'unlabelled'}), free {self.bytes_free}"
            )
        allocation = Allocation(self._next_handle, nbytes, label)
        self._live[allocation.handle] = allocation
        self._next_handle += 1
        self._bytes_in_use += nbytes
        return allocation

    def free(self, allocation: Allocation) -> None:
        if allocation.handle not in self._live:
            raise DeviceMemoryError(
                f"double free or foreign allocation: handle "
                f"{allocation.handle}"
            )
        del self._live[allocation.handle]
        self._bytes_in_use -= allocation.nbytes

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())


def transfer_time(spec: DeviceSpec, nbytes: int) -> float:
    """Seconds to move ``nbytes`` across PCIe (either direction)."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative: {nbytes}")
    if nbytes == 0:
        return 0.0
    return spec.transfer_latency_s + nbytes / spec.transfer_bandwidth_Bps
