"""Calibration fitting for the virtual device.

The default kernel constants in :mod:`repro.gpu.kernel` were produced
by this module: given a target sustained playout rate for a reference
launch (e.g. the paper's ~8.5e5 playouts/s at 224 blocks x 64 threads
on a C2050), solve for the ``cycles_per_step`` that reproduces it.
Keeping the fit in the repository makes the calibration auditable and
lets users re-calibrate for other devices or games.
"""

from __future__ import annotations

from dataclasses import replace

from scipy.optimize import brentq

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelSpec, LaunchConfig
from repro.gpu.timing import peak_playout_rate


class CalibrationError(RuntimeError):
    """Raised when no kernel constant can reach the target rate."""


def fit_cycles_per_step(
    spec: DeviceSpec,
    kernel: KernelSpec,
    config: LaunchConfig,
    target_rate: float,
    mean_steps: float = 65.0,
    latency_ratio: float | None = None,
    bounds: tuple[float, float] = (10.0, 1e7),
) -> float:
    """The ``cycles_per_step`` at which ``config`` sustains
    ``target_rate`` playouts/second.

    ``latency_ratio`` fixes ``latency_cycles_per_step`` as a multiple
    of the fitted value (default: keep the kernel's current ratio).
    Monotonicity (more cycles -> slower) makes this a bracketed
    root-find.
    """
    if target_rate <= 0:
        raise CalibrationError(
            f"target rate must be positive: {target_rate}"
        )
    ratio = (
        latency_ratio
        if latency_ratio is not None
        else kernel.latency_cycles_per_step / kernel.cycles_per_step
    )
    if ratio < 1.0:
        raise CalibrationError(
            f"latency ratio must be >= 1, got {ratio}"
        )

    def rate_at(cycles: float) -> float:
        trial = replace(
            kernel,
            cycles_per_step=cycles,
            latency_cycles_per_step=cycles * ratio,
        )
        return peak_playout_rate(spec, trial, config, mean_steps)

    lo, hi = bounds
    f_lo = rate_at(lo) - target_rate
    f_hi = rate_at(hi) - target_rate
    if f_lo < 0:
        raise CalibrationError(
            f"target {target_rate:.3g} playouts/s is unreachable even "
            f"at {lo} cycles/step (max {rate_at(lo):.3g})"
        )
    if f_hi > 0:
        raise CalibrationError(
            f"target {target_rate:.3g} playouts/s is exceeded even at "
            f"{hi} cycles/step; widen bounds"
        )
    return float(brentq(lambda c: rate_at(c) - target_rate, lo, hi))


def calibrated_kernel(
    spec: DeviceSpec,
    kernel: KernelSpec,
    config: LaunchConfig,
    target_rate: float,
    mean_steps: float = 65.0,
) -> KernelSpec:
    """A copy of ``kernel`` re-fitted so ``config`` hits
    ``target_rate`` on ``spec``."""
    cycles = fit_cycles_per_step(
        spec, kernel, config, target_rate, mean_steps
    )
    ratio = kernel.latency_cycles_per_step / kernel.cycles_per_step
    return replace(
        kernel,
        cycles_per_step=cycles,
        latency_cycles_per_step=cycles * ratio,
    )
