"""Virtual GPU device specifications.

The reproduction cannot run CUDA, so the GPU is modelled: a device is a
set of streaming multiprocessors (SMs) executing 32-lane SIMT warps,
with Fermi-era residency limits and an analytic timing model
(:mod:`repro.gpu.timing`).  The default spec mirrors the NVIDIA Tesla
C2050 boards of TSUBAME 2.0 used in the paper; the calibration constants
(cycles per playout step, launch latency) were chosen so the simulated
device's playout throughput envelope matches the paper's Figure 5
(~9e5 playouts/s peak for leaf parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of a virtual GPU."""

    name: str
    #: Number of streaming multiprocessors.
    sm_count: int
    #: SIMT width; warps always execute 32 lanes in lockstep.
    warp_size: int = 32
    #: Residency limits per SM (Fermi defaults).
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 8
    max_threads_per_sm: int = 1536
    max_warps_per_sm: int = 48
    #: Register file and shared memory per SM.
    registers_per_sm: int = 32768
    shared_mem_per_sm: int = 49152
    #: Shader clock in Hz.
    clock_hz: float = 1.15e9
    #: Warp instruction issue throughput per SM per cycle.
    issue_per_cycle: float = 1.0
    #: Fixed cost of a kernel launch observed by the host, seconds.
    kernel_launch_latency_s: float = 10e-6
    #: Host<->device transfer: fixed latency + inverse bandwidth.
    transfer_latency_s: float = 8e-6
    transfer_bandwidth_Bps: float = 5.0e9
    #: Global memory capacity in bytes (allocation accounting only).
    global_mem_bytes: int = 3 * 1024**3

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError(f"sm_count must be positive: {self.sm_count}")
        if self.warp_size <= 0:
            raise ValueError(f"warp_size must be positive: {self.warp_size}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive: {self.clock_hz}")
        if self.max_threads_per_sm < self.max_threads_per_block:
            raise ValueError(
                "max_threads_per_sm must be >= max_threads_per_block"
            )

    @property
    def max_resident_threads(self) -> int:
        """Threads the whole device can keep resident at once."""
        return self.sm_count * self.max_threads_per_sm

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **kwargs)


#: The paper's GPU: Tesla C2050 (Fermi GF100), 14 SMs at 1.15 GHz.
TESLA_C2050 = DeviceSpec(name="tesla_c2050", sm_count=14)

#: A contemporary consumer Fermi part, for cross-device ablations.
GTX_580 = DeviceSpec(
    name="gtx_580",
    sm_count=16,
    clock_hz=1.544e9,
)

#: A deliberately tiny device so unit tests exercise multi-wave
#: scheduling with small grids.
TOY_DEVICE = DeviceSpec(
    name="toy",
    sm_count=2,
    max_blocks_per_sm=2,
    max_threads_per_sm=256,
    max_threads_per_block=256,
    max_warps_per_sm=8,
    clock_hz=1.0e9,
)

_REGISTRY = {
    spec.name: spec for spec in (TESLA_C2050, GTX_580, TOY_DEVICE)
}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a device spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_devices() -> tuple[DeviceSpec, ...]:
    """All registered device specs, sorted by name.

    The public accessor for device enumeration -- callers must not
    reach into the private registry.
    """
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def register_device(spec: DeviceSpec) -> DeviceSpec:
    """Add (or replace) a device spec in the registry."""
    _REGISTRY[spec.name] = spec
    return spec
