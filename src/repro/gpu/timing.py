"""Analytic kernel timing model.

The model has three regimes, matching how SIMT hardware behaves:

* **Latency-bound** -- too few resident warps to hide dependent
  latency: one lockstep step costs ``latency_cycles_per_step`` no
  matter how few lanes are active.  This is why launching 1..32 threads
  is absurdly inefficient (left edge of the paper's Figure 5).
* **Issue-bound** -- enough warps resident that the SM is limited by
  instruction issue: a step costs ``warps * cycles_per_step`` cycles,
  so throughput grows ~linearly with threads until residency caps out.
* **Wave-serialised** -- grids larger than the device's concurrent
  block capacity run in waves (greedy slot reuse), so time grows
  ~linearly with blocks past saturation (right edge of Figure 5).

All playouts in a block run in lockstep until the block's slowest lane
finishes, so the per-block cost is ``max steps over the block's lanes``
-- the quantity the playout kernel reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelSpec, LaunchConfig
from repro.gpu.occupancy import occupancy
from repro.gpu.scheduler import greedy_makespan


def sm_step_time(
    spec: DeviceSpec, kernel: KernelSpec, resident_warps: int
) -> float:
    """Seconds for one SM holding ``resident_warps`` warps to advance
    every resident lane by one game ply."""
    if resident_warps <= 0:
        raise ValueError(
            f"resident_warps must be positive: {resident_warps}"
        )
    issue_cycles = resident_warps * kernel.cycles_per_step / spec.issue_per_cycle
    cycles = max(issue_cycles, kernel.latency_cycles_per_step)
    return cycles * kernel.divergence_overhead / spec.clock_hz


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel execution's modelled cost."""

    launch_s: float
    compute_s: float
    transfer_s: float

    @property
    def total_s(self) -> float:
        return self.launch_s + self.compute_s + self.transfer_s


def kernel_time(
    spec: DeviceSpec,
    kernel: KernelSpec,
    config: LaunchConfig,
    block_steps,
    transfer_bytes: int = 0,
) -> KernelTiming:
    """Modelled execution time of one playout kernel.

    Parameters
    ----------
    block_steps:
        Per-block lockstep step counts (length ``config.blocks``): the
        number of plies until the block's slowest lane finished.
    transfer_bytes:
        Result bytes copied back to the host after the kernel.
    """
    steps = np.asarray(block_steps, dtype=float)
    if steps.shape != (config.blocks,):
        raise ValueError(
            f"block_steps has shape {steps.shape}, expected "
            f"({config.blocks},)"
        )
    occ = occupancy(spec, kernel, config)
    slots = occ.blocks_per_sm * spec.sm_count
    # With fewer blocks than slots, residency per SM is lower and each
    # step is cheaper (fewer warps competing for issue).
    blocks_per_sm_actual = min(
        occ.blocks_per_sm, -(-config.blocks // spec.sm_count)
    )
    resident_warps = max(
        1, blocks_per_sm_actual * config.warps_per_block(spec)
    )
    t_step = sm_step_time(spec, kernel, resident_warps)
    # A block's slot is busy for (its steps) x (the SM step time);
    # greedy reuse of freed slots gives the grid makespan.
    compute = greedy_makespan(steps * t_step, slots)
    transfer = 0.0
    if transfer_bytes > 0:
        transfer = (
            spec.transfer_latency_s
            + transfer_bytes / spec.transfer_bandwidth_Bps
        )
    return KernelTiming(
        launch_s=spec.kernel_launch_latency_s,
        compute_s=compute,
        transfer_s=transfer,
    )


def peak_playout_rate(
    spec: DeviceSpec,
    kernel: KernelSpec,
    config: LaunchConfig,
    mean_steps: float,
) -> float:
    """Sustained playouts/second for a saturating stream of identical
    kernels (used for quick model sanity checks and calibration)."""
    steps = np.full(config.blocks, mean_steps)
    timing = kernel_time(spec, kernel, config, steps)
    return config.total_threads / timing.total_s
