"""Execution tracing for the virtual device.

Records kernel launches, completions and host waits against the virtual
clock and exports them in the Chrome ``chrome://tracing`` / Perfetto
JSON format, so a hybrid search's CPU/GPU overlap (paper Figure 4) can
be inspected visually -- the simulated analogue of an nvprof timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO


@dataclass(frozen=True)
class TraceEvent:
    """One completed span on a named track."""

    name: str
    track: str
    start_s: float
    end_s: float
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Tracer:
    """Collects spans; attach one to engines/devices that support it."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(
        self,
        name: str,
        track: str,
        start_s: float,
        end_s: float,
        **args,
    ) -> TraceEvent:
        if end_s < start_s:
            raise ValueError(
                f"span ends before it starts: {name} "
                f"[{start_s}, {end_s}]"
            )
        event = TraceEvent(name, track, start_s, end_s, dict(args))
        self._events.append(event)
        return event

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def track_busy_time(self, track: str) -> float:
        """Total span time on a track (overlaps counted once)."""
        spans = sorted(
            (e.start_s, e.end_s)
            for e in self._events
            if e.track == track
        )
        busy = 0.0
        current_start = None
        current_end = None
        for start, end in spans:
            if current_start is None or start > current_end:
                if current_start is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_start is not None:
            busy += current_end - current_start
        return busy

    def overlap_time(self, track_a: str, track_b: str) -> float:
        """Virtual time during which both tracks were busy -- the
        quantity the hybrid scheme exists to maximise."""
        def merged(track):
            spans = sorted(
                (e.start_s, e.end_s)
                for e in self._events
                if e.track == track
            )
            out = []
            for start, end in spans:
                if out and start <= out[-1][1]:
                    out[-1][1] = max(out[-1][1], end)
                else:
                    out.append([start, end])
            return out

        overlap = 0.0
        spans_b = merged(track_b)
        for a0, a1 in merged(track_a):
            for b0, b1 in spans_b:
                lo, hi = max(a0, b0), min(a1, b1)
                if hi > lo:
                    overlap += hi - lo
        return overlap

    # -- export ---------------------------------------------------------------

    def to_chrome_trace(self) -> list[dict]:
        """Events in the Chrome trace-event format (microseconds)."""
        tracks = sorted({e.track for e in self._events})
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        out = [
            {
                "name": track,
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "cat": "__metadata",
                "args": {"name": track},
            }
            for track, tid in tids.items()
        ]
        for e in self._events:
            out.append(
                {
                    "name": e.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tids[e.track],
                    "ts": e.start_s * 1e6,
                    "dur": e.duration_s * 1e6,
                    "args": e.args,
                }
            )
        return out

    def dump(self, fp: IO[str]) -> None:
        json.dump({"traceEvents": self.to_chrome_trace()}, fp)


def trace_hybrid_search(engine, state, budget_s: float) -> Tracer:
    """Run a :class:`~repro.core.hybrid.HybridMcts`-style search while
    recording GPU-stream spans and CPU iteration spans.

    Works with any engine exposing ``gpu.stream`` by wrapping the
    stream's launch; the CPU track is inferred from clock advances
    between stream events.
    """
    tracer = Tracer()
    stream = engine.gpu.stream
    clock = engine.clock
    original_launch = stream.launch

    def traced_launch(duration_s, payload=None):
        start = max(clock.now, stream._busy_until)
        event = original_launch(duration_s, payload)
        tracer.record(
            "kernel",
            "gpu",
            start,
            event.done_at,
            lanes=getattr(
                getattr(payload, "config", None), "total_threads", 0
            ),
        )
        return event

    stream.launch = traced_launch
    try:
        start = clock.now
        result = engine.search(state, budget_s)
        tracer.record(
            "search",
            "cpu",
            start,
            clock.now,
            simulations=result.simulations,
        )
    finally:
        del stream.launch  # drop the shadowing instance attribute
    return tracer
