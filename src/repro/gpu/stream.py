"""Asynchronous streams and events against the virtual clock.

The hybrid CPU/GPU engine of the paper (Figure 4) launches the playout
kernel asynchronously, keeps iterating on the CPU, and polls for kernel
completion.  A :class:`Stream` reproduces that control flow: ``launch``
records a completion time on the virtual clock, the host keeps charging
its own work to the same clock, and ``query``/``synchronize`` behave
like ``cudaEventQuery``/``cudaEventSynchronize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.clock import Clock


@dataclass(frozen=True)
class Event:
    """Completion marker for asynchronously launched work."""

    done_at: float
    payload: Any = None


class StreamError(RuntimeError):
    """Raised on invalid stream use (overlapping launches, etc.)."""


@dataclass
class Stream:
    """An in-order work queue on a virtual device.

    One stream runs one kernel at a time (launching while the previous
    kernel is still in flight enqueues after it, like CUDA streams).
    """

    clock: Clock
    _busy_until: float = 0.0
    _events: list = field(default_factory=list)

    def launch(
        self,
        duration_s: float,
        payload: Any = None,
        not_before_s: float = 0.0,
    ) -> Event:
        """Enqueue ``duration_s`` of device work; returns its event.

        The host is *not* blocked: only the stream's internal timeline
        advances.  The kernel starts when the stream is free and the
        host has issued it (now, or at ``not_before_s`` if later --
        how a backed-off retry is scheduled onto a future instant).
        """
        if duration_s < 0:
            raise StreamError(
                f"kernel duration must be non-negative: {duration_s}"
            )
        start = max(self.clock.now, self._busy_until, not_before_s)
        event = Event(done_at=start + duration_s, payload=payload)
        self._busy_until = event.done_at
        self._events.append(event)
        return event

    def query(self, event: Event) -> bool:
        """Has the event completed at the current virtual time?
        (``cudaEventQuery`` -- non-blocking)."""
        return self.clock.now >= event.done_at

    def synchronize(self, event: Event) -> Any:
        """Block the host until the event completes: advances the
        virtual clock to the completion time if needed, then returns
        the payload."""
        self.clock.advance_to(event.done_at)
        return event.payload

    def synchronize_all(self) -> None:
        """Wait for everything in the stream."""
        self.clock.advance_to(self._busy_until)

    @property
    def busy(self) -> bool:
        return self.clock.now < self._busy_until

    @property
    def pending(self) -> int:
        """Number of launched events not yet complete."""
        return sum(1 for e in self._events if not self.query(e))
