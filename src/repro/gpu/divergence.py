"""Warp-divergence telemetry.

In the lockstep playout kernel every lane of a warp executes until the
warp's slowest lane finishes its game; lanes whose games end early idle
(masked) for the remaining steps.  This module quantifies that waste
from the per-lane finish steps the kernel records -- the simulated
counterpart of profiling achieved SIMT efficiency with ``nvprof``.
The numbers feed the divergence ablation and justify the kernel spec's
``divergence_overhead`` constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import LaunchConfig


@dataclass(frozen=True)
class DivergenceReport:
    """SIMT efficiency of one kernel execution."""

    #: Per-warp efficiency: mean(lane steps) / max(lane steps).
    warp_efficiency: np.ndarray
    #: Total lane-steps actually needed by the games.
    useful_lane_steps: int
    #: Lane-steps spent masked (lane finished, warp still running).
    wasted_lane_steps: int

    @property
    def mean_efficiency(self) -> float:
        return float(self.warp_efficiency.mean())

    @property
    def worst_warp(self) -> float:
        return float(self.warp_efficiency.min())

    @property
    def utilisation(self) -> float:
        """Useful / (useful + wasted) over the whole grid."""
        total = self.useful_lane_steps + self.wasted_lane_steps
        if total == 0:
            return 1.0
        return self.useful_lane_steps / total


def analyze_divergence(
    finish_steps: np.ndarray,
    config: LaunchConfig,
    warp_size: int = 32,
) -> DivergenceReport:
    """Divergence statistics from per-lane finish steps.

    Lanes are grouped into warps within their block (a partial block
    still occupies whole warps; the padding lanes are excluded from the
    efficiency statistics because the hardware masks them from launch).
    """
    steps = np.asarray(finish_steps, dtype=np.int64)
    if steps.shape != (config.total_threads,):
        raise ValueError(
            f"finish_steps has shape {steps.shape}, expected "
            f"({config.total_threads},)"
        )
    if np.any(steps < 0):
        raise ValueError("finish steps must be non-negative")

    efficiencies = []
    useful = 0
    wasted = 0
    tpb = config.threads_per_block
    for b in range(config.blocks):
        lanes = steps[b * tpb : (b + 1) * tpb]
        for w in range(0, tpb, warp_size):
            warp = lanes[w : w + warp_size]
            longest = int(warp.max())
            if longest == 0:
                efficiencies.append(1.0)
                continue
            useful += int(warp.sum())
            wasted += longest * warp.shape[0] - int(warp.sum())
            efficiencies.append(float(warp.mean() / longest))
    return DivergenceReport(
        warp_efficiency=np.array(efficiencies),
        useful_lane_steps=useful,
        wasted_lane_steps=wasted,
    )
