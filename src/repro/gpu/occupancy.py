"""CUDA-style occupancy calculation.

How many blocks of a given kernel fit on one SM at once, limited by the
block-slot count, thread count, warp count, register file and shared
memory -- the same arithmetic as NVIDIA's occupancy calculator, which
determines how many *waves* a large grid needs and therefore how kernel
time scales with block count in :mod:`repro.gpu.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelSpec, LaunchConfig


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel configuration on one device."""

    blocks_per_sm: int
    warps_per_sm: int
    #: Fraction of the SM's warp slots used (0..1].
    warp_occupancy: float
    #: Which resource capped residency ("blocks", "threads", "warps",
    #: "registers", "shared_mem").
    limiter: str


def occupancy(
    spec: DeviceSpec, kernel: KernelSpec, config: LaunchConfig
) -> Occupancy:
    """Resident blocks/warps per SM for ``kernel`` at ``config``."""
    config.validate(spec)
    tpb = config.threads_per_block
    wpb = config.warps_per_block(spec)

    limits = {
        "blocks": spec.max_blocks_per_sm,
        "threads": spec.max_threads_per_sm // tpb,
        "warps": spec.max_warps_per_sm // wpb,
    }
    regs_per_block = kernel.registers_per_thread * tpb
    if regs_per_block > 0:
        limits["registers"] = spec.registers_per_sm // regs_per_block
    if kernel.shared_mem_per_block > 0:
        limits["shared_mem"] = (
            spec.shared_mem_per_sm // kernel.shared_mem_per_block
        )

    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = limits[limiter]
    if blocks_per_sm < 1:
        raise ValueError(
            f"kernel {kernel.name!r} cannot fit a single "
            f"{tpb}-thread block on {spec.name} (limited by {limiter})"
        )
    warps_per_sm = blocks_per_sm * wpb
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        warps_per_sm=warps_per_sm,
        warp_occupancy=warps_per_sm / spec.max_warps_per_sm,
        limiter=limiter,
    )


def concurrent_blocks(
    spec: DeviceSpec, kernel: KernelSpec, config: LaunchConfig
) -> int:
    """Blocks the whole device can run simultaneously."""
    return occupancy(spec, kernel, config).blocks_per_sm * spec.sm_count


def num_waves(
    spec: DeviceSpec, kernel: KernelSpec, config: LaunchConfig
) -> int:
    """Sequential waves needed to run the full grid."""
    cap = concurrent_blocks(spec, kernel, config)
    return -(-config.blocks // cap)
