"""The virtual GPU runtime: launches batched playout kernels.

This is where the substitution happens: the *results* of a kernel come
from really playing the games (vectorised, one NumPy row per SIMT
lane), while the *cost* comes from the analytic timing model.  Both the
leaf-parallel and block-parallel engines, and the hybrid engine, go
through :class:`VirtualGpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.executors import tracked_runner
from repro.games import make_batch_game
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelSpec, LaunchConfig, playout_kernel_spec
from repro.gpu.memory import DeviceMemory
from repro.gpu.stream import Event, Stream
from repro.gpu.timing import KernelTiming, kernel_time
from repro.rng import BatchXorShift128Plus
from repro.util.clock import Clock
from repro.util.seeding import derive_seed


@dataclass(frozen=True)
class PlayoutResult:
    """Outcome of one playout kernel execution.

    ``winners``/``scores`` are absolute (player +1's perspective), one
    entry per lane; lanes are grouped by block:
    ``winners.reshape(config.blocks, config.threads_per_block)`` puts
    block ``b``'s lanes in row ``b``.
    """

    config: LaunchConfig
    winners: np.ndarray  # int8 (total_threads,)
    scores: np.ndarray  # int16 (total_threads,)
    block_steps: np.ndarray  # int64 (blocks,)
    timing: KernelTiming

    @property
    def playouts(self) -> int:
        return int(self.winners.shape[0])

    def block_wins(self, for_player: int) -> np.ndarray:
        """Per-block count of playouts won by ``for_player`` (+1/-1)."""
        per_block = self.winners.reshape(
            self.config.blocks, self.config.threads_per_block
        )
        return (per_block == for_player).sum(axis=1)

    def block_draws(self) -> np.ndarray:
        per_block = self.winners.reshape(
            self.config.blocks, self.config.threads_per_block
        )
        return (per_block == 0).sum(axis=1)

    def invalid_reason(self) -> str | None:
        """Host-boundary readback check: why this result violates the
        kernel contract (non-finite or out-of-domain winners), or None
        for a clean result.  The integrity layer screens every readback
        with exactly this predicate before it can touch a tree."""
        from repro.integrity.corruption import validate_winners

        return validate_winners(self.winners)


@dataclass
class GpuStats:
    """Cumulative activity counters for one virtual GPU."""

    kernels_launched: int = 0
    playouts_completed: int = 0
    busy_seconds: float = 0.0


class VirtualGpu:
    """One simulated GPU: device spec + stream + memory + RNG lanes."""

    #: Bytes per lane copied back after a kernel (win flag + score).
    RESULT_BYTES_PER_LANE = 4

    def __init__(
        self,
        spec: DeviceSpec,
        clock: Clock,
        game_name: str,
        seed: int,
        kernel: KernelSpec | None = None,
        playout: str = "numpy",
    ) -> None:
        self.spec = spec
        self.clock = clock
        self.game_name = game_name
        self.playout = playout
        self._run_tracked = tracked_runner(playout)
        self.kernel = kernel or playout_kernel_spec(game_name)
        self.batch_game = make_batch_game(game_name)
        self.memory = DeviceMemory(spec)
        self.stream = Stream(clock)
        self.stats = GpuStats()
        self._seed = derive_seed(seed, "gpu", spec.name)
        self._rng_cache: dict[int, BatchXorShift128Plus] = {}

    def _rng(self, lanes: int) -> BatchXorShift128Plus:
        """Per-width generator, persistent across launches (each CUDA
        thread keeps its RNG state in global memory between kernels)."""
        rng = self._rng_cache.get(lanes)
        if rng is None:
            rng = BatchXorShift128Plus(lanes, self._seed)
            self._rng_cache[lanes] = rng
        return rng

    # -- checkpointing -----------------------------------------------------

    def getstate(self) -> dict:
        """Everything a resumed search needs to replay this device's
        randomness and accounting exactly: the persistent per-width
        lane RNG states (each CUDA thread's global-memory generator),
        the cumulative stats, and the stream timeline."""
        return {
            "rngs": {
                lanes: rng.getstate()
                for lanes, rng in self._rng_cache.items()
            },
            "stats": (
                self.stats.kernels_launched,
                self.stats.playouts_completed,
                self.stats.busy_seconds,
            ),
            "busy_until": self.stream._busy_until,
        }

    def setstate(self, state: dict) -> None:
        from repro.rng import BatchXorShift128Plus as _Batch

        self._rng_cache = {
            int(lanes): _Batch.from_state(s)
            for lanes, s in state["rngs"].items()
        }
        kernels, playouts, busy = state["stats"]
        self.stats = GpuStats(
            kernels_launched=int(kernels),
            playouts_completed=int(playouts),
            busy_seconds=float(busy),
        )
        self.stream = Stream(self.clock)
        self.stream._busy_until = float(state["busy_until"])

    # -- kernel execution --------------------------------------------------

    def _execute(
        self, states, config: LaunchConfig
    ) -> PlayoutResult:
        """Actually play the batched games and model their cost."""
        config.validate(self.spec)
        if len(states) not in (1, config.blocks):
            raise ValueError(
                f"got {len(states)} root states for {config.blocks} "
                "blocks; pass 1 (leaf parallel) or one per block "
                "(block parallel)"
            )
        lanes_per_state = config.total_threads // len(states)
        bg = self.batch_game
        n = config.total_threads
        # Device-side buffers live for the kernel's duration: per-lane
        # game state (own/opp boards + flags), RNG state, results.
        # Fails like real hardware would on absurd grids.
        buffers = []
        try:
            for nbytes, label in (
                (n * 24, "lane states"),
                (n * 16, "rng states"),
                (n * self.RESULT_BYTES_PER_LANE, "results"),
            ):
                buffers.append(self.memory.alloc(nbytes, label))
            batch = bg.make_batch(states, lanes_per_state)
            tracked = self._run_tracked(bg, batch, self._rng(n))
        finally:
            for buf in buffers:
                self.memory.free(buf)

        block_steps = tracked.finish_steps.reshape(
            config.blocks, config.threads_per_block
        ).max(axis=1)
        result_bytes = n * self.RESULT_BYTES_PER_LANE
        timing = kernel_time(
            self.spec,
            self.kernel,
            config,
            block_steps,
            transfer_bytes=result_bytes,
        )
        self.stats.kernels_launched += 1
        self.stats.playouts_completed += n
        self.stats.busy_seconds += timing.total_s
        return PlayoutResult(
            config=config,
            winners=tracked.winners,
            scores=tracked.scores,
            block_steps=block_steps,
            timing=timing,
        )

    def run_playouts(self, states, config: LaunchConfig) -> PlayoutResult:
        """Synchronous launch: the host blocks, the clock advances by
        the kernel's full modelled duration."""
        result = self._execute(states, config)
        self.stream.launch(result.timing.total_s, payload=result)
        self.stream.synchronize_all()
        return result

    def launch_async(self, states, config: LaunchConfig) -> Event:
        """Asynchronous launch (the hybrid scheme): returns immediately
        with an event; the host must ``stream.synchronize(event)`` (or
        poll ``stream.query``) before using the payload."""
        result = self._execute(states, config)
        return self.stream.launch(result.timing.total_s, payload=result)
