"""The virtual SIMT device (substitute for the paper's Tesla C2050).

See DESIGN.md section 2 for why this substitution preserves the paper's
behaviour: block-parallel MCTS never communicates between blocks, so
algorithmic results depend only on how many playouts run per iteration
(reproduced exactly, vectorised) and on the relative cost of kernels vs
CPU iterations (reproduced by the analytic timing model calibrated to
the paper's throughput envelope).
"""

from repro.gpu.calibration import (
    CalibrationError,
    calibrated_kernel,
    fit_cycles_per_step,
)
from repro.gpu.device import (
    GTX_580,
    TESLA_C2050,
    TOY_DEVICE,
    DeviceSpec,
    get_device_spec,
    list_devices,
    register_device,
)
from repro.gpu.divergence import DivergenceReport, analyze_divergence
from repro.gpu.lease import DeviceLease, DevicePool, PoolError
from repro.gpu.kernel import (
    KernelSpec,
    LaunchConfig,
    playout_kernel_spec,
)
from repro.gpu.memory import DeviceMemory, DeviceMemoryError, transfer_time
from repro.gpu.occupancy import Occupancy, concurrent_blocks, num_waves, occupancy
from repro.gpu.playout import GpuStats, PlayoutResult, VirtualGpu
from repro.gpu.scheduler import greedy_makespan, wave_assignment
from repro.gpu.stream import Event, Stream, StreamError
from repro.gpu.timing import KernelTiming, kernel_time, peak_playout_rate, sm_step_time

__all__ = [
    "DeviceSpec",
    "TESLA_C2050",
    "GTX_580",
    "TOY_DEVICE",
    "get_device_spec",
    "list_devices",
    "register_device",
    "DevicePool",
    "DeviceLease",
    "PoolError",
    "KernelSpec",
    "LaunchConfig",
    "playout_kernel_spec",
    "Occupancy",
    "occupancy",
    "concurrent_blocks",
    "num_waves",
    "greedy_makespan",
    "wave_assignment",
    "KernelTiming",
    "kernel_time",
    "peak_playout_rate",
    "sm_step_time",
    "DeviceMemory",
    "DeviceMemoryError",
    "transfer_time",
    "Stream",
    "Event",
    "StreamError",
    "VirtualGpu",
    "PlayoutResult",
    "GpuStats",
    "CalibrationError",
    "calibrated_kernel",
    "fit_cycles_per_step",
    "DivergenceReport",
    "analyze_divergence",
]
