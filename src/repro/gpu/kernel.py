"""Kernel descriptions and launch configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class LaunchConfig:
    """A CUDA-style grid: ``blocks`` x ``threads_per_block``."""

    blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ValueError(f"blocks must be positive: {self.blocks}")
        if self.threads_per_block <= 0:
            raise ValueError(
                f"threads_per_block must be positive: "
                f"{self.threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads_per_block

    def warps_per_block(self, spec: DeviceSpec) -> int:
        """Warps per block, rounding partial warps up (SIMT: a 40-thread
        block occupies two full warps, 24 lanes idle)."""
        ws = spec.warp_size
        return -(-self.threads_per_block // ws)

    def total_warps(self, spec: DeviceSpec) -> int:
        return self.blocks * self.warps_per_block(spec)

    def validate(self, spec: DeviceSpec) -> None:
        """Raise if this grid cannot launch on ``spec`` at all."""
        if self.threads_per_block > spec.max_threads_per_block:
            raise ValueError(
                f"block of {self.threads_per_block} threads exceeds "
                f"{spec.name}'s limit of {spec.max_threads_per_block}"
            )


@dataclass(frozen=True)
class KernelSpec:
    """Performance-relevant characteristics of a kernel.

    ``cycles_per_step`` is the calibrated warp-issue cost of one
    lockstep game ply (move generation + flip + RNG for all 32 lanes);
    ``latency_cycles_per_step`` is the dependent-latency floor a single
    warp experiences per ply, which dominates when occupancy is too low
    to hide it -- this is what makes 1-thread launches absurdly
    inefficient on the simulated device, as on the real one.
    """

    name: str
    cycles_per_step: float = 7500.0
    latency_cycles_per_step: float = 30000.0
    registers_per_thread: int = 40
    shared_mem_per_block: int = 0
    #: Multiplier >= 1 modelling intra-warp branch divergence (random
    #: playouts take different branches per lane).
    divergence_overhead: float = 1.15

    def __post_init__(self) -> None:
        if self.cycles_per_step <= 0:
            raise ValueError("cycles_per_step must be positive")
        if self.latency_cycles_per_step < self.cycles_per_step:
            raise ValueError(
                "latency_cycles_per_step cannot be below cycles_per_step"
            )
        if self.divergence_overhead < 1.0:
            raise ValueError("divergence_overhead must be >= 1.0")


#: Calibrated playout kernel for Reversi (see DESIGN.md section 5).
REVERSI_PLAYOUT_KERNEL = KernelSpec(name="reversi_playout")

#: Cheaper kernels for the smaller domains.
TICTACTOE_PLAYOUT_KERNEL = KernelSpec(
    name="tictactoe_playout",
    cycles_per_step=900.0,
    latency_cycles_per_step=3600.0,
)
CONNECT4_PLAYOUT_KERNEL = KernelSpec(
    name="connect4_playout",
    cycles_per_step=1800.0,
    latency_cycles_per_step=7200.0,
)
BREAKTHROUGH_PLAYOUT_KERNEL = KernelSpec(
    name="breakthrough_playout",
    cycles_per_step=3000.0,
    latency_cycles_per_step=12000.0,
)

_KERNELS = {
    "reversi": REVERSI_PLAYOUT_KERNEL,
    "tictactoe": TICTACTOE_PLAYOUT_KERNEL,
    "connect4": CONNECT4_PLAYOUT_KERNEL,
    "breakthrough": BREAKTHROUGH_PLAYOUT_KERNEL,
}


def playout_kernel_spec(game_name: str) -> KernelSpec:
    """The calibrated playout kernel spec for a game."""
    try:
        return _KERNELS[game_name]
    except KeyError:
        raise ValueError(
            f"no playout kernel calibrated for {game_name!r}; "
            f"available: {sorted(_KERNELS)}"
        ) from None
