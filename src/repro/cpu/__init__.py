"""Virtual CPU cost model.

The paper's opponents and baselines run on Xeon X5670 cores (TSUBAME
2.0).  We charge each MCTS tree operation and scalar playout to the
virtual clock using a per-operation cost model calibrated so one
simulated core sustains roughly 1e4 playouts/s on Reversi -- the rate
implied by the paper's "1 GPU ~ 100-200 CPU threads" comparison against
its measured GPU throughput.
"""

from repro.cpu.costmodel import CpuCostModel, XEON_X5670, cpu_cost_model

__all__ = ["CpuCostModel", "XEON_X5670", "cpu_cost_model"]
