"""Per-operation virtual-time costs for CPU-side MCTS.

One sequential MCTS iteration is selection (walk down ``depth`` nodes),
expansion (create one node), one scalar playout (``plies`` moves), and
backpropagation (walk up ``depth`` nodes).  The constants below are the
calibration for Reversi on a paper-era Xeon core; see DESIGN.md
section 5.  Everything that touches the tree on the CPU -- including
the *sequential part* of the block-parallel scheme, whose growth with
the number of trees bends the paper's Figure 5 curves down -- is
charged through this model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuCostModel:
    """Virtual-time costs (seconds) of elementary MCTS operations."""

    name: str
    #: Cost per tree level walked during UCB selection.
    select_per_node_s: float = 0.4e-6
    #: Cost of expanding (allocating + initialising) one node.
    expand_s: float = 1.0e-6
    #: Cost per ply of one scalar random playout.
    playout_per_ply_s: float = 1.3e-6
    #: Cost per tree level walked during backpropagation.
    backprop_per_node_s: float = 0.2e-6
    #: Fixed per-iteration overhead (bookkeeping, dispatch).
    fixed_per_iteration_s: float = 3.0e-6
    #: Host-side cost of preparing/consuming one GPU tree's kernel data
    #: (the per-tree "sequential part" of block parallelism).
    tree_kernel_overhead_s: float = 25.0e-6

    def __post_init__(self) -> None:
        for field_name in (
            "select_per_node_s",
            "expand_s",
            "playout_per_ply_s",
            "backprop_per_node_s",
            "fixed_per_iteration_s",
            "tree_kernel_overhead_s",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def selection_time(self, depth: int) -> float:
        """Walking down ``depth`` tree levels."""
        return self.select_per_node_s * max(depth, 0)

    def backprop_time(self, depth: int) -> float:
        """Walking back up ``depth`` tree levels."""
        return self.backprop_per_node_s * max(depth, 0)

    def playout_time(self, plies: int) -> float:
        """One scalar random playout of ``plies`` moves."""
        return self.playout_per_ply_s * max(plies, 0)

    def iteration_time(self, depth: int, playout_plies: int) -> float:
        """One full sequential MCTS iteration."""
        return (
            self.fixed_per_iteration_s
            + self.selection_time(depth)
            + self.expand_s
            + self.playout_time(playout_plies)
            + self.backprop_time(depth)
        )

    def tree_control_time(self, depth: int) -> float:
        """The CPU-side share of one GPU iteration for one tree:
        selection + expansion + backprop + kernel data marshalling
        (no playout -- the GPU does those)."""
        return (
            self.selection_time(depth)
            + self.expand_s
            + self.backprop_time(depth)
            + self.tree_kernel_overhead_s
        )


#: Calibrated model for the paper's Xeon X5670 (~1e4 Reversi playout
#: iterations per second at typical mid-game depth).
XEON_X5670 = CpuCostModel(name="xeon_x5670")

#: A model with zero costs, for algorithm-only unit tests where virtual
#: time must not influence behaviour.
FREE_CPU = CpuCostModel(
    name="free",
    select_per_node_s=0.0,
    expand_s=0.0,
    playout_per_ply_s=0.0,
    backprop_per_node_s=0.0,
    fixed_per_iteration_s=0.0,
    tree_kernel_overhead_s=0.0,
)

_MODELS = {m.name: m for m in (XEON_X5670, FREE_CPU)}


def cpu_cost_model(name: str) -> CpuCostModel:
    """Look up a cost model by name."""
    try:
        return _MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown cpu cost model {name!r}; available: {sorted(_MODELS)}"
        ) from None
