#!/usr/bin/env python
"""The hybrid CPU/GPU scheme (paper Figure 4) in action.

Runs block-parallel and hybrid searches from the same position at the
same virtual budget and shows what the CPU overlap buys: extra
simulations and -- the paper's Figure 8 point -- deeper trees.

Run:  python examples/hybrid_search.py
"""

from repro.core import BlockParallelMcts, HybridMcts
from repro.games import Reversi

game = Reversi()
state = game.initial_state()
# Advance to a mid-game position for a more interesting search.
for move in (19, 26, 20, 21, 34, 17):
    if move in game.legal_moves(state):
        state = game.apply(state, move)

BUDGET = 0.05
CONFIG = dict(blocks=16, threads_per_block=32)

block = BlockParallelMcts(game, seed=3, **CONFIG)
block_result = block.search(state, BUDGET)

hybrid = HybridMcts(game, seed=3, **CONFIG)
hybrid_result = hybrid.search(state, BUDGET)

print(f"virtual budget: {BUDGET * 1e3:.0f} ms, grid "
      f"{CONFIG['blocks']}x{CONFIG['threads_per_block']}\n")

rows = [
    ("kernel iterations", block_result.iterations, hybrid_result.iterations),
    ("CPU iterations", 0, hybrid_result.extras["cpu.iterations"]),
    ("total playouts", block_result.simulations, hybrid_result.simulations),
    ("deepest tree path", block_result.max_depth, hybrid_result.max_depth),
    ("tree nodes", block_result.tree_nodes, hybrid_result.tree_nodes),
]
print(f"{'':>20s}  {'GPU only':>10s}  {'GPU + CPU':>10s}")
for label, a, b in rows:
    print(f"{label:>20s}  {a:>10d}  {b:>10d}")

print(
    "\nwhile each kernel was in flight the CPU ran "
    f"{hybrid_result.extras['cpu.iterations']} extra sequential "
    "iterations on the same trees -- that is where the added depth "
    "comes from (paper Fig. 8)."
)
