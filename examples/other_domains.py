#!/usr/bin/env python
"""Block-parallel MCTS beyond Reversi (the paper's future-work item).

The engine stack is game-generic: this example runs the identical
block-parallel engine on Connect-4 and TicTacToe, pitted against the
greedy and random baselines.

Run:  python examples/other_domains.py
"""

from repro.arena import play_match
from repro.core import BlockParallelMcts
from repro.games import make_game
from repro.players import GreedyPlayer, MctsPlayer, RandomPlayer

for game_name, opponent_kind, n_games in (
    ("connect4", "greedy", 6),
    ("breakthrough", "random", 6),
    ("tictactoe", "random", 10),
):
    game = make_game(game_name)

    def mcts_factory(seed, game=game):
        return MctsPlayer(
            game,
            BlockParallelMcts(
                game, seed, blocks=4, threads_per_block=32
            ),
            move_budget_s=0.01,
        )

    def opp_factory(seed, game=game, kind=opponent_kind):
        cls = GreedyPlayer if kind == "greedy" else RandomPlayer
        return cls(game, seed)

    result = play_match(
        game, mcts_factory, opp_factory, n_games, seed=2011
    )
    print(
        f"{game_name:>10s} vs {opponent_kind:<7s}: "
        f"{result.wins}W {result.losses}L {result.draws}D "
        f"(win ratio {result.win_ratio:.2f} over {n_games} games)"
    )

print(
    "\nsame engine, same kernels, different game modules -- the "
    "SIMT playout kernel only needs the game's batched step function."
)
