#!/usr/bin/env python
"""Export a Perfetto/Chrome trace of a hybrid search.

Runs one hybrid CPU/GPU search while recording kernel spans, then
writes ``hybrid_trace.json`` -- open it at https://ui.perfetto.dev or
``chrome://tracing`` to see the paper's Figure 4 overlap as an actual
timeline.

Run:  python examples/trace_kernels.py
"""

from repro.core import HybridMcts
from repro.games import Reversi
from repro.gpu.trace import trace_hybrid_search

game = Reversi()
engine = HybridMcts(game, seed=13, blocks=8, threads_per_block=32)

tracer = trace_hybrid_search(
    engine, game.initial_state(), budget_s=0.03
)

gpu_busy = tracer.track_busy_time("gpu")
cpu_busy = tracer.track_busy_time("cpu")
overlap = tracer.overlap_time("gpu", "cpu")

print(f"kernels recorded : "
      f"{sum(1 for e in tracer.events if e.track == 'gpu')}")
print(f"GPU busy         : {gpu_busy * 1e3:7.2f} ms virtual")
print(f"search wall      : {cpu_busy * 1e3:7.2f} ms virtual")
print(f"CPU/GPU overlap  : {overlap * 1e3:7.2f} ms "
      f"({overlap / gpu_busy:.0%} of kernel time hidden)")

with open("hybrid_trace.json", "w") as fp:
    tracer.dump(fp)
print("\nwrote hybrid_trace.json (open in ui.perfetto.dev)")
