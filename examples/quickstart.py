#!/usr/bin/env python
"""Quickstart: the 60-second tour of the library.

1. Run block-parallel MCTS (the paper's contribution) on a Reversi
   position and inspect the search result.
2. Compare it with plain sequential MCTS at the same virtual budget.
3. Peek at the virtual GPU underneath.

Run:  python examples/quickstart.py
"""

from repro.core import BlockParallelMcts, SequentialMcts
from repro.games import Reversi
from repro.gpu import TESLA_C2050

game = Reversi()
state = game.initial_state()
print(game.render(state))
print()

# --- the paper's engine: one MCTS tree per GPU block --------------------
engine = BlockParallelMcts(
    game,
    seed=42,
    blocks=16,  # 16 independent trees ...
    threads_per_block=32,  # ... each sampled by a 32-lane SIMD block
    device=TESLA_C2050,  # the paper's GPU, simulated
)
result = engine.search(state, budget_s=0.05)  # 50 ms of *virtual* time

row, col = divmod(result.move, 8)
print(f"block-parallel move : {'abcdefgh'[col]}{row + 1}")
print(f"  playouts          : {result.simulations}")
print(f"  kernel launches   : {result.extras['gpu.kernels']}")
print(f"  trees             : {result.trees}")
print(f"  deepest tree path : {result.max_depth}")
print(f"  virtual elapsed   : {result.elapsed_s * 1e3:.1f} ms")

# --- the baseline: one CPU core, same virtual budget ---------------------
cpu = SequentialMcts(game, seed=42)
cpu_result = cpu.search(state, budget_s=0.05)
print(f"\nsequential CPU move : {cpu_result.move}")
print(f"  playouts          : {cpu_result.simulations}")
print(
    f"\nGPU ran {result.simulations / cpu_result.simulations:.0f}x more "
    "playouts in the same virtual time."
)

# --- the device underneath ------------------------------------------------
stats = engine.gpu.stats
print(
    f"\nvirtual {TESLA_C2050.name}: {stats.kernels_launched} kernels, "
    f"{stats.playouts_completed} playouts, "
    f"{stats.busy_seconds * 1e3:.1f} ms busy"
)
