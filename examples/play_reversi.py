#!/usr/bin/env python
"""Watch a full Reversi game: block-parallel GPU MCTS vs greedy.

Prints the board after every few moves and the final result.  The GPU
player should dismantle the greedy disc-counter.

Run:  python examples/play_reversi.py
"""

from repro.arena import play_game
from repro.core import BlockParallelMcts
from repro.games import Reversi
from repro.players import GreedyPlayer, MctsPlayer

game = Reversi()

gpu_player = MctsPlayer(
    game,
    BlockParallelMcts(game, seed=7, blocks=8, threads_per_block=32),
    move_budget_s=0.02,
    name="gpu-mcts",
)
greedy = GreedyPlayer(game, seed=8)

print("black (X): block-parallel GPU MCTS")
print("white (O): greedy max-flips\n")

state = game.initial_state()
record = play_game(game, gpu_player, greedy)

# Replay the move list for display.
state = game.initial_state()
for move_rec in record.moves:
    state = game.apply(state, move_rec.move)
    if move_rec.step % 10 == 0:
        print(f"after step {move_rec.step} "
              f"(score {move_rec.score_after:+d}):")
        print(game.render(state))
        print()

outcome = {1: "black (GPU MCTS) wins", -1: "white (greedy) wins", 0: "draw"}
print(f"final: {outcome[record.winner]} by {abs(record.final_score)} discs")
print(f"game length: {record.length} plies")
gpu_moves = [m for m in record.moves if m.player == 1]
print(
    f"GPU playouts/move: "
    f"{sum(m.simulations for m in gpu_moves) // len(gpu_moves)}"
)
