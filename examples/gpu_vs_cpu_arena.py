#!/usr/bin/env python
"""Mini Figure 7: how many root-parallel CPU cores is one GPU worth?

Plays a small arena of Reversi games -- root-parallel CPU players of
increasing core counts, and one block-parallel GPU player -- all
against the same 1-core sequential opponent at the same virtual move
time, then prints each subject's mean final point difference.

Run:  python examples/gpu_vs_cpu_arena.py        (takes a few minutes)
"""

from repro.harness import Fig7Config, run_fig7

config = Fig7Config(
    cpu_counts=(2, 8, 32),
    gpu_blocks=16,
    gpu_tpb=64,
    games_per_point=4,
    move_budget_s=0.024,
)

print(
    "playing "
    f"{(len(config.cpu_counts) + 1) * config.games_per_point} games "
    f"({config.move_budget_s * 1e3:.0f} ms virtual per move)...\n"
)
result = run_fig7(config)

print(result.render(step_stride=12))
print()
finals = result.final_scores()
gpu_score = finals.pop("1 GPU")
beaten = [label for label, v in finals.items() if v <= gpu_score]
print(f"1 GPU final point difference: {gpu_score:+.1f}")
for label, v in sorted(finals.items(), key=lambda kv: kv[1]):
    marker = "<= GPU" if v <= gpu_score else "> GPU"
    print(f"  {label:>10s}: {v:+.1f}  ({marker})")
print(
    f"\nthe GPU matched or beat {len(beaten)}/{len(finals)} CPU "
    "configurations (the paper's Fig. 7 has it above all of them)."
)
