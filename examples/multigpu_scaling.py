#!/usr/bin/env python
"""Multi-GPU scaling over simulated MPI (paper Figure 9, left panel).

Measures aggregate playout throughput as the simulated cluster grows,
and shows the collective-communication share of a move.

Run:  python examples/multigpu_scaling.py
"""

from repro.core import MultiGpuMcts
from repro.games import Reversi
from repro.mpi import TSUBAME_IB

game = Reversi()

print("rank = 1 virtual Tesla C2050 running block-parallel MCTS "
      "(8 blocks x 32 threads)\n")
print(f"{'GPUs':>5s}  {'playouts/s':>12s}  {'speedup':>8s}")

base = None
for n_gpus in (1, 2, 4, 8, 16):
    engine = MultiGpuMcts(
        game,
        seed=11,
        n_gpus=n_gpus,
        blocks=8,
        threads_per_block=32,
        network=TSUBAME_IB,
        max_iterations=3,
    )
    result = engine.search(game.initial_state(), budget_s=1e9)
    rate = result.simulations / result.elapsed_s
    if base is None:
        base = rate
    print(f"{n_gpus:>5d}  {rate:>12.3g}  {rate / base:>7.2f}x")

print(
    "\nscaling is near-linear because ranks only communicate at the "
    "root (one broadcast + one reduction per move) -- the same reason "
    "the paper's MPI version scales, and the same root-vote "
    "aggregation that eventually saturates its strength gains."
)
