"""Tests for the Fig7 'GPU equivalent CPUs' headline metric."""

import math

import numpy as np

from repro.harness.fig7_gpu_vs_cpus import Fig7Config, Fig7Result


def result_with_finals(finals):
    cfg = Fig7Config(cpu_counts=(2, 8, 32), games_per_point=1)
    res = Fig7Result(config=cfg)
    for label, score in finals.items():
        series = np.zeros(cfg.steps)
        series[-1] = score
        res.series[label] = series
    return res


class TestGpuEquivalentCpus:
    def test_gpu_above_all_cpus(self):
        res = result_with_finals(
            {"2 cpus": 2.0, "8 cpus": 6.0, "32 cpus": 12.0, "1 GPU": 15.0}
        )
        assert res.gpu_equivalent_cpus() == float("inf")

    def test_gpu_below_all_cpus(self):
        res = result_with_finals(
            {"2 cpus": 2.0, "8 cpus": 6.0, "32 cpus": 12.0, "1 GPU": 1.0}
        )
        assert res.gpu_equivalent_cpus() == 2.0

    def test_interpolation_midpoint(self):
        res = result_with_finals(
            {"2 cpus": 0.0, "8 cpus": 10.0, "32 cpus": 20.0, "1 GPU": 5.0}
        )
        # halfway between 2 and 8 in log space = sqrt(16) = 4
        assert res.gpu_equivalent_cpus() == pytest_approx(4.0)

    def test_exact_match_on_a_point(self):
        res = result_with_finals(
            {"2 cpus": 0.0, "8 cpus": 10.0, "32 cpus": 20.0, "1 GPU": 10.0}
        )
        eq = res.gpu_equivalent_cpus()
        assert math.isclose(eq, 8.0, rel_tol=1e-6)


def pytest_approx(x, rel=1e-6):
    import pytest

    return pytest.approx(x, rel=rel)
