"""Smoke tests for the tree-backend ablation."""

from repro.harness import EXPERIMENTS
from repro.harness.ablations import BackendConfig, run_backend_ablation


def test_registered():
    assert "abl_tree_backend" in EXPERIMENTS


def test_tiny_run_reports_both_backends_identical():
    result = run_backend_ablation(
        BackendConfig(blocks=4, tpb=2, iterations=6, game="tictactoe")
    )
    assert set(result.iters_per_s) == {"node", "arena"}
    assert all(v > 0 for v in result.iters_per_s.values())
    assert result.identical
    assert result.speedup > 0
    rendered = result.render()
    assert "arena/node speedup" in rendered
    assert "identical results" in rendered


def test_tier_presets():
    assert BackendConfig.for_tier("quick").iterations == 120
    assert BackendConfig.for_tier("full").blocks == 512
