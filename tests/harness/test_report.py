"""Tests for EXPERIMENTS.md generation."""

import pytest

from repro.harness import EXPERIMENTS
from repro.harness.report import PAPER_CLAIMS, generate_experiments_md


class TestPaperClaims:
    def test_every_experiment_has_a_claim(self):
        missing = set(EXPERIMENTS) - set(PAPER_CLAIMS)
        assert not missing, f"claims missing for: {missing}"


class TestGenerate:
    def test_single_cheap_experiment(self, tmp_path):
        out = tmp_path / "EXP.md"
        text = generate_experiments_md(
            tier="quick",
            path=out,
            names=["abl_sequential_part"],
        )
        assert out.exists()
        content = out.read_text()
        assert content == text
        assert "# EXPERIMENTS" in content
        assert "## abl_sequential_part" in content
        assert "**Paper:**" in content
        assert "```" in content
        assert "sequential" in content

    def test_divergence_experiment(self, tmp_path):
        out = tmp_path / "EXP.md"
        generate_experiments_md(
            tier="quick", path=out, names=["abl_divergence"]
        )
        content = out.read_text()
        assert "warp efficiency" in content

    def test_bad_tier(self, tmp_path):
        with pytest.raises(ValueError):
            generate_experiments_md(
                tier="warp9", path=tmp_path / "x.md"
            )
