"""Integration tests: each experiment runs end-to-end on a tiny config
and its output satisfies the paper's *structural* expectations (shape,
labels, monotonicity where cheap to check)."""

import numpy as np
import pytest

from repro.harness import (
    Fig5Config,
    Fig6Config,
    Fig7Config,
    Fig8Config,
    Fig9Config,
    Scheme,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)
from repro.harness.ablations import (
    BlockSizeConfig,
    UcbConfig,
    VotePolicyConfig,
    run_block_size_ablation,
    run_seq_part_ablation,
    run_ucb_ablation,
    run_vote_policy_ablation,
)


class TestFig5:
    def test_tiny_run(self):
        cfg = Fig5Config(
            thread_counts=(32, 256), iterations_per_point=2
        )
        res = run_fig5(cfg)
        assert set(res.series) == {s.label for s in cfg.schemes}
        for values in res.series.values():
            assert len(values) == 2
            assert all(v > 0 for v in values)

    def test_throughput_rises_with_threads(self):
        cfg = Fig5Config(
            thread_counts=(32, 1024),
            schemes=(Scheme("leaf", 64),),
            iterations_per_point=2,
        )
        res = run_fig5(cfg)
        lo, hi = res.series["leaf(bs=64)"]
        assert hi > 5 * lo

    def test_render_contains_all_points(self):
        cfg = Fig5Config(thread_counts=(32,), iterations_per_point=1)
        out = run_fig5(cfg).render()
        assert "threads" in out and "leaf(bs=64)" in out


TINY_STRENGTH = dict(games_per_point=2, move_budget_s=0.004)


class TestFig6:
    def test_tiny_run(self):
        cfg = Fig6Config(
            thread_counts=(32,),
            schemes=(Scheme("block", 32),),
            **TINY_STRENGTH,
        )
        res = run_fig6(cfg)
        ratios = res.win_ratio["block(bs=32)"]
        assert len(ratios) == 1
        assert 0.0 <= ratios[0] <= 1.0
        lo, hi = res.intervals["block(bs=32)"][0]
        assert lo <= ratios[0] <= hi
        assert "Figure 6" in res.render()


class TestFig7:
    def test_tiny_run(self):
        cfg = Fig7Config(
            cpu_counts=(2,),
            gpu_blocks=2,
            gpu_tpb=32,
            games_per_point=2,
            move_budget_s=0.004,
        )
        res = run_fig7(cfg)
        assert set(res.series) == {"2 cpus", "1 GPU"}
        for series in res.series.values():
            assert series.shape == (60,)
        finals = res.final_scores()
        assert all(-64 <= v <= 64 for v in finals.values())
        assert "Figure 7" in res.render()


class TestFig8:
    def test_tiny_run(self):
        cfg = Fig8Config(
            blocks=2, tpb=32, games_per_series=2, move_budget_s=0.004
        )
        res = run_fig8(cfg)
        assert set(res.points) == {"GPU", "GPU + CPU"}
        assert set(res.depth) == {"GPU", "GPU + CPU"}
        # hybrid must reach at least the GPU-only depth on average
        assert (
            res.depth["GPU + CPU"].mean() >= res.depth["GPU"].mean()
        )
        assert "Figure 8" in res.render()


class TestFig9:
    def test_tiny_run(self):
        cfg = Fig9Config(
            gpu_counts=(1, 2),
            blocks=2,
            tpb=32,
            games_per_point=2,
            move_budget_s=0.004,
            throughput_iterations=2,
        )
        res = run_fig9(cfg)
        assert res.throughput[2] > res.throughput[1]
        assert set(res.point_difference) == {1, 2}
        assert "Figure 9" in res.render()


class TestGeneralization:
    def test_tiny_run(self):
        from repro.harness.generalization import (
            GeneralizationConfig,
            run_generalization,
        )

        cfg = GeneralizationConfig(
            games=("tictactoe",),
            blocks=2,
            tpb=32,
            games_per_point=2,
            move_budget_s=0.003,
        )
        res = run_generalization(cfg)
        assert set(res.win_ratio) == {
            ("tictactoe", "block"),
            ("tictactoe", "leaf"),
        }
        assert "Generalization" in res.render()


class TestAblations:
    def test_block_size(self):
        cfg = BlockSizeConfig(
            total_threads=64,
            block_sizes=(32, 64),
            games_per_point=2,
            move_budget_s=0.004,
        )
        res = run_block_size_ablation(cfg)
        assert set(res.win_ratio) == {32, 64}
        assert "block size" in res.render()

    def test_seq_part_monotone(self):
        res = run_seq_part_ablation(block_counts=(1, 16, 112))
        assert res.seq_fraction[0] < res.seq_fraction[1]
        assert res.seq_fraction[1] <= res.seq_fraction[2] + 1e-9
        assert "sequential" in res.render()

    def test_vote_policy(self):
        cfg = VotePolicyConfig(
            policies=("max_visits",),
            blocks=2,
            tpb=32,
            games_per_point=2,
            move_budget_s=0.004,
        )
        res = run_vote_policy_ablation(cfg)
        assert set(res.win_ratio) == {"max_visits"}

    def test_ucb(self):
        cfg = UcbConfig(
            c_values=(1.0,), games_per_point=2, move_budget_s=0.004
        )
        res = run_ucb_ablation(cfg)
        assert set(res.win_ratio) == {1.0}
