"""Tests for harness plumbing: schemes, grids, tiers, registry."""

import pytest

from repro.harness import EXPERIMENTS, PAPER_THREAD_SWEEP, Scheme, run_experiment
from repro.harness.common import resolve_tier


class TestScheme:
    def test_label(self):
        assert Scheme("block", 32).label == "block(bs=32)"

    def test_grid_exact_division(self):
        assert Scheme("block", 64).grid_for(1024) == (16, 64)

    def test_grid_partial_block(self):
        assert Scheme("leaf", 64).grid_for(8) == (1, 8)

    def test_grid_paper_sweep_always_valid(self):
        for scheme_bs in (32, 64, 128):
            scheme = Scheme("block", scheme_bs)
            for threads in PAPER_THREAD_SWEEP:
                blocks, tpb = scheme.grid_for(threads)
                assert blocks * tpb == threads

    def test_grid_rejects_nondivisible(self):
        with pytest.raises(ValueError):
            Scheme("block", 64).grid_for(96)

    def test_grid_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Scheme("block", 64).grid_for(0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Scheme("warp", 32)


class TestTier:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIER", raising=False)
        assert resolve_tier() == "default"

    def test_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "quick")
        assert resolve_tier() == "quick"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "quick")
        assert resolve_tier("full") == "full"

    def test_unknown(self):
        with pytest.raises(ValueError):
            resolve_tier("turbo")


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for fig in (
            "fig5_speed",
            "fig6_winratio",
            "fig7_gpu_vs_cpus",
            "fig8_hybrid",
            "fig9_multigpu",
        ):
            assert fig in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig42")
