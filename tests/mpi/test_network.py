"""Tests for the alpha-beta network model."""

import pytest

from repro.mpi import TSUBAME_IB, NetworkModel


class TestMessageTime:
    def test_latency_floor(self):
        assert TSUBAME_IB.message_time(0) == TSUBAME_IB.alpha_s

    def test_bandwidth_term(self):
        t = TSUBAME_IB.message_time(3 * 10**9)
        assert t == pytest.approx(TSUBAME_IB.alpha_s + 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TSUBAME_IB.message_time(-1)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            NetworkModel(name="bad", alpha_s=-1, beta_s_per_byte=0)


class TestCollectives:
    def test_single_rank_is_free(self):
        assert TSUBAME_IB.tree_collective_time(100, 1) == 0.0

    def test_log_rounds(self):
        msg = TSUBAME_IB.message_time(64)
        assert TSUBAME_IB.tree_collective_time(64, 2) == pytest.approx(msg)
        assert TSUBAME_IB.tree_collective_time(64, 4) == pytest.approx(
            2 * msg
        )
        assert TSUBAME_IB.tree_collective_time(64, 5) == pytest.approx(
            3 * msg
        )
        assert TSUBAME_IB.tree_collective_time(64, 32) == pytest.approx(
            5 * msg
        )

    def test_allreduce_is_double(self):
        assert TSUBAME_IB.allreduce_time(64, 8) == pytest.approx(
            2 * TSUBAME_IB.tree_collective_time(64, 8)
        )

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            TSUBAME_IB.tree_collective_time(64, 0)
