"""Tests for the simulated MPI cluster."""

import numpy as np
import pytest

from repro.mpi import MpiCluster, TSUBAME_IB
from repro.mpi.cluster import MpiError


@pytest.fixture
def cluster():
    return MpiCluster(4, TSUBAME_IB, seed=1)


class TestConstruction:
    def test_rejects_zero_size(self):
        with pytest.raises(MpiError):
            MpiCluster(0, TSUBAME_IB)

    def test_rank_contexts_have_distinct_seeds(self, cluster):
        seeds = cluster.run_on_ranks(lambda ctx: ctx.seed)
        assert len(set(seeds)) == 4

    def test_rank_ids(self, cluster):
        ranks = cluster.run_on_ranks(lambda ctx: (ctx.rank, ctx.size))
        assert ranks == [(0, 4), (1, 4), (2, 4), (3, 4)]


class TestRankLocalTime:
    def test_ranks_charge_independently(self, cluster):
        def work(ctx):
            ctx.clock.advance(float(ctx.rank))
            return ctx.clock.now

        times = cluster.run_on_ranks(work)
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_barrier_aligns_to_slowest(self, cluster):
        cluster.run_on_ranks(lambda ctx: ctx.clock.advance(ctx.rank * 1.0))
        done = cluster.barrier()
        assert done >= 3.0
        assert all(c.now == done for c in cluster.clocks)


class TestCollectives:
    def test_bcast_copies_value(self, cluster):
        out = cluster.bcast({"state": 42}, root=0)
        assert len(out) == 4
        assert all(v == {"state": 42} for v in out)

    def test_bcast_charges_time(self, cluster):
        cluster.bcast(np.zeros(1000), root=0)
        assert all(c.now > 0 for c in cluster.clocks)

    def test_reduce_sum(self, cluster):
        out = cluster.reduce([1, 2, 3, 4], op="sum")
        assert out == 10

    def test_reduce_arrays(self, cluster):
        values = [np.full(3, r) for r in range(4)]
        out = cluster.reduce(values, op="sum")
        np.testing.assert_array_equal(out, [6, 6, 6])

    def test_reduce_max_min(self, cluster):
        assert cluster.reduce([5, 2, 9, 1], op="max") == 9
        assert cluster.reduce([5, 2, 9, 1], op="min") == 1

    def test_reduce_wrong_count(self, cluster):
        with pytest.raises(MpiError, match="one value per rank"):
            cluster.reduce([1, 2], op="sum")

    def test_reduce_unknown_op(self, cluster):
        with pytest.raises(MpiError, match="unknown reduce op"):
            cluster.reduce([1, 2, 3, 4], op="xor")

    def test_allreduce_gives_everyone_result(self, cluster):
        out = cluster.allreduce([1, 1, 1, 1], op="sum")
        assert out == [4, 4, 4, 4]

    def test_allreduce_costs_more_than_reduce(self):
        a = MpiCluster(8, TSUBAME_IB)
        b = MpiCluster(8, TSUBAME_IB)
        a.reduce([np.zeros(100)] * 8, op="sum")
        b.allreduce([np.zeros(100)] * 8, op="sum")
        assert b.elapsed > a.elapsed

    def test_gather(self, cluster):
        out = cluster.gather(["a", "b", "c", "d"], root=2)
        assert out == ["a", "b", "c", "d"]

    def test_bad_root(self, cluster):
        with pytest.raises(MpiError, match="out of range"):
            cluster.bcast(1, root=7)

    def test_collective_waits_for_slowest_rank(self, cluster):
        cluster.clocks[2].advance(10.0)
        cluster.bcast(1, root=0)
        assert all(c.now >= 10.0 for c in cluster.clocks)


class TestPointToPoint:
    def test_send_advances_receiver(self, cluster):
        cluster.clocks[0].advance(1.0)
        value = cluster.send(0, 1, b"x" * 100)
        assert value == b"x" * 100
        assert cluster.clocks[1].now >= 1.0

    def test_send_to_self_rejected(self, cluster):
        with pytest.raises(MpiError, match="cannot send to itself"):
            cluster.send(1, 1, b"x")


class TestScaling:
    def test_collective_cost_grows_logarithmically(self):
        elapsed = []
        for size in (2, 4, 16):
            c = MpiCluster(size, TSUBAME_IB)
            c.bcast(np.zeros(1000))
            elapsed.append(c.elapsed)
        assert elapsed[0] < elapsed[1] < elapsed[2]
        # 16 ranks is 4 rounds vs 1 round for 2 ranks: exactly 4x here.
        assert elapsed[2] == pytest.approx(4 * elapsed[0])


@pytest.mark.faults
class TestDroppedMessages:
    """Lossy vote aggregation via an attached fault injector."""

    def _lossy(self, size=4, rate=1.0, seed=1):
        from repro.faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan(mpi_drop_rate=rate, seed=seed))
        return MpiCluster(size, TSUBAME_IB, seed=1, injector=injector)

    def test_reduce_drops_non_root_contributions(self):
        cluster = self._lossy(rate=1.0)
        total = cluster.reduce([1, 10, 100, 1000], op="sum", root=0)
        # Every non-root contribution dropped; the root's survives.
        assert total == 1
        assert cluster.dropped == 3

    def test_reduce_root_contribution_never_dropped(self):
        cluster = self._lossy(rate=1.0)
        total = cluster.reduce([1, 10, 100, 1000], op="sum", root=2)
        assert total == 100

    def test_allreduce_drops_contributions(self):
        cluster = self._lossy(rate=1.0)
        results = cluster.allreduce([1, 10, 100, 1000], op="sum")
        assert results == [1, 1, 1, 1]
        assert cluster.dropped == 3

    def test_drops_deterministic_under_seed(self):
        def run():
            cluster = self._lossy(rate=0.5, seed=9)
            totals = [
                cluster.reduce([1, 2, 3, 4], op="sum")
                for _ in range(10)
            ]
            return totals, cluster.dropped

        assert run() == run()

    def test_zero_rate_drops_nothing(self):
        cluster = self._lossy(rate=0.0)
        assert cluster.reduce([1, 2, 3, 4], op="sum") == 10
        assert cluster.dropped == 0

    def test_no_injector_unchanged(self, cluster):
        assert cluster.injector is None
        assert cluster.reduce([1, 2, 3, 4], op="sum") == 10
        assert cluster.dropped == 0

    def test_timing_unaffected_by_drops(self):
        lossless = MpiCluster(4, TSUBAME_IB, seed=1)
        lossy = self._lossy(rate=1.0)
        lossless.reduce([1, 2, 3, 4], op="sum")
        lossy.reduce([1, 2, 3, 4], op="sum")
        assert lossy.elapsed == lossless.elapsed
