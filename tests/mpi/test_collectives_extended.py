"""Tests for scatter/allgather/alltoall."""

import numpy as np
import pytest

from repro.mpi import MpiCluster, TSUBAME_IB
from repro.mpi.cluster import MpiError


@pytest.fixture
def cluster():
    return MpiCluster(4, TSUBAME_IB, seed=2)


class TestScatter:
    def test_distributes_values(self, cluster):
        out = cluster.scatter([10, 20, 30, 40], root=0)
        assert out == [10, 20, 30, 40]

    def test_wrong_count(self, cluster):
        with pytest.raises(MpiError, match="one value per rank"):
            cluster.scatter([1, 2], root=0)

    def test_charges_time(self, cluster):
        cluster.scatter([np.zeros(100)] * 4)
        assert all(c.now > 0 for c in cluster.clocks)


class TestAllgather:
    def test_everyone_gets_everything(self, cluster):
        out = cluster.allgather(["a", "b", "c", "d"])
        assert len(out) == 4
        for inbox in out:
            assert inbox == ["a", "b", "c", "d"]

    def test_wrong_count(self, cluster):
        with pytest.raises(MpiError):
            cluster.allgather([1])

    def test_costs_more_than_gather(self):
        a = MpiCluster(8, TSUBAME_IB)
        b = MpiCluster(8, TSUBAME_IB)
        values = [np.zeros(1000)] * 8
        a.gather(values)
        b.allgather(values)
        assert b.elapsed > a.elapsed


class TestAlltoall:
    def test_transpose_semantics(self, cluster):
        matrix = [
            [f"{src}->{dst}" for dst in range(4)] for src in range(4)
        ]
        inboxes = cluster.alltoall(matrix)
        for dst in range(4):
            assert inboxes[dst] == [f"{src}->{dst}" for src in range(4)]

    def test_bad_shape(self, cluster):
        with pytest.raises(MpiError, match="matrix"):
            cluster.alltoall([[1, 2], [3, 4]])

    def test_single_rank_is_free(self):
        c = MpiCluster(1, TSUBAME_IB)
        out = c.alltoall([["x"]])
        assert out == [["x"]]
        assert c.elapsed == 0.0

    def test_cost_scales_with_ranks(self):
        small = MpiCluster(2, TSUBAME_IB)
        large = MpiCluster(8, TSUBAME_IB)
        small.alltoall([[0] * 2 for _ in range(2)])
        large.alltoall([[0] * 8 for _ in range(8)])
        assert large.elapsed > small.elapsed
