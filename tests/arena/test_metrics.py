"""Tests for strength metrics."""

import numpy as np
import pytest

from repro.arena import (
    mean_depth_series,
    mean_score_series,
    wilson_interval,
    win_ratio,
)
from repro.arena.match import GameRecord, MoveRecord


def make_record(scores, winner=1, depths=None, players=None):
    depths = depths or [0] * len(scores)
    players = players or [1 if i % 2 == 0 else -1 for i in range(len(scores))]
    moves = [
        MoveRecord(
            step=i + 1,
            player=players[i],
            move=0,
            score_after=scores[i],
            simulations=0,
            max_depth=depths[i],
        )
        for i in range(len(scores))
    ]
    return GameRecord(
        winner=winner, final_score=scores[-1], moves=moves
    )


class TestWinRatio:
    def test_basic(self):
        assert win_ratio(6, 2, 2) == pytest.approx(0.7)

    def test_all_draws(self):
        assert win_ratio(0, 0, 10) == pytest.approx(0.5)

    def test_no_games_raises(self):
        with pytest.raises(ValueError):
            win_ratio(0, 0, 0)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(70, 100)
        assert lo < 0.7 < hi

    def test_narrows_with_samples(self):
        lo1, hi1 = wilson_interval(7, 10)
        lo2, hi2 = wilson_interval(700, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_bounds_clamped(self):
        lo, hi = wilson_interval(0, 5)
        assert lo == 0.0
        lo, hi = wilson_interval(5, 5)
        assert hi == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(6, 5)


class TestScoreSeries:
    def test_pads_with_final_value(self):
        rec = make_record([1, 2, 3])
        out = mean_score_series([rec], [1], length=5)
        np.testing.assert_array_equal(out, [1, 2, 3, 3, 3])

    def test_perspective_flip(self):
        rec = make_record([1, 2, 3])
        out = mean_score_series([rec], [-1], length=3)
        np.testing.assert_array_equal(out, [-1, -2, -3])

    def test_averages_games(self):
        a = make_record([2, 4])
        b = make_record([0, 0])
        out = mean_score_series([a, b], [1, 1], length=2)
        np.testing.assert_array_equal(out, [1, 2])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            mean_score_series([make_record([1])], [1, 1], 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_score_series([], [], 3)


class TestDepthSeries:
    def test_carries_depth_forward(self):
        rec = make_record(
            [0, 0, 0, 0],
            depths=[5, 9, 7, 9],
            players=[1, -1, 1, -1],
        )
        out = mean_depth_series([rec], [1], length=4)
        np.testing.assert_array_equal(out, [5, 5, 7, 7])

    def test_opponent_perspective(self):
        rec = make_record(
            [0, 0, 0, 0],
            depths=[5, 9, 7, 11],
            players=[1, -1, 1, -1],
        )
        out = mean_depth_series([rec], [-1], length=4)
        np.testing.assert_array_equal(out, [0, 9, 9, 11])
