"""Tests for the SPRT early-stopping machinery."""

import pytest

from repro.arena.sprt import ACCEPT_H0, ACCEPT_H1, CONTINUE, Sprt, sprt_match
from repro.core import SequentialMcts
from repro.games import TicTacToe
from repro.players import MctsPlayer, RandomPlayer

GAME = TicTacToe()


class TestSprtCore:
    def test_validates_hypotheses(self):
        with pytest.raises(ValueError):
            Sprt(p0=0.6, p1=0.5)
        with pytest.raises(ValueError):
            Sprt(p0=0.0, p1=0.5)
        with pytest.raises(ValueError):
            Sprt(p0=0.4, p1=0.6, alpha=0.0)

    def test_bounds_signs(self):
        t = Sprt(p0=0.45, p1=0.55)
        assert t.upper_bound > 0 > t.lower_bound

    def test_rejects_bad_outcome(self):
        t = Sprt(p0=0.45, p1=0.55)
        with pytest.raises(ValueError):
            t.record(0.7)

    def test_streak_of_wins_accepts_h1(self):
        t = Sprt(p0=0.4, p1=0.6)
        verdict = CONTINUE
        for _ in range(100):
            verdict = t.record(1.0)
            if verdict != CONTINUE:
                break
        assert verdict == ACCEPT_H1
        assert t.games < 40  # far fewer than the fixed budget

    def test_streak_of_losses_accepts_h0(self):
        t = Sprt(p0=0.4, p1=0.6)
        verdict = CONTINUE
        for _ in range(100):
            verdict = t.record(0.0)
            if verdict != CONTINUE:
                break
        assert verdict == ACCEPT_H0

    def test_balanced_outcomes_stay_undecided(self):
        t = Sprt(p0=0.4, p1=0.6)
        for _ in range(10):
            assert t.record(1.0) in (CONTINUE, ACCEPT_H1)
            t2 = t.record(0.0)
        assert t2 == CONTINUE

    def test_draws_move_llr_toward_middle(self):
        t = Sprt(p0=0.4, p1=0.6)
        t.record(0.5)
        # symmetric hypotheses: a draw is exactly neutral
        assert t.llr == pytest.approx(0.0, abs=1e-12)


class TestSprtMatch:
    def test_stops_early_against_random(self):
        def mcts(seed):
            return MctsPlayer(
                GAME, SequentialMcts(GAME, seed), move_budget_s=0.003
            )

        def rand(seed):
            return RandomPlayer(GAME, seed)

        sprt = Sprt(p0=0.5, p1=0.75)
        verdict, result = sprt_match(
            GAME, mcts, rand, sprt, seed=5, max_games=60
        )
        assert verdict == ACCEPT_H1
        assert result.games < 60

    def test_budget_exhaustion_returns_continue(self):
        def rand(seed):
            return RandomPlayer(GAME, seed)

        sprt = Sprt(p0=0.45, p1=0.55, alpha=0.001, beta=0.001)
        verdict, result = sprt_match(
            GAME, rand, rand, sprt, seed=6, max_games=5
        )
        assert verdict == CONTINUE
        assert result.games == 5
