"""Tests for the cohort driver."""

import pytest

from repro.arena import play_game
from repro.arena.cohort import drive_merged, play_games_cohort
from repro.core import BlockParallelMcts, SequentialMcts
from repro.core.base import batch_executor
from repro.games import TicTacToe
from repro.players import MctsPlayer, RandomPlayer

GAME = TicTacToe()


def seq_player(seed, budget=0.002):
    return MctsPlayer(GAME, SequentialMcts(GAME, seed), budget)


def gpu_player(seed, budget=0.002):
    return MctsPlayer(
        GAME,
        BlockParallelMcts(GAME, seed, blocks=2, threads_per_block=32),
        budget,
    )


@pytest.fixture
def executor():
    return batch_executor("tictactoe", seed=99)


class TestDriveMerged:
    def test_single_generator_matches_engine_result(self, executor):
        engine = SequentialMcts(GAME, seed=4)
        gen = engine.search_steps(GAME.initial_state(), 0.002)
        results = drive_merged({0: gen}, executor)
        assert 0 in results
        assert results[0].simulations > 0

    def test_many_generators_all_complete(self, executor):
        gens = {
            i: SequentialMcts(GAME, seed=i).search_steps(
                GAME.initial_state(), 0.001 + 0.001 * i
            )
            for i in range(5)
        }
        results = drive_merged(gens, executor)
        assert set(results) == set(range(5))
        for res in results.values():
            assert res.move in range(9)

    def test_empty_input(self, executor):
        assert drive_merged({}, executor) == {}


class TestPlayGamesCohort:
    def test_rejects_empty_cohort(self, executor):
        with pytest.raises(ValueError):
            play_games_cohort(GAME, [], executor)

    def test_games_complete_with_valid_records(self, executor):
        matchups = [
            (seq_player(i * 2), seq_player(i * 2 + 1)) for i in range(4)
        ]
        records = play_games_cohort(GAME, matchups, executor)
        assert len(records) == 4
        for rec in records:
            assert rec.winner in (-1, 0, 1)
            assert 5 <= rec.length <= 9
            assert [m.step for m in rec.moves] == list(
                range(1, rec.length + 1)
            )

    def test_mixed_cpu_gpu_cohort(self, executor):
        matchups = [
            (gpu_player(1), seq_player(2)),
            (seq_player(3), gpu_player(4)),
            (RandomPlayer(GAME, 5), seq_player(6)),
        ]
        records = play_games_cohort(GAME, matchups, executor)
        assert len(records) == 3
        for rec in records:
            assert rec.winner in (-1, 0, 1)

    def test_telemetry_recorded(self, executor):
        records = play_games_cohort(
            GAME, [(seq_player(1), seq_player(2))], executor
        )
        first_move = records[0].moves[0]
        assert first_move.simulations > 0
        assert first_move.max_depth >= 1

    def test_cohort_games_are_sensible_mcts_games(self, executor):
        """MCTS vs MCTS TicTacToe with a decent budget mostly draws."""
        matchups = [
            (seq_player(i, 0.004), seq_player(100 + i, 0.004))
            for i in range(6)
        ]
        records = play_games_cohort(GAME, matchups, executor)
        draws = sum(1 for r in records if r.winner == 0)
        assert draws >= 3

    def test_single_game_cohort_equivalent_quality(self, executor):
        """A cohort of one behaves like play_game (same API surface)."""
        rec_cohort = play_games_cohort(
            GAME, [(seq_player(1), seq_player(2))], executor
        )[0]
        rec_direct = play_game(GAME, seq_player(1), seq_player(2))
        # RNG paths differ (batched vs scalar playouts) so moves may
        # differ; the contract is structural validity, not identity.
        assert rec_cohort.winner in (-1, 0, 1)
        assert rec_direct.winner in (-1, 0, 1)
