"""Tests for matchups and strength ordering sanity."""

import pytest

from repro.arena import play_match
from repro.arena.tournament import round_robin
from repro.core import SequentialMcts
from repro.games import TicTacToe
from repro.players import GreedyPlayer, MctsPlayer, RandomPlayer

GAME = TicTacToe()


def random_factory(seed):
    return RandomPlayer(GAME, seed)


def mcts_factory(seed):
    return MctsPlayer(
        GAME, SequentialMcts(GAME, seed), move_budget_s=0.003
    )


class TestPlayMatch:
    def test_counts_add_up(self):
        res = play_match(GAME, random_factory, random_factory, 10, seed=1)
        assert res.games == 10
        assert res.wins + res.losses + res.draws == 10
        assert len(res.records) == 10

    def test_colours_alternate(self):
        res = play_match(GAME, random_factory, random_factory, 4, seed=1)
        assert res.subject_colours == [1, -1, 1, -1]

    def test_fixed_colours(self):
        res = play_match(
            GAME,
            random_factory,
            random_factory,
            4,
            seed=1,
            alternate_colours=False,
        )
        assert res.subject_colours == [1, 1, 1, 1]

    def test_reproducible(self):
        a = play_match(GAME, random_factory, random_factory, 6, seed=9)
        b = play_match(GAME, random_factory, random_factory, 6, seed=9)
        assert (a.wins, a.losses, a.draws) == (b.wins, b.losses, b.draws)

    def test_rejects_zero_games(self):
        with pytest.raises(ValueError):
            play_match(GAME, random_factory, random_factory, 0, seed=1)

    def test_series_shapes(self):
        res = play_match(GAME, random_factory, random_factory, 4, seed=2)
        assert res.score_series(9).shape == (9,)
        assert res.depth_series(9).shape == (9,)


class TestStrengthOrdering:
    """MCTS > random must hold in TicTacToe for any sane engine."""

    def test_mcts_crushes_random(self):
        res = play_match(GAME, mcts_factory, random_factory, 12, seed=3)
        assert res.win_ratio > 0.75

    def test_mcts_never_loses_as_first_player(self):
        res = play_match(
            GAME,
            mcts_factory,
            lambda s: GreedyPlayer(GAME, s),
            6,
            seed=4,
            alternate_colours=False,
        )
        assert res.losses <= 1  # tiny budget; at most a rare slip

    def test_ci_brackets_ratio(self):
        res = play_match(GAME, mcts_factory, random_factory, 8, seed=5)
        lo, hi = res.win_ratio_ci()
        assert lo <= res.win_ratio <= hi


class TestRoundRobin:
    def test_all_ordered_pairs(self):
        factories = {"r1": random_factory, "r2": random_factory}
        out = round_robin(GAME, factories, 2, seed=1)
        assert set(out) == {("r1", "r2"), ("r2", "r1")}
        for res in out.values():
            assert res.games == 2
