"""Tests for single-game play and records."""

import pytest

from repro.arena import play_game
from repro.games import Reversi, TicTacToe
from repro.players import RandomPlayer


class TestPlayGame:
    def test_tictactoe_completes(self):
        game = TicTacToe()
        rec = play_game(
            game, RandomPlayer(game, 1), RandomPlayer(game, 2)
        )
        assert rec.winner in (-1, 0, 1)
        assert 5 <= rec.length <= 9
        assert rec.moves[0].player == 1
        assert rec.moves[1].player == -1

    def test_reversi_completes_with_final_score(self):
        game = Reversi()
        rec = play_game(
            game, RandomPlayer(game, 3), RandomPlayer(game, 4)
        )
        assert rec.length >= 58  # 60 disc moves, possibly minus passes
        assert rec.final_score == rec.moves[-1].score_after
        assert rec.winner == (rec.final_score > 0) - (rec.final_score < 0)

    def test_steps_are_sequential(self):
        game = TicTacToe()
        rec = play_game(
            game, RandomPlayer(game, 5), RandomPlayer(game, 6)
        )
        assert [m.step for m in rec.moves] == list(
            range(1, rec.length + 1)
        )

    def test_score_series_perspective(self):
        game = TicTacToe()
        rec = play_game(
            game, RandomPlayer(game, 7), RandomPlayer(game, 8)
        )
        plus = rec.score_series(1)
        minus = rec.score_series(-1)
        assert [a + b for a, b in zip(plus, minus)] == [0] * rec.length

    def test_max_plies_guard(self):
        game = Reversi()
        with pytest.raises(RuntimeError, match="exceeded"):
            play_game(
                game,
                RandomPlayer(game, 1),
                RandomPlayer(game, 2),
                max_plies=5,
            )

    def test_depth_series_filters_by_player(self):
        game = TicTacToe()
        rec = play_game(
            game, RandomPlayer(game, 9), RandomPlayer(game, 10)
        )
        black_steps = [s for s, _ in rec.depth_series(1)]
        assert all(step % 2 == 1 for step in black_steps)
