"""Tests for Elo estimation."""

import pytest

from repro.arena.elo import elo_ratings, expected_score


class TestExpectedScore:
    def test_equal_ratings(self):
        assert expected_score(0, 0) == pytest.approx(0.5)

    def test_400_points_is_10_to_1(self):
        assert expected_score(400, 0) == pytest.approx(10 / 11, rel=1e-6)

    def test_antisymmetric(self):
        assert expected_score(120, -50) + expected_score(
            -50, 120
        ) == pytest.approx(1.0)


class TestEloRatings:
    def test_balanced_pair(self):
        ratings = elo_ratings({("a", "b"): (5.0, 10)})
        assert ratings["a"] == pytest.approx(ratings["b"], abs=1e-6)

    def test_dominant_player_rated_higher(self):
        ratings = elo_ratings({("a", "b"): (8.0, 10)})
        assert ratings["a"] > ratings["b"] + 100

    def test_transitive_ordering(self):
        ratings = elo_ratings(
            {
                ("a", "b"): (7.0, 10),
                ("b", "c"): (7.0, 10),
                ("a", "c"): (9.0, 10),
            }
        )
        assert ratings["a"] > ratings["b"] > ratings["c"]

    def test_mean_zero_anchor(self):
        ratings = elo_ratings(
            {("a", "b"): (6.0, 10), ("b", "c"): (4.0, 10)}
        )
        assert sum(ratings.values()) == pytest.approx(0.0, abs=1e-6)

    def test_recovers_known_gap(self):
        # 200 Elo -> expected ~0.76; feed that score and expect ~200.
        p = expected_score(200, 0)
        ratings = elo_ratings({("a", "b"): (p * 1000, 1000)})
        gap = ratings["a"] - ratings["b"]
        assert gap == pytest.approx(200, abs=10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            elo_ratings({})

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            elo_ratings({("a", "b"): (3.0, 0)})
        with pytest.raises(ValueError):
            elo_ratings({("a", "b"): (11.0, 10)})

    def test_perfect_score_stays_finite(self):
        ratings = elo_ratings({("a", "b"): (10.0, 10)})
        assert abs(ratings["a"]) < 2000
