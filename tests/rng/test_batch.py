"""Tests for the vectorised per-lane generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import BatchXorShift128Plus


class TestConstruction:
    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            BatchXorShift128Plus(0, seed=1)

    def test_lane_count(self):
        assert BatchXorShift128Plus(17, seed=1).n == 17


class TestDeterminism:
    def test_same_seed_same_streams(self):
        a = BatchXorShift128Plus(8, seed=5)
        b = BatchXorShift128Plus(8, seed=5)
        np.testing.assert_array_equal(a.next_u64(), b.next_u64())

    def test_lanes_are_distinct(self):
        rng = BatchXorShift128Plus(64, seed=5)
        out = rng.next_u64()
        assert len(np.unique(out)) == 64

    def test_digest_changes_after_step(self):
        rng = BatchXorShift128Plus(4, seed=2)
        d0 = rng.state_digest()
        rng.next_u64()
        assert rng.state_digest() != d0


class TestLaneIndependence:
    def test_prefix_lanes_match_wider_generator(self):
        """Lane i's stream depends only on (seed, i), not on n."""
        small = BatchXorShift128Plus(4, seed=9)
        large = BatchXorShift128Plus(16, seed=9)
        np.testing.assert_array_equal(
            small.next_u64(), large.next_u64()[:4]
        )


class TestRandom:
    def test_unit_interval(self):
        rng = BatchXorShift128Plus(32, seed=3)
        for _ in range(10):
            x = rng.random()
            assert np.all(x >= 0.0) and np.all(x < 1.0)

    def test_mean_near_half(self):
        rng = BatchXorShift128Plus(512, seed=3)
        total = np.zeros(512)
        for _ in range(40):
            total += rng.random()
        assert abs(total.mean() / 40 - 0.5) < 0.02


class TestRandbelow:
    def test_zero_bound_gives_zero(self):
        rng = BatchXorShift128Plus(4, seed=1)
        out = rng.randbelow(np.array([0, 1, 2, 3]))
        assert out[0] == 0

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=64))
    def test_within_bounds(self, bound):
        rng = BatchXorShift128Plus(128, seed=8)
        bounds = np.full(128, bound, dtype=np.int64)
        for _ in range(4):
            out = rng.randbelow(bounds)
            assert np.all(out >= 0) and np.all(out < bound)

    def test_mixed_bounds(self):
        rng = BatchXorShift128Plus(5, seed=8)
        bounds = np.array([1, 2, 3, 10, 60])
        for _ in range(20):
            out = rng.randbelow(bounds)
            assert np.all(out < bounds)

    def test_covers_range(self):
        rng = BatchXorShift128Plus(256, seed=13)
        bounds = np.full(256, 6)
        seen = set()
        for _ in range(10):
            seen.update(rng.randbelow(bounds).tolist())
        assert seen == {0, 1, 2, 3, 4, 5}


class TestCheckpointState:
    def test_getstate_setstate_round_trip(self):
        rng = BatchXorShift128Plus(16, seed=21)
        rng.random()
        state = rng.getstate()
        ahead = rng.random().tolist()
        rng.setstate(state)
        assert rng.random().tolist() == ahead

    def test_from_state_resumes_every_lane(self):
        rng = BatchXorShift128Plus(8, seed=4)
        rng.random()
        clone = BatchXorShift128Plus.from_state(rng.getstate())
        assert clone.n == rng.n
        assert clone.random().tolist() == rng.random().tolist()
        assert clone.state_digest() == rng.state_digest()

    def test_state_arrays_are_copies(self):
        rng = BatchXorShift128Plus(4, seed=9)
        n, s0, s1 = rng.getstate()
        digest = rng.state_digest()
        s0[:] = 0
        s1[:] = 0
        assert rng.state_digest() == digest

    def test_setstate_rejects_malformed(self):
        rng = BatchXorShift128Plus(4, seed=1)
        n, s0, s1 = rng.getstate()
        with pytest.raises(ValueError):
            rng.setstate((0, s0[:0], s1[:0]))
        with pytest.raises(ValueError):
            rng.setstate((n, s0[:-1], s1))
