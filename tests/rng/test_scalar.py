"""Tests for the scalar xorshift64* generator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import XorShift64Star


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = XorShift64Star(123)
        b = XorShift64Star(123)
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = XorShift64Star(1)
        b = XorShift64Star(2)
        assert [a.next_u64() for _ in range(4)] != [
            b.next_u64() for _ in range(4)
        ]

    def test_zero_seed_is_valid(self):
        rng = XorShift64Star(0)
        assert rng.next_u64() != rng.next_u64()


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_outputs_stay_in_64_bits(seed):
    rng = XorShift64Star(seed)
    for _ in range(8):
        assert 0 <= rng.next_u64() < 2**64


class TestRandrange:
    def test_rejects_nonpositive(self):
        rng = XorShift64Star(1)
        with pytest.raises(ValueError):
            rng.randrange(0)
        with pytest.raises(ValueError):
            rng.randrange(-3)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_in_bounds(self, n):
        rng = XorShift64Star(99)
        for _ in range(16):
            assert 0 <= rng.randrange(n) < n

    def test_covers_small_range(self):
        rng = XorShift64Star(5)
        seen = {rng.randrange(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_roughly_uniform(self):
        rng = XorShift64Star(7)
        counts = [0] * 8
        trials = 8000
        for _ in range(trials):
            counts[rng.randrange(8)] += 1
        for c in counts:
            assert abs(c - trials / 8) < 5 * (trials / 8) ** 0.5


class TestRandomFloat:
    def test_in_unit_interval(self):
        rng = XorShift64Star(3)
        for _ in range(100):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_mean_near_half(self):
        rng = XorShift64Star(11)
        n = 4000
        mean = sum(rng.random() for _ in range(n)) / n
        assert abs(mean - 0.5) < 0.05


class TestHelpers:
    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            XorShift64Star(1).choice([])

    def test_choice_singleton(self):
        assert XorShift64Star(1).choice([42]) == 42

    def test_shuffle_is_permutation(self):
        rng = XorShift64Star(9)
        xs = list(range(20))
        ys = xs.copy()
        rng.shuffle(ys)
        assert sorted(ys) == xs

    def test_fork_streams_are_independent(self):
        rng = XorShift64Star(4)
        a = rng.fork("a")
        b = rng.fork("b")
        assert a.next_u64() != b.next_u64()


class TestCheckpointState:
    def test_getstate_setstate_round_trip(self):
        rng = XorShift64Star(21)
        for _ in range(37):
            rng.next_u64()
        state = rng.getstate()
        ahead = [rng.next_u64() for _ in range(16)]
        rng.setstate(state)
        assert [rng.next_u64() for _ in range(16)] == ahead

    def test_from_state_resumes_the_stream(self):
        rng = XorShift64Star(8)
        rng.random()
        clone = XorShift64Star.from_state(rng.getstate())
        assert [clone.next_u64() for _ in range(8)] == [
            rng.next_u64() for _ in range(8)
        ]

    def test_state_is_plain_data(self):
        state = XorShift64Star(3).getstate()
        assert isinstance(state, int)

    def test_setstate_rejects_out_of_range(self):
        rng = XorShift64Star(1)
        with pytest.raises(ValueError):
            rng.setstate(-1)
        with pytest.raises(ValueError):
            rng.setstate(2**64)


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_state_round_trip_any_seed(seed):
    rng = XorShift64Star(seed)
    rng.next_u64()
    clone = XorShift64Star.from_state(rng.getstate())
    assert clone.next_u64() == rng.next_u64()
