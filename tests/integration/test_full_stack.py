"""End-to-end integration: full Reversi games through the whole stack.

These are the slowest tests in the suite (tens of seconds total); they
exercise engines + virtual GPU + arena + metrics together on the
paper's actual domain.
"""

import pytest

from repro.arena import play_match
from repro.core import BlockParallelMcts, HybridMcts, SequentialMcts
from repro.games import Reversi
from repro.players import GreedyPlayer, MctsPlayer, RandomPlayer

GAME = Reversi()


class TestRealGames:
    def test_block_parallel_beats_random_soundly(self):
        def gpu(seed):
            return MctsPlayer(
                GAME,
                BlockParallelMcts(
                    GAME, seed, blocks=4, threads_per_block=32
                ),
                move_budget_s=0.004,
            )

        def rand(seed):
            return RandomPlayer(GAME, seed)

        res = play_match(GAME, gpu, rand, 2, seed=17)
        assert res.wins == 2
        assert res.mean_final_score > 10

    def test_sequential_mcts_beats_greedy(self):
        def mcts(seed):
            return MctsPlayer(
                GAME, SequentialMcts(GAME, seed), move_budget_s=0.006
            )

        def greedy(seed):
            return GreedyPlayer(GAME, seed)

        res = play_match(GAME, mcts, greedy, 2, seed=19)
        assert res.wins + res.draws >= 1  # greedy must not dominate

    def test_game_record_telemetry_full_game(self):
        def hybrid(seed):
            return MctsPlayer(
                GAME,
                HybridMcts(GAME, seed, blocks=2, threads_per_block=32),
                move_budget_s=0.003,
            )

        def rand(seed):
            return RandomPlayer(GAME, seed)

        res = play_match(GAME, hybrid, rand, 1, seed=23)
        rec = res.records[0]
        assert rec.length >= 55
        hybrid_moves = [m for m in rec.moves if m.player == 1]
        assert all(m.simulations > 0 for m in hybrid_moves)
        assert max(m.max_depth for m in hybrid_moves) >= 1
        # score series is internally consistent
        assert rec.moves[-1].score_after == rec.final_score
