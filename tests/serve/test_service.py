"""Tests for the batched multi-tenant search service."""

import pytest

from repro.serve import (
    COMPLETED,
    MISSED,
    QUEUED,
    REJECTED,
    SHED,
    SearchRequest,
    SearchService,
    ServiceError,
    serve,
)

BUDGET = 0.002


def request(i, engine="sequential", **kwargs):
    defaults = dict(
        request_id=f"r{i}",
        game="tictactoe",
        engine=engine,
        budget_s=BUDGET,
        seed=100 + i,
    )
    defaults.update(kwargs)
    return SearchRequest(**defaults)


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            request(0, budget_s=0.0)

    def test_bad_engine_spec_fails_at_submission(self):
        with pytest.raises(ValueError, match="warp_drive"):
            request(0, engine="warp_drive")

    def test_duplicate_request_id_rejected(self):
        service = SearchService(n_devices=1)
        service.submit(request(0))
        with pytest.raises(ServiceError, match="duplicate"):
            service.submit(request(0))

    def test_submit_and_run_after_run_rejected(self):
        service = SearchService(n_devices=1)
        service.submit(request(0))
        service.run()
        with pytest.raises(ServiceError, match="already ran"):
            service.submit(request(1))
        with pytest.raises(ServiceError, match="already ran"):
            service.run()

    def test_report_before_run_rejected(self):
        with pytest.raises(ServiceError, match="run"):
            SearchService(n_devices=1).report()


class TestCompletion:
    def test_mixed_generator_and_direct_engines_complete(self):
        reqs = [
            request(0, engine="sequential"),
            request(1, engine="root:2"),
            request(2, engine="tree:2"),
            request(3, engine="block:2x32"),
        ]
        records, report = serve(reqs, n_devices=2, seed=1)
        assert [r.status for r in records] == [COMPLETED] * 4
        for rec in records:
            assert rec.result is not None
            assert rec.result.simulations > 0
            assert rec.latency_s > 0
        assert report.completed == 4
        assert report.offered == 4

    def test_generator_requests_contribute_merged_lanes(self):
        records, report = serve(
            [request(0), request(1)], n_devices=1, seed=1
        )
        assert all(r.ticks > 0 and r.lanes > 0 for r in records)
        assert report.kernel_launches > 0
        assert report.mean_lanes_per_launch > 1.0

    def test_deterministic_across_runs(self):
        def run():
            return serve(
                [request(i) for i in range(4)], n_devices=2, seed=7
            )

        first, _ = run()
        second, _ = run()
        for a, b in zip(first, second):
            assert a.status == b.status
            assert a.latency_s == b.latency_s
            assert a.result.move == b.result.move
            assert a.result.simulations == b.result.simulations

    def test_staggered_arrivals_respected(self):
        reqs = [
            request(0, arrival_s=0.0),
            request(1, arrival_s=0.5),
        ]
        records, _ = serve(reqs, n_devices=1)
        assert records[1].start_s >= 0.5
        assert records[0].finish_s < 0.5  # served during the idle gap


class TestAdmission:
    def test_queue_overflow_rejects(self):
        reqs = [request(i) for i in range(3)]
        records, report = serve(
            reqs, n_devices=1, max_active=1, max_queue=1
        )
        statuses = [r.status for r in records]
        assert statuses.count(COMPLETED) == 2
        assert statuses.count(REJECTED) == 1
        assert report.rejected == 1

    def test_queued_requests_wait_then_run(self):
        reqs = [request(i) for i in range(3)]
        service = SearchService(n_devices=1, max_active=1)
        recs = service.submit_all(reqs)
        mid_statuses = set()

        # All three arrive at t=0 with one slot: two must queue.
        service.run()
        mid_statuses = {r.status for r in recs}
        assert mid_statuses == {COMPLETED}
        waits = sorted(r.queue_wait_s for r in recs)
        assert waits[0] == 0.0
        assert waits[-1] > 0.0

    def test_queued_status_visible_in_lifecycle(self):
        # With zero queue slots the QUEUED constant is never reached;
        # sanity-check the constant exists and is non-terminal.
        from repro.serve import TERMINAL_STATUSES

        assert QUEUED not in TERMINAL_STATUSES


class TestDeadlines:
    def test_impossible_deadline_missed(self):
        reqs = [request(0, deadline_s=1e-9)]
        records, report = serve(reqs, n_devices=1)
        assert records[0].status == MISSED
        assert records[0].result is None
        assert report.missed == 1

    def test_queued_past_deadline_missed_without_running(self):
        reqs = [
            request(0),
            request(1, deadline_s=1e-9),
        ]
        records, _ = serve(reqs, n_devices=1, max_active=1)
        assert records[0].status == COMPLETED
        assert records[1].status == MISSED
        assert records[1].start_s is None

    def test_enforce_deadlines_off_completes_everything(self):
        reqs = [request(i, deadline_s=1e-9) for i in range(2)]
        records, _ = serve(
            reqs, n_devices=1, enforce_deadlines=False
        )
        assert all(r.status == COMPLETED for r in records)

    def test_generous_deadline_met(self):
        records, _ = serve(
            [request(0, deadline_s=60.0)], n_devices=1
        )
        assert records[0].status == COMPLETED


class TestConcurrencySpeedup:
    def test_concurrent_beats_serial_throughput(self):
        """The tentpole claim in miniature: merging concurrent searches
        over a shared pool beats running them back-to-back."""
        reqs = [request(i) for i in range(8)]
        _, concurrent = serve(reqs, n_devices=2, max_active=8, seed=3)
        _, serial = serve(
            reqs,
            n_devices=1,
            max_active=1,
            seed=3,
            enforce_deadlines=False,
        )
        assert concurrent.completed == serial.completed == 8
        assert concurrent.requests_per_s > serial.requests_per_s


class TestResultCache:
    """Satellite: the single-service result cache path -- duplicate
    positions answered from cache, periodic sweep age-outs, and
    stale-hit accounting."""

    def test_duplicate_position_served_from_cache(self):
        # Same game/engine/budget and no explicit state -> same cache
        # key; the second arrival lands after the first completes.
        reqs = [
            request(0),
            request(1, arrival_s=0.5),
        ]
        records, report = serve(reqs, n_devices=1, cache=True)
        assert [r.status for r in records] == [COMPLETED] * 2
        assert not records[0].extras.get("cache_hit")
        assert records[1].extras.get("cache_hit") is True
        assert report.cache_hits == 1
        assert report.cache_misses == 1
        assert report.cache_stale_hits == 0
        # The cached answer is the original search's result, and it
        # comes back far faster than a real search.
        assert records[1].result is records[0].result
        assert records[1].latency_s < records[0].latency_s

    def test_sweep_ages_out_entries(self):
        # Two *different* positions (distinct budgets -> distinct
        # keys).  The second never looks up the first's key, so the
        # only thing that can expire it is the periodic sweep.
        service = SearchService(
            n_devices=1, cache=dict(ttl_s=0.05)
        )
        service.submit(request(0))
        service.submit(request(1, budget_s=0.003, arrival_s=0.5))
        records = service.run()
        report = service.report()
        assert [r.status for r in records] == [COMPLETED] * 2
        assert service.cache_sweeps >= 1
        assert report.cache_sweeps >= 1
        # The first entry aged out via sweep: an expiration that is
        # *not* also a lookup miss (both lookups missed only because
        # the keys were cold).
        assert report.cache_expirations == 1
        assert report.cache_misses == 2
        assert report.cache_hits == 0
        # Only the second (fresh) entry survives the final sweep.
        assert len(service.cache) == 1

    def test_stale_hit_accounting(self):
        # Live entry (ttl generous) but older than stale_after_s at
        # the duplicate lookup: served, counted as hit AND stale hit.
        reqs = [
            request(0),
            request(1, arrival_s=0.5),
        ]
        records, report = serve(
            reqs,
            n_devices=1,
            cache=dict(ttl_s=10.0, stale_after_s=0.05),
        )
        assert records[1].extras.get("cache_hit") is True
        assert report.cache_hits == 1
        assert report.cache_stale_hits == 1


class TestTenantFairness:
    """Satellite: the per-tenant in-class queue fairness cap
    (``tenant_queue_frac``)."""

    # escalate_after is huge so the hysteresis ladder never moves:
    # these tests isolate the fairness cap from shedding/degrading.
    POLICY = dict(tenant_queue_frac=0.125, escalate_after=100000)

    @staticmethod
    def tenant_request(tenant, i, arrival_s, deadline_s):
        return request(
            i,
            request_id=f"{tenant}-r{i}",
            arrival_s=arrival_s,
            deadline_s=deadline_s,
        )

    def test_over_cap_tenant_sheds_latest_deadline_member(self):
        # max_queue=16, frac=0.125 -> cap of 2 queued per tenant.
        # A long blocker pins the single slot; t01 then queues three
        # requests whose deadlines *shrink* with arrival order, so
        # the fairness victim is the earliest arrival (r1: latest
        # deadline), not the arriving record.
        blocker = request(0, request_id="t00-r0", budget_s=0.05)
        reqs = [
            blocker,
            self.tenant_request("t01", 1, 0.001, 1.0),
            self.tenant_request("t01", 2, 0.002, 0.9),
            self.tenant_request("t01", 3, 0.003, 0.8),
        ]
        records, report = serve(
            reqs,
            n_devices=1,
            max_active=1,
            max_queue=16,
            overload=self.POLICY,
        )
        by_id = {r.request.request_id: r for r in records}
        victim = by_id["t01-r1"]
        assert victim.status == SHED
        assert victim.extras.get("fairness_evicted") is True
        assert report.fairness_evictions == 1
        for rid in ("t00-r0", "t01-r2", "t01-r3"):
            assert by_id[rid].status == COMPLETED
            assert not by_id[rid].extras.get("fairness_evicted")

    def test_arrival_itself_shed_when_worst(self):
        # The arriving record carries the latest deadline of the
        # tenant's queued set, so the cap sheds *it* on arrival.
        blocker = request(0, request_id="t00-r0", budget_s=0.05)
        reqs = [
            blocker,
            self.tenant_request("t01", 1, 0.001, 0.8),
            self.tenant_request("t01", 2, 0.002, 0.9),
            self.tenant_request("t01", 3, 0.003, 1.0),
        ]
        records, report = serve(
            reqs,
            n_devices=1,
            max_active=1,
            max_queue=16,
            overload=self.POLICY,
        )
        by_id = {r.request.request_id: r for r in records}
        assert by_id["t01-r3"].status == SHED
        assert by_id["t01-r3"].extras.get("fairness_evicted") is True
        assert by_id["t01-r1"].status == COMPLETED
        assert by_id["t01-r2"].status == COMPLETED
        assert report.fairness_evictions == 1

    def test_other_tenants_unaffected_by_hot_tenant(self):
        # t01 floods past its cap; t02's lone request rides out the
        # same queue untouched.
        blocker = request(0, request_id="t00-r0", budget_s=0.05)
        reqs = [
            blocker,
            self.tenant_request("t01", 1, 0.001, 1.0),
            self.tenant_request("t01", 2, 0.002, 0.9),
            self.tenant_request("t01", 3, 0.003, 0.8),
            self.tenant_request("t02", 4, 0.004, 2.0),
        ]
        records, report = serve(
            reqs,
            n_devices=1,
            max_active=1,
            max_queue=16,
            overload=self.POLICY,
        )
        by_id = {r.request.request_id: r for r in records}
        assert by_id["t02-r4"].status == COMPLETED
        assert not by_id["t02-r4"].extras.get("fairness_evicted")
        assert report.fairness_evictions == 1
        shed = [
            r
            for r in records
            if r.extras.get("fairness_evicted")
        ]
        assert len(shed) == 1
        assert shed[0].request.request_id == "t01-r1"

    def test_no_policy_means_no_cap(self):
        # Same flood without tenant_queue_frac: nobody is evicted.
        blocker = request(0, request_id="t00-r0", budget_s=0.05)
        reqs = [blocker] + [
            self.tenant_request("t01", i, 0.001 * i, 1.0)
            for i in range(1, 5)
        ]
        records, report = serve(
            reqs, n_devices=1, max_active=1, max_queue=16
        )
        assert report.fairness_evictions == 0
        assert all(r.status == COMPLETED for r in records)
